"""Integration tests: the full pipeline on realistic scenarios."""

import math
import random

import pytest

from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.dtdhl import DTDHL
from repro.baselines.hc2l import HC2L
from repro.baselines.inch2h import IncH2H
from repro.core.stl import StableTreeLabelling
from repro.graph.updates import EdgeUpdate
from repro.hierarchy.builder import HierarchyOptions
from repro.workloads.datasets import build_dataset
from repro.workloads.queries import random_query_pairs
from repro.workloads.updates import mixed_update_stream, random_update_batch


def test_all_methods_agree_on_a_dataset():
    """STL, HC2L, IncH2H, DTDHL and plain Dijkstra must return identical distances."""
    graph = build_dataset("NY", scale=0.25, seed=7)
    pairs = random_query_pairs(graph, 60, seed=7)
    oracle = DijkstraOracle.build(graph.copy())
    indexes = {
        "STL": StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=8)),
        "HC2L": HC2L.build(graph.copy(), leaf_size=8),
        "IncH2H": IncH2H.build(graph.copy()),
        "DTDHL": DTDHL.build(graph.copy()),
    }
    for s, t in pairs:
        expected = oracle.query(s, t)
        for name, index in indexes.items():
            assert index.query(s, t) == pytest.approx(expected), name


def test_dynamic_methods_agree_through_a_traffic_day():
    """Replay a stream of rush-hour weight changes; all dynamic methods stay exact."""
    graph = build_dataset("NY", scale=0.2, seed=11)
    stl_p = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=8))
    stl_l = StableTreeLabelling.build(
        graph.copy(), HierarchyOptions(leaf_size=8), maintenance="label_search"
    )
    inch2h = IncH2H.build(graph.copy())
    oracle_graph = graph.copy()
    oracle = DijkstraOracle.build(oracle_graph)

    rng = random.Random(5)
    edges = list(graph.edges())
    checkpoints = 0
    for step in range(25):
        u, v, _ = edges[rng.randrange(len(edges))]
        w = oracle_graph.weight(u, v)
        if rng.random() < 0.5:
            new_w = w * rng.choice([2.0, 4.0])
        else:
            new_w = max(1.0, w // 2)
        if new_w == w:
            continue
        update = EdgeUpdate(u, v, w, float(new_w))
        for index in (stl_p, stl_l, inch2h, oracle):
            index.apply_update(
                EdgeUpdate(update.u, update.v, update.old_weight, update.new_weight)
            )
        if step % 8 == 7:
            checkpoints += 1
            for s, t in random_query_pairs(graph, 15, seed=step):
                expected = oracle.query(s, t)
                assert stl_p.query(s, t) == pytest.approx(expected)
                assert stl_l.query(s, t) == pytest.approx(expected)
                assert inch2h.query(s, t) == pytest.approx(expected)
    assert checkpoints >= 2


def test_batch_workflow_matches_table3_protocol():
    """Increase a batch, restore it, and verify the index returns to its base state."""
    graph = build_dataset("BAY", scale=0.2, seed=3)
    stl = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=8))
    baseline = stl.labels.copy()
    increases, decreases = random_update_batch(stl.graph, 12, factor=2.0, seed=3)
    for update in increases:
        stl.apply_update(update)
    for update in decreases:
        stl.apply_update(update)
    assert stl.labels.equals(baseline)


def test_figure10_style_stream_stays_cheaper_than_rebuild_per_query_accuracy():
    graph = build_dataset("NY", scale=0.2, seed=9)
    stl = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=8))
    stream = mixed_update_stream(stl.graph, 10, seed=2)
    for update in stream:
        stl.apply_update(update)
    oracle = DijkstraOracle.build(stl.graph)
    for s, t in random_query_pairs(stl.graph, 40, seed=4):
        assert stl.query(s, t) == pytest.approx(oracle.query(s, t))


def test_deleted_edge_reflected_in_all_dynamic_methods():
    graph = build_dataset("NY", scale=0.2, seed=13)
    stl = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=8))
    inch2h = IncH2H.build(graph.copy())
    u, v, w = next(iter(graph.edges()))
    stl.remove_edge(u, v)
    inch2h.apply_update(EdgeUpdate(u, v, w, math.inf))
    oracle = DijkstraOracle.build(stl.graph)
    for s, t in random_query_pairs(graph, 25, seed=6):
        expected = oracle.query(s, t)
        assert stl.query(s, t) == pytest.approx(expected)
        assert inch2h.query(s, t) == pytest.approx(expected)
