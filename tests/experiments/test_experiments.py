"""Unit tests for the experiment drivers (small configurations)."""


from repro.experiments.harness import (
    ExperimentConfig,
    build_dynamic_competitors,
    build_static_competitors,
    build_stl_variants,
    measure_query_us,
    measure_updates_per_ms,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.table5 import format_table5, run_table5
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import random_update_batch
from repro.workloads.queries import random_query_pairs


TINY = ExperimentConfig(
    datasets=["NY"],
    scale=0.25,
    num_update_batches=1,
    updates_per_batch=5,
    num_query_pairs=100,
    query_sets=4,
    pairs_per_query_set=10,
    leaf_size=8,
)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a " in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_series(self):
        text = format_series({"m": [1.0, 2.0]}, [10, 20], x_label="x")
        assert "10" in text and "2.000" in text


class TestHarness:
    def test_build_stl_variants_are_independent(self):
        graph = build_dataset("NY", scale=0.25, seed=1)
        variants = build_stl_variants(graph)
        assert set(variants) == {"STL-P", "STL-L"}
        assert variants["STL-P"].graph is not variants["STL-L"].graph
        assert variants["STL-P"].maintenance_mode == "pareto"
        assert variants["STL-L"].maintenance_mode == "label_search"

    def test_competitor_builders(self):
        graph = build_dataset("NY", scale=0.2, seed=1)
        dynamic = build_dynamic_competitors(graph)
        static = build_static_competitors(graph)
        assert set(dynamic) == {"IncH2H", "DTDHL"}
        assert set(static) == {"HC2L"}

    def test_measurement_helpers(self):
        graph = build_dataset("NY", scale=0.2, seed=1)
        stl = build_stl_variants(graph)["STL-P"]
        increases, _ = random_update_batch(graph, 3, seed=0)
        assert measure_updates_per_ms(stl, increases) > 0
        pairs = random_query_pairs(graph, 50, seed=0)
        assert measure_query_us(stl, pairs, warmup=10) > 0
        assert measure_updates_per_ms(stl, []) == 0.0
        assert measure_query_us(stl, []) == 0.0


class TestTableDrivers:
    def test_table2(self):
        rows = run_table2(TINY)
        assert len(rows) == 1
        assert rows[0]["network"] == "NY"
        assert "NY" in format_table2(rows)

    def test_table3_shapes_and_formatting(self):
        rows = run_table3(TINY)
        assert len(rows) == 1
        row = rows[0]
        assert set(row.increase_ms) == {"STL-P", "STL-L", "IncH2H", "DTDHL"}
        assert all(value >= 0 for value in row.increase_ms.values())
        text = format_table3(rows)
        assert "STL-P+" in text and "DTDHL- [ms]" in text

    def test_table4(self):
        rows = run_table4(TINY, include_methods=("STL", "HC2L"))
        stats = rows[0].stats
        assert set(stats) == {"STL", "HC2L"}
        assert stats["STL"].num_label_entries > 0
        assert "STL size" in format_table4(rows)

    def test_table5(self):
        rows = run_table5(TINY, include_methods=("STL", "HC2L"))
        assert set(rows[0].query_us) == {"STL", "HC2L"}
        assert all(v > 0 for v in rows[0].query_us.values())
        assert "STL [us]" in format_table5(rows)


class TestFigureDrivers:
    def test_figure8(self):
        results = run_figure8(TINY, num_factors=2)
        series = results[0]
        assert series.factors == [2.0, 3.0]
        assert set(series.series_ms) == {"STL-P+", "STL-P-", "IncH2H+", "IncH2H-"}
        assert "factor" in format_figure8(results)

    def test_figure9(self):
        results = run_figure9(TINY, include_methods=("STL",))
        series = results[0]
        assert len(series.query_sets) == TINY.query_sets
        assert len(series.series_us["STL"]) == TINY.query_sets
        assert "Q_i" in format_figure9(results)

    def test_figure10(self):
        results = run_figure10(TINY, group_sizes=(3, 6))
        series = results[0]
        assert series.group_sizes == [3, 6]
        assert series.reconstruction_seconds > 0
        assert len(series.maintenance_seconds) == 2
        assert "Reconstruction" in format_figure10(results)


def test_default_config_uses_bench_subset(monkeypatch):
    monkeypatch.delenv("REPRO_FULL_DATASETS", raising=False)
    config = ExperimentConfig()
    assert list(config.datasets) == ["NY", "BAY", "COL", "FLA"]
    monkeypatch.setenv("REPRO_FULL_DATASETS", "1")
    from repro.experiments.harness import default_dataset_names

    assert len(default_dataset_names()) == 10
