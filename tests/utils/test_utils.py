"""Unit tests for timers, memory accounting, validation and RNG helpers."""

import math
import time

import pytest

from repro.utils.memory import MemoryEstimate, format_bytes, format_count
from repro.utils.rng import make_rng, spawn_rng
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_non_negative_weight,
    check_positive_int,
    check_probability,
    check_vertex,
)
from repro.utils.errors import InvalidWeightError, VertexNotFoundError


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer.measure():
                time.sleep(0.001)
        assert timer.count == 3
        assert timer.elapsed > 0
        assert timer.average == pytest.approx(timer.elapsed / 3)
        assert timer.average_ms == pytest.approx(timer.average * 1e3)
        assert timer.average_us == pytest.approx(timer.average * 1e6)

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.count == 0
        assert timer.elapsed == 0.0
        assert timer.average == 0.0

    def test_timed_context(self):
        with timed() as t:
            time.sleep(0.001)
        assert t.elapsed > 0


class TestMemory:
    def test_total_bytes(self):
        estimate = MemoryEstimate(distance_entries=10, id_entries=5, auxiliary_bytes=8)
        assert estimate.total_bytes == 10 * 4 + 5 * 4 + 8
        assert estimate.total_entries == 15

    def test_addition(self):
        a = MemoryEstimate(distance_entries=1, id_entries=2, auxiliary_bytes=3)
        b = MemoryEstimate(distance_entries=10, id_entries=20, auxiliary_bytes=30)
        combined = a + b
        assert combined.distance_entries == 11
        assert combined.auxiliary_bytes == 33

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024**2) == "3.0 MB"
        assert format_bytes(5 * 1024**3) == "5.0 GB"

    def test_format_count(self):
        assert format_count(42) == "42"
        assert format_count(4200) == "4.2 K"
        assert format_count(30_000_000) == "30.0 M"
        assert format_count(1_200_000_000) == "1.2 B"


class TestValidation:
    def test_weights(self):
        assert check_non_negative_weight(3) == 3.0
        with pytest.raises(InvalidWeightError):
            check_non_negative_weight(-1)
        with pytest.raises(InvalidWeightError):
            check_non_negative_weight(math.nan)
        with pytest.raises(InvalidWeightError):
            check_non_negative_weight(math.inf)

    def test_vertices(self):
        assert check_vertex(2, 5) == 2
        with pytest.raises(VertexNotFoundError):
            check_vertex(5, 5)
        with pytest.raises(VertexNotFoundError):
            check_vertex(True, 5)
        with pytest.raises(VertexNotFoundError):
            check_vertex(-1, 5)

    def test_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)

    def test_positive_int(self):
        assert check_positive_int(3) == 3
        with pytest.raises(ValueError):
            check_positive_int(0)
        with pytest.raises(ValueError):
            check_positive_int(True)


class TestRng:
    def test_int_seed_is_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_existing_rng_passed_through(self):
        rng = make_rng(1)
        assert make_rng(rng) is rng

    def test_none_gives_fresh_generator(self):
        assert make_rng(None) is not make_rng(None)

    def test_invalid_seed_type(self):
        with pytest.raises(TypeError):
            make_rng("seed")

    def test_spawn_rng_independent(self):
        parent = make_rng(3)
        child = spawn_rng(parent)
        assert child.random() != parent.random()
