"""QueryService: the RCU serving loop under real concurrency.

The load-bearing suite of the serving layer.  The central invariant --
checked by :class:`TestConcurrentClients` -- is the oracle property: every
answer a client receives is tagged with the generation version that
produced it, and must equal the Dijkstra ground truth of *exactly that
committed graph state*.  A torn read (labels from one generation, graph
from another, or a store observed mid-mutation) would produce a distance
matching no committed state and fail the check.

The other suites pin the life-cycle edges: immediate fallback answers
before the first labelling lands (with catch-up replay of batches that
committed during the build), snapshot swaps under a deliberately slow
reader, warm restart from a persisted snapshot, and clean stop semantics.
"""

from __future__ import annotations

import asyncio
import math
import random

import pytest

from repro.algorithms.dijkstra import dijkstra_with_target
from repro.core.config import STLConfig
from repro.core.snapshot import FALLBACK_PATH, FAST_PATH
from repro.graph.generators import grid_road_network
from repro.graph.graph import Graph
from repro.serve.service import QueryService
from repro.utils.errors import ServiceError

from tests.conftest import assert_distances_match


def run(coro):
    """Each test drives its own event loop (no plugin dependency)."""
    return asyncio.run(coro)


class _Oracle:
    """Client-side record of every committed graph state, by version.

    The updater task routes all writes through :meth:`submit`, mirroring
    them onto private graph copies.  ``state_for(version)`` returns the
    graph a given published generation froze: the newest recorded state at
    or below that version (generations between two commits -- the initial
    publish, the build adoption -- carry the same weights as their
    predecessor).

    There is one benign window the oracle must allow for: between the
    pointer swap (the new generation answers) and the submit future
    resolving (the updater records the new state), a client may receive an
    answer tagged with a version the oracle has not filed yet.  Such an
    answer must match the *pending* batch's target state -- the post-batch
    oracle; anything matching neither the committed pre-state nor the
    pending post-state is a torn read and fails.
    """

    def __init__(self, graph: Graph):
        self.states: dict[int, Graph] = {0: graph.copy()}
        self.pending: Graph | None = None

    async def submit(self, service: QueryService, triples) -> int:
        expected = self.states[max(self.states)].copy()
        for u, v, w in triples:
            expected.set_weight(u, v, w)
        self.pending = expected
        version = await service.submit(triples)
        self.states[version] = expected
        if self.pending is expected:
            self.pending = None
        return version

    def state_for(self, version: int) -> Graph:
        return self.states[max(v for v in self.states if v <= version)]

    def check(self, s: int, t: int, distance: float, version: int) -> None:
        candidates = [self.state_for(version)]
        if self.pending is not None and version > max(self.states):
            candidates.append(self.pending)
        answers = [dijkstra_with_target(state, s, t) for state in candidates]
        assert any(
            a == distance if (math.isinf(a) or math.isinf(distance))
            else abs(a - distance) < 1e-9
            for a in answers
        ), (
            f"torn read: query ({s},{t}) tagged v{version} answered {distance}, "
            f"matching no committed oracle ({answers})"
        )


class TestImmediateAnswers:
    def test_fallback_tier_before_build_lands(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=3)
            ground = {(0, 63): dijkstra_with_target(graph, 0, 63)}
            async with QueryService(graph) as service:
                d, tier, version = await service.distance(0, 63)
                first = (d, tier, version)
                await service.wait_ready()
                assert service.ready
                d2, tier2, _ = await service.distance(0, 63)
                assert tier2 == FAST_PATH
                assert_distances_match(ground[(0, 63)], d2)
                return first, ground

            # (context manager exit stops the service)

        (d, tier, version), ground = run(scenario())
        # The pre-build answer must already be correct, just slower-tier.
        assert_distances_match(ground[(0, 63)], d)
        assert tier in (FAST_PATH, FALLBACK_PATH)  # build may win the race

    def test_updates_during_build_are_caught_up(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=4)
            service = QueryService(graph)
            oracle = _Oracle(graph)
            await service.start()
            try:
                # Land updates while (likely) still building; the adopted
                # labelling must replay them before publishing.
                u, v, w = next(iter(graph.edges()))
                await oracle.submit(service, [(u, v, w * 3)])
                await oracle.submit(service, [(u, v, w * 0.5)])
                await service.wait_ready()
                d, tier, version = await service.distance(u, v)
                assert tier == FAST_PATH
                oracle.check(u, v, d, version)
                # The post-build generation serves the *latest* weights.
                assert_distances_match(
                    dijkstra_with_target(oracle.state_for(version), u, v), d
                )
            finally:
                await service.stop()

        run(scenario())


class TestConcurrentClients:
    @pytest.mark.parametrize("engine", ["pareto", "label_search"])
    def test_no_torn_reads_under_update_storm(self, engine):
        """N clients stream queries while batches commit; every answer must
        match the oracle of the exact generation that produced it."""

        async def scenario():
            graph = grid_road_network(10, 10, seed=9)
            n = graph.num_vertices
            oracle = _Oracle(graph)
            checked = 0
            async with QueryService(graph, config=STLConfig(engine=engine)) as service:
                await service.wait_ready()
                stop = asyncio.Event()

                async def client(k: int) -> int:
                    rng = random.Random(100 + k)
                    answered = 0
                    while not stop.is_set():
                        s, t = rng.randrange(n), rng.randrange(n)
                        d, _, version = await service.distance(s, t)
                        oracle.check(s, t, d, version)
                        answered += 1
                        await asyncio.sleep(0)
                    return answered

                async def updater() -> None:
                    rng = random.Random(7)
                    edges = list(graph.edges())
                    current = {(u, v): w for u, v, w in edges}
                    for _ in range(12):
                        batch = []
                        for _ in range(rng.randrange(1, 6)):
                            u, v, _ = edges[rng.randrange(len(edges))]
                            w = round(rng.uniform(0.5, 40.0), 1)
                            current[(u, v)] = w
                            batch.append((u, v, w))
                        await oracle.submit(service, batch)
                        await asyncio.sleep(0.005)
                    stop.set()

                results = await asyncio.gather(*(client(k) for k in range(6)), updater())
                checked = sum(r for r in results if isinstance(r, int))
                assert service.version >= 12  # the storm really swapped
            return checked

        total = run(scenario())
        assert total > 50  # clients actually overlapped the storm

    def test_batch_distance_single_generation(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=12)
            oracle = _Oracle(graph)
            async with QueryService(graph) as service:
                await service.wait_ready()

                async def hammer():
                    for i in range(8):
                        u, v, w = list(graph.edges())[i]
                        await oracle.submit(service, [(u, v, w * 2)])

                async def batch_reader():
                    pairs = [(0, 63), (5, 40), (63, 1)]
                    for _ in range(10):
                        distances, version = await service.batch_distance(pairs)
                        for (s, t), d in zip(pairs, distances):
                            oracle.check(s, t, d, version)
                        await asyncio.sleep(0)

                await asyncio.gather(hammer(), batch_reader())

        run(scenario())


class TestSnapshotSwap:
    def test_slow_reader_survives_swaps(self):
        """A reader holding the old generation across many commits keeps
        reading the frozen state; the generation is reclaimed only when the
        reader finally releases."""

        async def scenario():
            graph = grid_road_network(8, 8, seed=21)
            oracle = _Oracle(graph)
            async with QueryService(graph) as service:
                await service.wait_ready()
                held = service.active_snapshot.acquire()
                held_version = held.version
                frozen = held.distance(0, 63)[0]
                for i in range(5):
                    u, v, w = list(graph.edges())[i]
                    await oracle.submit(service, [(u, v, w * 5)])
                assert service.version > held_version
                assert held.retired and not held.disposed  # epoch not drained
                # The held generation still answers its own frozen state.
                oracle.check(0, 63, held.distance(0, 63)[0], held_version)
                assert held.distance(0, 63)[0] == frozen
                held.release()
                assert held.disposed  # last reader drained the epoch
                # And the live pointer answers the newest committed state.
                d, _, version = await service.distance(0, 63)
                oracle.check(0, 63, d, version)

        run(scenario())

    def test_coalesced_submissions_commit_together(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=30)
            async with QueryService(graph) as service:
                await service.wait_ready()
                edges = list(graph.edges())[:6]
                versions = await asyncio.gather(
                    *(service.submit([(u, v, w * 2)]) for u, v, w in edges)
                )
                # All landed, in at most as many generations as submissions.
                assert max(versions) <= service.version
                for (u, v, w) in edges:
                    assert service.graph.weight(u, v) == w * 2

        run(scenario())


class TestWarmRestart:
    def test_restart_from_persisted_snapshot(self, tmp_path):
        path = tmp_path / "service-snapshot.json"
        graph = grid_road_network(8, 8, seed=17)
        u, v, w = next(iter(graph.edges()))

        async def first_life():
            async with QueryService(graph.copy(), snapshot_path=path) as service:
                await service.wait_ready()
                version = await service.submit([(u, v, w * 7)])
                d, tier, _ = await service.distance(u, v)
                return version, d, tier
            # stop() persisted to `path`

        async def second_life():
            # A fresh process would re-load the graph topology; weights come
            # from the snapshot.
            async with QueryService(graph.copy(), snapshot_path=path) as service:
                assert service.ready  # fast path live with NO background build
                assert service._build_task is None
                d, tier, version = await service.distance(u, v)
                return d, tier, version

        version1, d1, tier1 = run(first_life())
        assert path.exists()
        d2, tier2, version2 = run(second_life())
        assert tier1 == FAST_PATH and tier2 == FAST_PATH
        assert_distances_match(d1, d2, "warm restart")
        assert version2 == version1  # generation numbering continues

    def test_restarted_service_keeps_maintaining(self, tmp_path):
        path = tmp_path / "snap.json"
        graph = grid_road_network(8, 8, seed=18)

        async def first_life():
            async with QueryService(graph.copy(), snapshot_path=path) as service:
                await service.wait_ready()

        async def second_life():
            oracle_graph = graph.copy()
            async with QueryService(graph.copy(), snapshot_path=path) as service:
                u, v, w = next(iter(graph.edges()))
                oracle_graph.set_weight(u, v, w * 9)
                await service.submit([(u, v, w * 9)])
                d, tier, _ = await service.distance(u, v)
                assert tier == FAST_PATH
                assert_distances_match(dijkstra_with_target(oracle_graph, u, v), d)

        run(first_life())
        run(second_life())


class TestLifecycle:
    def test_queries_refused_before_start_and_after_stop(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=2)
            service = QueryService(graph)
            with pytest.raises(ServiceError):
                await service.distance(0, 1)
            await service.start()
            await service.stop()
            with pytest.raises(ServiceError):
                await service.distance(0, 1)
            with pytest.raises(ServiceError):
                await service.submit([(0, 1, 1.0)])
            await service.stop()  # idempotent

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            service = QueryService(grid_road_network(8, 8, seed=2))
            await service.start()
            try:
                with pytest.raises(ServiceError):
                    await service.start()
            finally:
                await service.stop()

        run(scenario())

    def test_stats_shape(self):
        async def scenario():
            async with QueryService(grid_road_network(8, 8, seed=2)) as service:
                await service.wait_ready()
                await service.distance(0, 10)
                stats = service.stats()
                assert stats["ready"] and stats["running"]
                assert stats["fast_queries"] + stats["fallback_queries"] >= 1
                assert stats["num_vertices"] == 64

        run(scenario())

    def test_unreachable_distance_is_inf(self):
        async def scenario():
            graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 2.0)])
            async with QueryService(graph) as service:
                d, _, _ = await service.distance(0, 3)
                assert math.isinf(d)
                await service.wait_ready()
                d, tier, _ = await service.distance(0, 3)
                assert math.isinf(d) and tier == FAST_PATH

        run(scenario())
