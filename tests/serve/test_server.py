"""The JSON-lines TCP front: framing, ops, in-band errors, concurrency."""

from __future__ import annotations

import asyncio
import json

from repro.graph.generators import grid_road_network
from repro.graph.graph import Graph
from repro.serve.server import QueryServer
from repro.serve.service import QueryService


async def _rpc(reader, writer, obj):
    writer.write((json.dumps(obj) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


def run(coro):
    return asyncio.run(coro)


async def _booted(graph, **service_kwargs):
    service = QueryService(graph, **service_kwargs)
    await service.start()
    await service.wait_ready()
    server = QueryServer(service)
    await server.start()
    return service, server


class TestProtocol:
    def test_query_update_stats_round_trip(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=5)
            service, server = await _booted(graph)
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                pong = await _rpc(reader, writer, {"op": "ping"})
                assert pong["ok"] and pong["version"] >= 1

                before = await _rpc(reader, writer, {"op": "query", "s": 0, "t": 63})
                assert before["ok"] and before["tier"] == "fast"

                u, v, w = next(iter(graph.edges()))
                committed = await _rpc(
                    reader, writer, {"op": "update", "updates": [[u, v, w * 4]]}
                )
                assert committed["ok"] and committed["version"] > before["version"]

                after = await _rpc(reader, writer, {"op": "query", "s": u, "t": v})
                assert after["version"] == committed["version"]

                batch = await _rpc(
                    reader, writer, {"op": "batch_query", "pairs": [[0, 63], [u, v]]}
                )
                assert batch["ok"] and batch["distances"][1] == after["distance"]

                stats = await _rpc(reader, writer, {"op": "stats"})
                assert stats["ok"] and stats["stats"]["batches_committed"] == 1
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await service.stop()

        run(scenario())

    def test_unreachable_crosses_wire_as_null(self):
        async def scenario():
            graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 2.0)])
            service, server = await _booted(graph)
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                answer = await _rpc(reader, writer, {"op": "query", "s": 0, "t": 3})
                assert answer["ok"] and answer["distance"] is None
                batch = await _rpc(
                    reader, writer, {"op": "batch_query", "pairs": [[0, 3], [2, 3]]}
                )
                assert batch["distances"] == [None, 2.0]
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await service.stop()

        run(scenario())

    def test_errors_answer_in_band_and_keep_connection(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=5)
            service, server = await _booted(graph)
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                bad_op = await _rpc(reader, writer, {"op": "teleport"})
                assert not bad_op["ok"] and bad_op["code"] == "ServiceError"

                bad_vertex = await _rpc(reader, writer, {"op": "query", "s": -1, "t": 2})
                assert not bad_vertex["ok"] and bad_vertex["code"] == "VertexNotFoundError"

                missing_field = await _rpc(reader, writer, {"op": "query", "s": 1})
                assert not missing_field["ok"]

                # The connection survived three failures.
                assert (await _rpc(reader, writer, {"op": "ping"}))["ok"]
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await service.stop()

        run(scenario())

    def test_unparseable_line_closes_connection(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=5)
            service, server = await _booted(graph)
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert not response["ok"] and "bad JSON" in response["error"]
                assert await reader.readline() == b""  # EOF: connection dropped
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await service.stop()

        run(scenario())

    def test_many_concurrent_connections(self):
        async def scenario():
            graph = grid_road_network(8, 8, seed=6)
            service, server = await _booted(graph)
            try:
                async def client(k: int):
                    reader, writer = await asyncio.open_connection(*server.address)
                    for i in range(20):
                        s, t = (k * 3 + i) % 64, (k * 5 + 2 * i) % 64
                        answer = await _rpc(reader, writer, {"op": "query", "s": s, "t": t})
                        assert answer["ok"]
                    writer.close()
                    await writer.wait_closed()
                    return 20

                async def updater():
                    reader, writer = await asyncio.open_connection(*server.address)
                    for i in range(6):
                        u, v, w = list(graph.edges())[i]
                        answer = await _rpc(
                            reader, writer, {"op": "update", "updates": [[u, v, w * 1.5]]}
                        )
                        assert answer["ok"]
                    writer.close()
                    await writer.wait_closed()
                    return 0

                counts = await asyncio.gather(*(client(k) for k in range(8)), updater())
                assert sum(counts) == 160
            finally:
                await server.stop()
                await service.stop()

        run(scenario())
