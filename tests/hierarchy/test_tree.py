"""Unit tests for the stable tree hierarchy data structure and its invariants."""

import pytest

from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import HierarchyError


def _manual_hierarchy() -> StableTreeHierarchy:
    """Tiny hand-built hierarchy: root {0,1}, left {2}, right {3,4}."""
    hierarchy = StableTreeHierarchy(5)
    root = hierarchy.add_node(-1, False)
    hierarchy.assign_vertices(root, [0, 1])
    left = hierarchy.add_node(root.index, False)
    hierarchy.assign_vertices(left, [2])
    right = hierarchy.add_node(root.index, True)
    hierarchy.assign_vertices(right, [3, 4])
    hierarchy.finalize()
    return hierarchy


class TestManualHierarchy:
    def test_tau_assignment(self):
        h = _manual_hierarchy()
        assert h.tau == [0, 1, 2, 2, 3]

    def test_label_lengths(self):
        h = _manual_hierarchy()
        assert [h.label_length(v) for v in range(5)] == [1, 2, 3, 3, 4]

    def test_ancestor_chains(self):
        h = _manual_hierarchy()
        assert h.ancestors(2) == [0, 1, 2]
        assert h.ancestors(4) == [0, 1, 3, 4]
        assert h.ancestors(0) == [0]

    def test_ancestor_at(self):
        h = _manual_hierarchy()
        assert h.ancestor_at(4, 0) == 0
        assert h.ancestor_at(4, 2) == 3
        assert h.ancestor_at(4, 3) == 4
        with pytest.raises(HierarchyError):
            h.ancestor_at(2, 3)

    def test_precedes(self):
        h = _manual_hierarchy()
        assert h.precedes(0, 4)
        assert h.precedes(0, 0)
        assert h.precedes(3, 4)
        assert not h.precedes(2, 4)
        assert not h.precedes(4, 3)

    def test_descendants(self):
        h = _manual_hierarchy()
        assert h.descendants(0) == [0, 1, 2, 3, 4]
        assert h.descendants(3) == [3, 4]
        assert h.descendants(2) == [2]

    def test_lca_and_common_ancestors(self):
        h = _manual_hierarchy()
        assert h.lca_node_depth(2, 4) == 0
        assert h.num_common_ancestors(2, 4) == 2
        assert h.common_ancestors(2, 4) == [0, 1]
        assert h.num_common_ancestors(3, 4) == 3
        assert h.num_common_ancestors(0, 4) == 1

    def test_height_and_depth(self):
        h = _manual_hierarchy()
        assert h.height == 4
        assert h.node_depth == 2

    def test_double_assignment_rejected(self):
        hierarchy = StableTreeHierarchy(2)
        root = hierarchy.add_node(-1, False)
        hierarchy.assign_vertices(root, [0])
        child = hierarchy.add_node(root.index, False)
        with pytest.raises(HierarchyError):
            hierarchy.assign_vertices(child, [0])

    def test_missing_assignment_detected(self):
        hierarchy = StableTreeHierarchy(2)
        root = hierarchy.add_node(-1, False)
        hierarchy.assign_vertices(root, [0])
        with pytest.raises(HierarchyError):
            hierarchy.finalize()

    def test_two_children_per_side_rejected(self):
        hierarchy = StableTreeHierarchy(1)
        root = hierarchy.add_node(-1, False)
        hierarchy.add_node(root.index, False)
        with pytest.raises(HierarchyError):
            hierarchy.add_node(root.index, False)


class TestBuiltHierarchyInvariants:
    @pytest.fixture
    def built(self, medium_grid):
        return medium_grid, build_hierarchy(medium_grid, HierarchyOptions(leaf_size=8))

    def test_every_vertex_assigned_once(self, built):
        graph, hierarchy = built
        assert sorted(hierarchy.tau) == sorted(hierarchy.tau)
        assert all(hierarchy.node_of[v] >= 0 for v in graph.vertices())

    def test_tau_matches_ancestor_chain_position(self, built):
        graph, hierarchy = built
        for v in range(0, graph.num_vertices, 7):
            chain = hierarchy.ancestors(v)
            assert len(chain) == hierarchy.tau[v] + 1
            assert chain[-1] == v
            for index, ancestor in enumerate(chain):
                assert hierarchy.tau[ancestor] == index
                assert hierarchy.precedes(ancestor, v)

    def test_adjacent_vertices_are_comparable(self, built):
        """Lemma 5.3: every edge joins comparable vertices."""
        graph, hierarchy = built
        for u, v, _ in graph.edges():
            assert hierarchy.precedes(u, v) or hierarchy.precedes(v, u)

    def test_common_ancestors_are_prefix_of_both_chains(self, built):
        graph, hierarchy = built
        import random

        rng = random.Random(3)
        for _ in range(50):
            s = rng.randrange(graph.num_vertices)
            t = rng.randrange(graph.num_vertices)
            k = hierarchy.num_common_ancestors(s, t)
            chain_s = hierarchy.ancestors(s)
            chain_t = hierarchy.ancestors(t)
            assert chain_s[:k] == chain_t[:k]
            if k < len(chain_s) and k < len(chain_t):
                assert chain_s[k] != chain_t[k]

    def test_separator_property(self, built):
        """Definition 4.1 (2): removing the common ancestors disconnects s and t."""
        graph, hierarchy = built
        import random

        from repro.algorithms.dijkstra import dijkstra_subset

        rng = random.Random(9)
        checked = 0
        while checked < 20:
            s = rng.randrange(graph.num_vertices)
            t = rng.randrange(graph.num_vertices)
            if s == t:
                continue
            common = set(hierarchy.common_ancestors(s, t))
            if s in common or t in common:
                # One endpoint is an ancestor of the other; the property is trivial.
                checked += 1
                continue
            reachable = dijkstra_subset(graph, s, lambda v: v not in common)
            assert t not in reachable
            checked += 1
