"""Unit tests for stable tree hierarchy construction."""

import pytest

from repro.graph.generators import grid_road_network, random_connected_graph
from repro.graph.graph import Graph
from repro.hierarchy.builder import (
    BuildReport,
    HierarchyOptions,
    build_hierarchy,
    build_hierarchy_with_report,
)
from repro.partition.bisection import BFSBisector


class TestOptions:
    def test_defaults_match_paper(self):
        options = HierarchyOptions()
        assert options.beta == 0.2
        assert options.leaf_size == 16

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            HierarchyOptions(beta=0.0)
        with pytest.raises(ValueError):
            HierarchyOptions(beta=0.7)

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            HierarchyOptions(leaf_size=0)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            HierarchyOptions(order_within_node="random")


class TestBuild:
    def test_empty_graph(self):
        hierarchy = build_hierarchy(Graph(0))
        assert hierarchy.num_nodes == 0
        assert hierarchy.num_vertices == 0

    def test_single_vertex(self):
        hierarchy = build_hierarchy(Graph(1))
        assert hierarchy.tau == [0]
        assert hierarchy.num_nodes == 1

    def test_small_graph_single_leaf(self):
        graph = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=8))
        assert hierarchy.num_nodes == 1
        assert sorted(hierarchy.tau) == [0, 1, 2, 3]

    def test_grid_hierarchy_is_shallow_and_balanced(self, medium_grid):
        hierarchy, report = build_hierarchy_with_report(
            medium_grid, HierarchyOptions(leaf_size=8)
        )
        assert hierarchy.height < medium_grid.num_vertices / 2
        assert report.balance_violations <= report.num_nodes // 10
        assert report.max_separator < medium_grid.num_vertices // 3

    def test_height_grows_sublinearly(self):
        small = grid_road_network(8, 8, seed=1, drop_probability=0.0)
        large = grid_road_network(16, 16, seed=1, drop_probability=0.0)
        h_small = build_hierarchy(small, HierarchyOptions(leaf_size=8)).height
        h_large = build_hierarchy(large, HierarchyOptions(leaf_size=8)).height
        # 4x the vertices should give far less than 4x the height (~2x for sqrt cuts).
        assert h_large < 3 * h_small

    def test_bfs_bisector_handles_coordinate_free_graphs(self, small_random):
        options = HierarchyOptions(leaf_size=4, bisector=BFSBisector())
        hierarchy = build_hierarchy(small_random, options)
        assert hierarchy.num_vertices == small_random.num_vertices
        for u, v, _ in small_random.edges():
            assert hierarchy.precedes(u, v) or hierarchy.precedes(v, u)

    def test_order_within_node_id(self, small_grid):
        hierarchy = build_hierarchy(small_grid, HierarchyOptions(order_within_node="id"))
        for node in hierarchy.nodes:
            assert node.vertices == sorted(node.vertices)

    def test_disconnected_graph_covered(self):
        graph = Graph.from_edges(
            8, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (5, 6, 1.0), (6, 7, 1.0)]
        )
        hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=2))
        assert all(hierarchy.node_of[v] != -1 for v in range(8))

    def test_report_counts(self, small_grid):
        _, report = build_hierarchy_with_report(small_grid, HierarchyOptions(leaf_size=8))
        assert isinstance(report, BuildReport)
        assert report.num_nodes >= report.num_leaves > 0

    def test_random_graphs_build(self):
        for seed in range(3):
            graph = random_connected_graph(50, 0.08, seed=seed)
            hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=4))
            for u, v, _ in graph.edges():
                assert hierarchy.precedes(u, v) or hierarchy.precedes(v, u)
