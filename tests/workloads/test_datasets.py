"""Unit tests for the dataset registry."""

import pytest

from repro.graph.components import is_connected
from repro.workloads.datasets import (
    DATASETS,
    DEFAULT_BENCH_DATASETS,
    build_dataset,
    dataset_table_rows,
)
from repro.utils.errors import WorkloadError


def test_registry_matches_paper_inventory():
    assert list(DATASETS) == ["NY", "BAY", "COL", "FLA", "CAL", "E", "W", "CTR", "USA", "EUR"]
    assert DATASETS["USA"].paper_vertices == 23_947_347
    assert set(DEFAULT_BENCH_DATASETS) <= set(DATASETS)


def test_sizes_grow_like_the_paper():
    sizes = [DATASETS[name].base_vertices for name in DATASETS if name != "EUR"]
    assert sizes == sorted(sizes)


def test_build_dataset_connected_and_deterministic():
    a = build_dataset("NY", scale=0.5, seed=1)
    b = build_dataset("NY", scale=0.5, seed=1)
    assert is_connected(a)
    assert a.num_vertices == b.num_vertices
    assert sorted(a.edges()) == sorted(b.edges())


def test_build_dataset_scale_changes_size():
    small = build_dataset("BAY", scale=0.3, seed=0)
    large = build_dataset("BAY", scale=1.0, seed=0)
    assert large.num_vertices > small.num_vertices


@pytest.mark.parametrize("name", ["COL", "FLA"])
def test_each_generator_family_builds(name):
    graph = build_dataset(name, scale=0.3, seed=2)
    assert is_connected(graph)
    assert graph.coordinates is not None


def test_unknown_dataset_rejected():
    with pytest.raises(WorkloadError):
        build_dataset("MARS")
    with pytest.raises(WorkloadError):
        build_dataset("NY", scale=0.0)


def test_dataset_table_rows():
    rows = dataset_table_rows(scale=0.3, names=["NY", "BAY"])
    assert len(rows) == 2
    assert rows[0]["network"] == "NY"
    assert "paper |V|" in rows[0]
