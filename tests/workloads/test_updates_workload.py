"""Unit tests for update workload generation."""

import pytest

from repro.graph.updates import UpdateKind
from repro.workloads.updates import (
    mixed_update_stream,
    random_update_batch,
    rush_hour_stream,
    scaling_update_batches,
)
from repro.utils.errors import WorkloadError


def test_random_update_batch_pairs_up(small_grid):
    increases, decreases = random_update_batch(small_grid, 10, factor=2.0, seed=1)
    assert len(increases) == len(decreases)
    for inc, dec in zip(increases, decreases):
        assert inc.kind is UpdateKind.INCREASE
        assert dec.kind is UpdateKind.DECREASE
        assert inc.new_weight == pytest.approx(inc.old_weight * 2.0)
        assert dec.new_weight == pytest.approx(inc.old_weight)


def test_random_update_batch_applies_and_restores(small_grid):
    graph = small_grid.copy()
    original = {(u, v): w for u, v, w in graph.edges()}
    increases, decreases = random_update_batch(graph, 8, seed=2)
    increases.apply(graph)
    decreases.apply(graph)
    assert {(u, v): w for u, v, w in graph.edges()} == original


def test_random_update_batch_requires_factor_above_one(small_grid):
    with pytest.raises(WorkloadError):
        random_update_batch(small_grid, 5, factor=1.0)


def test_scaling_batches_factors(small_grid):
    batches = scaling_update_batches(small_grid, num_batches=4, batch_size=5, seed=0)
    assert [factor for factor, _, _ in batches] == [2.0, 3.0, 4.0, 5.0]
    for factor, increases, _ in batches:
        for update in increases:
            assert update.new_weight == pytest.approx(update.old_weight * factor)


def test_mixed_stream_increases_then_restores(small_grid):
    stream = mixed_update_stream(small_grid, 6, seed=3)
    updates = list(stream)
    half = len(updates) // 2
    assert all(u.kind is UpdateKind.INCREASE for u in updates[:half])
    assert all(u.kind is UpdateKind.DECREASE for u in updates[half:])
    graph = small_grid.copy()
    original = {(u, v): w for u, v, w in graph.edges()}
    stream.apply(graph)
    assert {(u, v): w for u, v, w in graph.edges()} == original


def test_update_generators_deduplicate_edges(small_grid):
    increases, _ = random_update_batch(small_grid, 30, seed=4)
    edges = [(u.u, u.v) if u.u < u.v else (u.v, u.u) for u in increases]
    assert len(edges) == len(set(edges))


class TestRushHourStream:
    def test_nets_to_zero_and_old_weights_track(self, small_grid):
        graph = small_grid.copy()
        original = {(u, v): w for u, v, w in graph.edges()}
        for batch in rush_hour_stream(graph, num_steps=8, num_hotspots=2, radius=3, seed=1):
            for update in batch:
                # old_weight must match the live graph at application time.
                assert graph.weight(update.u, update.v) == update.old_weight
                graph.set_weight(update.u, update.v, update.new_weight)
        assert {(u, v): w for u, v, w in graph.edges()} == original

    def test_swells_then_relaxes(self, small_grid):
        batches = rush_hour_stream(small_grid, num_steps=8, num_hotspots=2, radius=3, seed=1)
        kinds = [
            {update.kind for update in batch} for batch in batches if len(batch)
        ]
        assert kinds  # the hotspots covered some edges
        assert kinds[0] == {UpdateKind.INCREASE}  # into the peak
        assert kinds[-1] == {UpdateKind.DECREASE}  # out of it

    def test_spatially_correlated(self, small_grid):
        # Far fewer edges are touched than exist: the bursts are localised.
        batches = rush_hour_stream(small_grid, num_steps=6, num_hotspots=1, radius=2, seed=2)
        touched = {
            (u.u, u.v) if u.u < u.v else (u.v, u.u)
            for batch in batches
            for u in batch
        }
        assert 0 < len(touched) < small_grid.num_edges / 2

    def test_deterministic_for_seed(self, small_grid):
        def flat(seed):
            return [
                (u.u, u.v, u.old_weight, u.new_weight)
                for batch in rush_hour_stream(small_grid, num_steps=6, seed=seed)
                for u in batch
            ]

        assert flat(7) == flat(7)
        assert flat(7) != flat(8)

    def test_parameter_validation(self, small_grid):
        with pytest.raises(WorkloadError):
            rush_hour_stream(small_grid, num_steps=1)
        with pytest.raises(WorkloadError):
            rush_hour_stream(small_grid, peak_factor=1.0)
