"""Unit tests for update workload generation."""

import pytest

from repro.graph.updates import UpdateKind
from repro.workloads.updates import (
    mixed_update_stream,
    random_update_batch,
    scaling_update_batches,
)
from repro.utils.errors import WorkloadError


def test_random_update_batch_pairs_up(small_grid):
    increases, decreases = random_update_batch(small_grid, 10, factor=2.0, seed=1)
    assert len(increases) == len(decreases)
    for inc, dec in zip(increases, decreases):
        assert inc.kind is UpdateKind.INCREASE
        assert dec.kind is UpdateKind.DECREASE
        assert inc.new_weight == pytest.approx(inc.old_weight * 2.0)
        assert dec.new_weight == pytest.approx(inc.old_weight)


def test_random_update_batch_applies_and_restores(small_grid):
    graph = small_grid.copy()
    original = {(u, v): w for u, v, w in graph.edges()}
    increases, decreases = random_update_batch(graph, 8, seed=2)
    increases.apply(graph)
    decreases.apply(graph)
    assert {(u, v): w for u, v, w in graph.edges()} == original


def test_random_update_batch_requires_factor_above_one(small_grid):
    with pytest.raises(WorkloadError):
        random_update_batch(small_grid, 5, factor=1.0)


def test_scaling_batches_factors(small_grid):
    batches = scaling_update_batches(small_grid, num_batches=4, batch_size=5, seed=0)
    assert [factor for factor, _, _ in batches] == [2.0, 3.0, 4.0, 5.0]
    for factor, increases, _ in batches:
        for update in increases:
            assert update.new_weight == pytest.approx(update.old_weight * factor)


def test_mixed_stream_increases_then_restores(small_grid):
    stream = mixed_update_stream(small_grid, 6, seed=3)
    updates = list(stream)
    half = len(updates) // 2
    assert all(u.kind is UpdateKind.INCREASE for u in updates[:half])
    assert all(u.kind is UpdateKind.DECREASE for u in updates[half:])
    graph = small_grid.copy()
    original = {(u, v): w for u, v, w in graph.edges()}
    stream.apply(graph)
    assert {(u, v): w for u, v, w in graph.edges()} == original


def test_update_generators_deduplicate_edges(small_grid):
    increases, _ = random_update_batch(small_grid, 30, seed=4)
    edges = [(u.u, u.v) if u.u < u.v else (u.v, u.u) for u in increases]
    assert len(edges) == len(set(edges))
