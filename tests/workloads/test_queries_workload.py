"""Unit tests for query workload generation."""

import math

import pytest

from repro.algorithms.dijkstra import dijkstra_with_target
from repro.workloads.queries import (
    distance_stratified_query_sets,
    estimate_max_distance,
    random_query_pairs,
)
from repro.utils.errors import WorkloadError
from repro.graph.graph import Graph


def test_random_pairs_basic(small_grid):
    pairs = random_query_pairs(small_grid, 50, seed=1)
    assert len(pairs) == 50
    assert all(0 <= s < small_grid.num_vertices for s, _ in pairs)
    assert all(s != t for s, t in pairs)


def test_random_pairs_deterministic(small_grid):
    assert random_query_pairs(small_grid, 20, seed=3) == random_query_pairs(small_grid, 20, seed=3)


def test_random_pairs_need_two_vertices():
    with pytest.raises(WorkloadError):
        random_query_pairs(Graph(1), 5)


def test_estimate_max_distance_is_a_lower_bound_on_nothing_but_positive(medium_grid):
    estimate = estimate_max_distance(medium_grid, seed=0)
    assert estimate > 0
    # The double-sweep estimate is at least the distance of some real pair.
    assert not math.isinf(estimate)


def test_stratified_sets_have_increasing_distances(medium_grid):
    buckets = distance_stratified_query_sets(
        medium_grid, num_sets=6, pairs_per_set=20, seed=2
    )
    assert len(buckets) == 6
    assert all(buckets), "every bucket should be non-empty"
    averages = []
    for bucket in buckets:
        distances = [dijkstra_with_target(medium_grid, s, t) for s, t in bucket[:10]]
        averages.append(sum(distances) / len(distances))
    # Distances must grow from short-range to long-range buckets overall.
    assert averages[-1] > averages[0]


def test_stratified_sets_invalid_params(medium_grid):
    with pytest.raises(WorkloadError):
        distance_stratified_query_sets(medium_grid, num_sets=0)
