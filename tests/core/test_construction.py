"""Unit tests for the parallel construction pipeline (core/construction.py).

The contract under test is *exact equivalence*: a parallel build must be
indistinguishable from a serial one -- identical node numbering, identical
tau, entry-wise identical labels -- on every input, including disconnected
and degenerate ones.  These tests spawn real worker processes; CI runs them
with ``-p no:cacheprovider`` and a hard timeout so a deadlocked pool fails
fast (see ``.github/workflows/ci.yml``).

Every parallel build here pins ``construction="parallel"`` with
``max_workers=2``: the auto mode (``None``) resolves to serial on small
instances and single-core runners, which would silently skip the pool.
"""

import math
import os
from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.dijkstra import (
    dijkstra_rank_restricted,
    dijkstra_rank_restricted_into,
)
from repro.core.config import STLConfig
from repro.core.construction import (
    AUTO_PARALLEL_MIN_VERTICES,
    CONSTRUCTION_NAMES,
    ParallelBuilder,
    build_index,
    normalize_construction,
    resolve_construction,
    run_label_roots,
)
from repro.core.kernels import HAS_NUMPY, VECTOR_MIN_SPAN
from repro.core.labelling import UNREACHABLE, build_labels, label_offsets
from repro.core.stl import StableTreeLabelling
from repro.graph.generators import highway_grid_network, random_connected_graph
from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.utils.errors import ConfigError
from repro.workloads.datasets import build_dataset

#: More workers than this box has cores, so multi-worker shares are
#: exercised even on a 1-CPU runner.
WORKERS = 2

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_same_hierarchy(a, b):
    """Node-for-node structural equality (the grafting contract)."""
    assert a.num_nodes == b.num_nodes
    for na, nb in zip(a.nodes, b.nodes):
        assert na.index == nb.index
        assert na.parent == nb.parent
        assert na.left == nb.left
        assert na.right == nb.right
        assert na.depth == nb.depth
        assert na.bits == nb.bits
        assert na.vertices == nb.vertices
        assert na.prefix_count == nb.prefix_count
        assert na.path == nb.path
    assert list(a.tau) == list(b.tau)
    assert list(a.node_of) == list(b.node_of)


def assert_parallel_matches_serial(graph, options=None):
    """Build twice, assert hierarchies and labels are identical."""
    serial_h, serial_l, serial_r = build_index(graph, options, construction="serial")
    parallel_h, parallel_l, parallel_r = build_index(
        graph, options, construction="parallel", max_workers=WORKERS
    )
    assert_same_hierarchy(serial_h, parallel_h)
    assert serial_l.differences(parallel_l) == []
    assert serial_r.construction == "serial" and serial_r.workers == 0
    assert parallel_r.construction == "parallel" and parallel_r.workers == WORKERS
    assert serial_r.num_nodes == parallel_r.num_nodes
    assert serial_r.num_leaves == parallel_r.num_leaves
    assert serial_r.max_separator == parallel_r.max_separator


def shm_segments():
    """Names of leftover construction segments in /dev/shm (Linux only)."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux dev box
        return []
    return [n for n in os.listdir(root) if "repro-stl-build" in n]


class TestConfigSurface:
    def test_normalize_accepts_known_modes(self):
        assert normalize_construction(None) is None
        for name in CONSTRUCTION_NAMES:
            assert normalize_construction(name) == name

    def test_normalize_rejects_unknown_mode(self):
        with pytest.raises(ConfigError, match="serial"):
            normalize_construction("gpu")

    def test_stlconfig_validates_at_construction(self):
        assert STLConfig(construction="parallel").construction == "parallel"
        with pytest.raises(ConfigError):
            STLConfig(construction="distributed")

    def test_resolve_explicit_modes_honoured(self):
        assert resolve_construction("serial", 10**6, max_workers=8) == "serial"
        assert resolve_construction("parallel", 4, max_workers=1) == "parallel"

    def test_resolve_auto_small_instance_is_serial(self):
        assert resolve_construction(None, 100, max_workers=8) == "serial"

    def test_resolve_auto_large_instance_needs_cpus(self):
        n = AUTO_PARALLEL_MIN_VERTICES
        assert resolve_construction(None, n, max_workers=4) == "parallel"
        assert resolve_construction(None, n, max_workers=1) == "serial"


class TestDijkstraInto:
    def test_matches_dict_variant(self):
        graph = highway_grid_network(400, seed=7)
        hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=8))
        tau = hierarchy.tau
        offsets = label_offsets(tau)
        adjacency = graph.adjacency()
        entries = array("d", [UNREACHABLE]) * offsets[-1]
        for r in graph.vertices():
            written = dijkstra_rank_restricted_into(
                adjacency, r, tau, entries, offsets, tau[r]
            )
            dists = dijkstra_rank_restricted(graph, r, tau)
            assert written == len(dists)
            for x, d in dists.items():
                assert entries[offsets[x] + tau[r]] == pytest.approx(d)


class TestParallelEqualsSerial:
    def test_figure10_workload_graph(self):
        """The dataset family behind the Figure 10 experiments."""
        graph = build_dataset("NY", scale=0.2, seed=2025)
        assert_parallel_matches_serial(graph, HierarchyOptions(leaf_size=8))

    def test_grid_leaf_sizes(self):
        graph = highway_grid_network(600, seed=11)
        for leaf_size in (1, 4, 32):
            assert_parallel_matches_serial(graph, HierarchyOptions(leaf_size=leaf_size))

    @SETTINGS
    @given(
        n=st.integers(min_value=2, max_value=60),
        extra=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_connected_graphs(self, n, extra, seed):
        graph = random_connected_graph(n, extra, seed=seed)
        assert_parallel_matches_serial(graph, HierarchyOptions(leaf_size=4))

    def test_disconnected_components(self):
        """Two components, no bridge between them."""
        graph = Graph(12)
        for v in range(5):
            graph.add_edge(v, v + 1, float(v + 1))
        for v in range(6, 11):
            graph.add_edge(v, v + 1, 2.0)
        assert_parallel_matches_serial(graph, HierarchyOptions(leaf_size=3))

    def test_unreachable_entries_stay_inf(self):
        """Co-leafed disconnected vertices: the shared-segment prefill must
        survive as real ``inf`` entries (nothing ever writes them)."""
        graph = Graph(6)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)  # vertices 3..5 stay isolated
        assert_parallel_matches_serial(graph, HierarchyOptions(leaf_size=6))
        _, labels, _ = build_index(
            graph, HierarchyOptions(leaf_size=6),
            construction="parallel", max_workers=WORKERS,
        )
        assert any(math.isinf(d) for _, _, d in labels.iter_entries())

    def test_single_vertex(self):
        assert_parallel_matches_serial(Graph(1))

    def test_empty_graph(self):
        assert_parallel_matches_serial(Graph(0))

    def test_single_leaf_hierarchy(self):
        """Everything fits one leaf: the plan tree never bisects."""
        graph = random_connected_graph(6, 0.2, seed=3)
        assert_parallel_matches_serial(graph, HierarchyOptions(leaf_size=16))

    def test_unsplittable_blob(self):
        """A clique larger than leaf_size: the bisector cannot split it."""
        n = 12
        graph = Graph(n)
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v, 1.0)
        assert_parallel_matches_serial(graph, HierarchyOptions(leaf_size=4))

    def test_stl_build_api(self):
        """The public entry point: identical index, stats breakdown filled."""
        graph = highway_grid_network(500, seed=5)
        serial = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=8))
        parallel = StableTreeLabelling.build(
            graph, HierarchyOptions(leaf_size=8),
            construction="parallel", max_workers=WORKERS,
        )
        try:
            assert serial.labels.differences(parallel.labels) == []
            stats = parallel.stats()
            assert stats.construction_workers == WORKERS
            assert stats.hierarchy_seconds >= 0.0
            assert stats.label_seconds >= 0.0
        finally:
            serial.close()
            parallel.close()


@pytest.mark.skipif(not HAS_NUMPY, reason="vector construction path requires numpy")
class TestVectorPath:
    def test_vector_parity_on_dense_graph(self):
        """A graph with rows past VECTOR_MIN_SPAN takes the vector variant."""
        n = VECTOR_MIN_SPAN + 8
        graph = Graph(n)
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v, float((u * 7 + v * 3) % 11 + 1))
        hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=4))
        assert max(len(row) for row in graph.adjacency()) >= VECTOR_MIN_SPAN
        tau = hierarchy.tau
        offsets = label_offsets(tau)
        vector_entries = array("d", [UNREACHABLE]) * offsets[-1]
        roots = list(graph.vertices())
        written = run_label_roots(graph, roots, tau, vector_entries, offsets)
        reference = build_labels(graph, hierarchy)
        assert written == reference.num_entries()
        for r in roots:
            for x, d in dijkstra_rank_restricted(graph, r, tau).items():
                assert vector_entries[offsets[x] + tau[r]] == d

    def test_vector_full_build_matches_serial(self):
        n = VECTOR_MIN_SPAN + 16
        graph = Graph(n)
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v, float((u + v) % 7 + 1))
        assert_parallel_matches_serial(graph, HierarchyOptions(leaf_size=6))


class TestSharedMemoryLifecycle:
    def test_no_segment_after_success(self):
        graph = highway_grid_network(300, seed=9)
        before = shm_segments()
        build_index(
            graph, HierarchyOptions(leaf_size=8),
            construction="parallel", max_workers=WORKERS,
        )
        assert shm_segments() == before

    def test_no_segment_after_worker_failure(self, monkeypatch):
        """A worker that dies mid-labels must not leak the segment.

        The patch lands before the pool starts, so forked workers inherit
        the failing ``_worker_labels`` while the coordinator's own phase-a
        path stays intact.
        """
        import repro.core.construction as construction_module

        def boom(graph, payload):
            raise ValueError("injected worker failure")

        monkeypatch.setattr(construction_module, "_worker_labels", boom)
        graph = highway_grid_network(300, seed=9)
        before = shm_segments()
        builder = ParallelBuilder(
            graph, HierarchyOptions(leaf_size=8), max_workers=WORKERS
        )
        with pytest.raises(RuntimeError, match="injected worker failure"):
            builder.build()
        assert shm_segments() == before
        assert builder._workers is None  # pool torn down by the finally

    def test_no_segment_after_coordinator_exception(self, monkeypatch):
        """An exception after segment creation still unlinks it."""
        import repro.core.construction as construction_module

        def boom(view):
            raise RuntimeError("injected mid-build failure")

        monkeypatch.setattr(construction_module, "fill_unreachable", boom)
        graph = highway_grid_network(300, seed=9)
        before = shm_segments()
        builder = ParallelBuilder(
            graph, HierarchyOptions(leaf_size=8), max_workers=WORKERS
        )
        with pytest.raises(RuntimeError, match="injected mid-build failure"):
            builder.build()
        assert shm_segments() == before
        assert builder._workers is None

    def test_builder_close_is_idempotent(self):
        graph = highway_grid_network(100, seed=1)
        builder = ParallelBuilder(graph, max_workers=WORKERS)
        builder.build()
        builder.close()
        builder.close()
