"""Unit tests for STL distance queries (Equation 3, Lemma 4.7)."""

import math

import pytest

from repro.core.labelling import build_labels
from repro.core.query import batch_query, query_distance, query_with_hub
from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from tests.conftest import nx_all_pairs


@pytest.fixture
def built(small_grid):
    hierarchy = build_hierarchy(small_grid, HierarchyOptions(leaf_size=8))
    labels = build_labels(small_grid, hierarchy)
    return small_grid, hierarchy, labels


def test_all_pairs_match_dijkstra(built):
    graph, hierarchy, labels = built
    truth = nx_all_pairs(graph)
    for s in graph.vertices():
        for t in graph.vertices():
            expected = truth[s].get(t, math.inf)
            assert query_distance(hierarchy, labels, s, t) == pytest.approx(expected)


def test_query_is_symmetric(built):
    graph, hierarchy, labels = built
    for s, t in [(0, 10), (5, 40), (13, 27)]:
        assert query_distance(hierarchy, labels, s, t) == query_distance(hierarchy, labels, t, s)


def test_same_vertex_is_zero(built):
    _, hierarchy, labels = built
    assert query_distance(hierarchy, labels, 7, 7) == 0.0


def test_disconnected_pairs_return_inf():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=2))
    labels = build_labels(graph, hierarchy)
    assert math.isinf(query_distance(hierarchy, labels, 0, 3))
    assert query_distance(hierarchy, labels, 0, 1) == 1.0


def test_query_with_hub_returns_valid_witness(built):
    graph, hierarchy, labels = built
    truth = nx_all_pairs(graph)
    for s, t in [(0, graph.num_vertices - 1), (3, 30)]:
        distance, hub = query_with_hub(hierarchy, labels, s, t)
        assert distance == pytest.approx(truth[s][t])
        assert 0 <= hub < hierarchy.num_common_ancestors(s, t)
        # The hub certificate decomposes the distance.
        assert labels[s][hub] + labels[t][hub] == pytest.approx(distance)


def test_negative_vertex_ids_rejected(built):
    """Regression: Python negative indexing used to answer for vertex n+s."""
    _, hierarchy, labels = built
    with pytest.raises(IndexError):
        query_distance(hierarchy, labels, -1, 5)
    with pytest.raises(IndexError):
        query_distance(hierarchy, labels, 5, -2)
    with pytest.raises(IndexError):
        query_with_hub(hierarchy, labels, -1, 5)
    # Even the s == t early-out must not accept negative ids.
    with pytest.raises(IndexError):
        query_distance(hierarchy, labels, -3, -3)


def test_batch_query(built):
    graph, hierarchy, labels = built
    pairs = [(0, 5), (1, 9), (2, 2)]
    results = batch_query(hierarchy, labels, pairs)
    assert len(results) == 3
    assert results[2] == 0.0


def test_paper_example_all_pairs(paper_graph):
    hierarchy = build_hierarchy(paper_graph, HierarchyOptions(leaf_size=3))
    labels = build_labels(paper_graph, hierarchy)
    truth = nx_all_pairs(paper_graph)
    for s in paper_graph.vertices():
        for t in paper_graph.vertices():
            assert query_distance(hierarchy, labels, s, t) == pytest.approx(truth[s][t])
