"""Unit tests for the vectorised query/mark kernels (``repro.core.kernels``).

Every scalar/vector comparison here asserts *exact* equality, not approx:
the two paths run the same float64 operations, just batched, and the suite
is what holds that contract.  The whole module runs on the no-numpy CI leg
too -- vector-only tests skip themselves, the dispatch/fallback tests run
everywhere.
"""

import math

import pytest

from repro.core import kernels
from repro.core.batch import BatchedParetoEngine
from repro.core.batch_label_search import BatchedLabelSearchEngine
from repro.core.kernels import (
    HAS_NUMPY,
    batch_query_scalar,
    common_prefix_lengths,
    hierarchy_arrays,
    label_arrays,
    normalize_kernel,
)
from repro.core.pareto_search import ParetoSearchIncrease
from repro.core.stl import StableTreeLabelling
from repro.graph.generators import city_road_network, random_connected_graph
from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions
from repro.core.config import STLConfig
from tests.conftest import random_mixed_batch

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy (repro[fast])")


@pytest.fixture(scope="module")
def city_stl():
    graph = city_road_network(num_cities=3, city_rows=8, city_cols=8, seed=11)
    stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=8))
    yield stl
    stl.close()


def _random_pairs(stl, count, seed, with_same=True):
    import random

    rng = random.Random(seed)
    n = stl.graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
    if with_same:
        pairs += [(0, 0), (n - 1, n - 1)]
    return pairs


class TestNormalizeKernel:
    def test_none_resolves_to_import_time_default(self):
        assert normalize_kernel(None) == kernels.DEFAULT_KERNEL
        assert kernels.DEFAULT_KERNEL == ("vector" if HAS_NUMPY else "scalar")

    def test_scalar_always_accepted(self):
        assert normalize_kernel("scalar") == "scalar"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown query kernel"):
            normalize_kernel("simd")

    @needs_numpy
    def test_vector_accepted_with_numpy(self):
        assert normalize_kernel("vector") == "vector"

    @pytest.mark.skipif(HAS_NUMPY, reason="covers the no-numpy interpreter")
    def test_explicit_vector_without_numpy_names_the_extra(self):
        with pytest.raises(ValueError, match=r"repro\[fast\]"):
            normalize_kernel("vector")


class TestScalarKernel:
    """The fallback path must work with or without numpy installed."""

    def test_matches_query_distance(self, city_stl):
        pairs = _random_pairs(city_stl, 50, seed=0)
        expected = [city_stl.query(s, t) for s, t in pairs]
        assert batch_query_scalar(city_stl.hierarchy, city_stl.labels, pairs) == expected

    def test_empty_batch(self, city_stl):
        assert city_stl.batch_query([], config=STLConfig(kernel="scalar")) == []

    def test_negative_id_raises(self, city_stl):
        with pytest.raises(IndexError, match="non-negative"):
            city_stl.batch_query([(0, 1), (-1, 2)], config=STLConfig(kernel="scalar"))


@needs_numpy
class TestVectorKernel:
    def test_agrees_with_scalar_entrywise(self, city_stl):
        pairs = _random_pairs(city_stl, 500, seed=1)
        scalar = city_stl.batch_query(pairs, config=STLConfig(kernel="scalar"))
        vector = city_stl.batch_query(pairs, config=STLConfig(kernel="vector"))
        assert scalar == vector  # exact, not approx

    def test_default_kernel_is_vector(self, city_stl):
        pairs = _random_pairs(city_stl, 40, seed=2)
        assert city_stl.batch_query(pairs) == city_stl.batch_query(pairs, config=STLConfig(kernel="vector"))

    def test_repeated_pairs(self, city_stl):
        pairs = [(3, 97)] * 64 + [(97, 3)] * 64
        values = set(city_stl.batch_query(pairs, config=STLConfig(kernel="vector")))
        assert len(values) == 1  # symmetric and stable under repetition
        assert values == {city_stl.query(3, 97)}

    def test_disconnected_pairs_are_inf(self):
        # Two components: a triangle and an edge, never connected.
        graph = Graph(5)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        graph.add_edge(0, 2, 2.0)
        graph.add_edge(3, 4, 1.0)
        stl = StableTreeLabelling.build(graph)
        pairs = [(0, 3), (2, 4), (3, 0), (0, 2), (3, 4), (3, 3)]
        scalar = stl.batch_query(pairs, config=STLConfig(kernel="scalar"))
        vector = stl.batch_query(pairs, config=STLConfig(kernel="vector"))
        assert scalar == vector
        assert vector[0] == math.inf and vector[1] == math.inf

    def test_bounds_errors_match_scalar_contract(self, city_stl):
        with pytest.raises(IndexError, match=r"non-negative, got \(-3, 5\)"):
            city_stl.batch_query([(0, 1), (-3, 5)], config=STLConfig(kernel="vector"))
        n = city_stl.graph.num_vertices
        with pytest.raises(IndexError, match="out of range"):
            city_stl.batch_query([(0, n)], config=STLConfig(kernel="vector"))

    def test_common_prefix_lengths_match_hierarchy(self, city_stl):
        import numpy as np

        pairs = _random_pairs(city_stl, 200, seed=3)
        s = np.asarray([p[0] for p in pairs], dtype=np.int64)
        t = np.asarray([p[1] for p in pairs], dtype=np.int64)
        bulk = common_prefix_lengths(city_stl.hierarchy, s, t)
        for i, (a, b) in enumerate(pairs):
            assert int(bulk[i]) == city_stl.hierarchy.num_common_ancestors(a, b)

    def test_deep_hierarchy_degrades_to_scalar(self, city_stl, monkeypatch):
        # A hierarchy deeper than the int64 bitstrings support must answer
        # through the scalar path, not overflow.
        monkeypatch.setattr(kernels, "_MAX_BITS_DEPTH", 1)
        monkeypatch.setattr(
            city_stl.hierarchy, "_kernel_arrays", "missing", raising=False
        )
        assert hierarchy_arrays(city_stl.hierarchy) is None
        pairs = _random_pairs(city_stl, 30, seed=4)
        assert city_stl.batch_query(pairs, config=STLConfig(kernel="vector")) == city_stl.batch_query(
            pairs, config=STLConfig(kernel="scalar"
        ))
        # Restore the per-module cache for the other tests.
        monkeypatch.undo()
        city_stl.hierarchy._kernel_arrays = "missing"
        assert hierarchy_arrays(city_stl.hierarchy) is not None


@needs_numpy
class TestCachedViews:
    def test_label_arrays_cached_until_adoption(self, city_stl):
        labels = city_stl.labels
        first = label_arrays(labels)
        assert label_arrays(labels) is first  # same tuple, no rebuild
        epoch = labels.buffer_epoch
        # share_into / unshare each adopt a new buffer: the numpy cache must
        # be dropped both times (a view over the old buffer would go stale --
        # or, for a real shm segment, pin the mapping open).
        segment = memoryview(bytearray(labels.num_entries() * 8)).cast("d")
        labels.share_into(segment)
        assert labels.buffer_epoch == epoch + 1
        shared = label_arrays(labels)
        assert shared is not first
        labels.unshare()
        assert labels.buffer_epoch == epoch + 2
        private = label_arrays(labels)
        assert private is not shared

    def test_inplace_writes_visible_through_cached_view(self, city_stl):
        labels = city_stl.labels
        entries, _ = label_arrays(labels)
        row = labels[0]
        original = row[0]
        try:
            row[0] = original + 1.0
            assert entries[labels.offsets[0]] == original + 1.0
        finally:
            row[0] = original

    def test_query_results_track_label_updates(self, small_grid):
        # The cached views must never serve stale distances across an
        # update batch (in-place writes) nor across a buffer adoption.
        stl = StableTreeLabelling.build(small_grid.copy())
        pairs = _random_pairs(stl, 60, seed=5)
        stl.batch_query(pairs)  # populate the cache
        stl.apply_batch(random_mixed_batch(stl.graph, 30, seed=6))
        assert stl.batch_query(pairs, config=STLConfig(kernel="vector")) == stl.batch_query(
            pairs, config=STLConfig(kernel="scalar"
        ))
        segment = memoryview(bytearray(stl.labels.num_entries() * 8)).cast("d")
        stl.labels.share_into(segment)
        assert stl.batch_query(pairs, config=STLConfig(kernel="vector")) == stl.batch_query(
            pairs, config=STLConfig(kernel="scalar"
        ))
        stl.labels.unshare()
        assert stl.batch_query(pairs, config=STLConfig(kernel="vector")) == stl.batch_query(
            pairs, config=STLConfig(kernel="scalar"
        ))


def _run_batches(engine_cls, graph, monkeypatch, force_vector):
    """Replay the mixed-batch workload with the vector mark path on or off."""
    monkeypatch.setattr(kernels, "VECTOR_MIN_SPAN", 1 if force_vector else 10**9)
    stl = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=8))
    engine = engine_cls(stl.graph, stl.hierarchy, stl.labels)
    for round_ in range(3):
        batch = random_mixed_batch(stl.graph, 40, seed=round_)
        engine.apply(batch.coalesce(stl.graph).updates)
    return list(stl.labels.view)


class TestMarkPhaseParity:
    """The vectorised increase mark phase must mark the exact scalar sets.

    Mirrors the round-robin mixed-batch workload of
    ``test_repeated_batches_stay_exact``; ``VECTOR_MIN_SPAN`` is pinned to 1
    so every row goes through the vector predicate in one run and to an
    unreachable bound (pure scalar) in the other.
    """

    @needs_numpy
    @pytest.mark.parametrize(
        "engine_cls", [BatchedParetoEngine, BatchedLabelSearchEngine]
    )
    def test_final_labels_identical(self, small_grid, monkeypatch, engine_cls):
        vector = _run_batches(engine_cls, small_grid, monkeypatch, force_vector=True)
        scalar = _run_batches(engine_cls, small_grid, monkeypatch, force_vector=False)
        assert vector == scalar  # bitwise: same marks -> same repairs

    @needs_numpy
    def test_pareto_marked_entry_sets_identical(self, small_grid, monkeypatch):
        def collect(force_vector):
            recorded = []
            original = ParetoSearchIncrease.mark_affected

            def spy(self, root, start, phi_old, affected):
                stats = original(self, root, start, phi_old, affected)
                recorded.append(
                    {v: frozenset(levels) for v, levels in affected.items()}
                )
                return stats

            with pytest.MonkeyPatch.context() as patch:
                patch.setattr(kernels, "VECTOR_MIN_SPAN", 1 if force_vector else 10**9)
                patch.setattr(ParetoSearchIncrease, "mark_affected", spy)
                stl = StableTreeLabelling.build(
                    small_grid.copy(), HierarchyOptions(leaf_size=8)
                )
                engine = BatchedParetoEngine(stl.graph, stl.hierarchy, stl.labels)
                for round_ in range(3):
                    batch = random_mixed_batch(stl.graph, 40, seed=round_)
                    engine.apply(batch.coalesce(stl.graph).updates)
            return recorded

        assert collect(True) == collect(False)

    @needs_numpy
    def test_label_search_seeded_queues_identical(self, small_grid, monkeypatch):
        from repro.core import label_search

        def collect(force_vector):
            recorded = []
            original = label_search.seed_affected_queues

            def spy(tau, labels, increases, queues, counters):
                original(tau, labels, increases, queues, counters)
                recorded.append(
                    {i: sorted(heap) for i, heap in queues.items() if heap}
                )

            with pytest.MonkeyPatch.context() as patch:
                patch.setattr(kernels, "VECTOR_MIN_SPAN", 1 if force_vector else 10**9)
                patch.setattr(label_search, "seed_affected_queues", spy)
                from repro.core import batch_label_search

                patch.setattr(
                    batch_label_search, "seed_affected_queues", spy, raising=False
                )
                stl = StableTreeLabelling.build(
                    small_grid.copy(), HierarchyOptions(leaf_size=8)
                )
                engine = BatchedLabelSearchEngine(stl.graph, stl.hierarchy, stl.labels)
                for round_ in range(3):
                    batch = random_mixed_batch(stl.graph, 40, seed=round_)
                    engine.apply(batch.coalesce(stl.graph).updates)
            return recorded

        assert collect(True) == collect(False)


class TestSeedAffectedRowsGates:
    def test_short_prefix_falls_back(self, city_stl):
        # Below VECTOR_MIN_SPAN the kernel must decline so the scalar loop
        # (with its tiny fixed cost) runs instead.
        row = city_stl.labels[0]
        assert kernels.seed_affected_rows(row, row, 1.0, 2) is None

    def test_non_buffer_rows_fall_back(self):
        assert kernels.seed_affected_rows([1.0, 2.0], [1.0, 2.0], 1.0, 10**6) is None

    def test_interval_kernel_short_span_falls_back(self, city_stl):
        row = city_stl.labels[0]
        assert kernels.interval_hit_levels(1.0, row, row, 0, 1) is None
