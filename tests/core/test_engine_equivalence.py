"""Cross-engine equivalence: every engine x backend pair vs a fresh rebuild.

The batch layer now exposes a joint crossover -- two engine families
(``pareto``, ``label_search``) times three shard backends (``serial``,
``thread``, ``process``).  All six pairs promise *entry-wise identical*
labels; this suite is the promise's enforcement, parametrized over the full
matrix and three workload shapes:

* the Figure 10 workload (``mixed_update_stream`` halves, the shape the
  benchmarks replay),
* multi-round random mixed batches (repeated edges, both kinds, chains),
* a degenerate plan whose updates *all* touch the separator (nothing to
  shard -- the backends must degrade to their serial engines).

Every scenario asserts against :meth:`repro.core.labelling.STLLabels
.differences` with labels rebuilt from scratch on the final weights -- the
strongest oracle available, independent of any maintenance code path.

CI runs this file as its own matrix job with a hard timeout and
``-p no:cacheprovider`` (it spawns real worker processes), mirroring the
``test_parallel.py`` treatment; the tier-1 step skips it for the same
reason.
"""

import pytest

from repro.core.batch import BatchPolicy
from repro.core.labelling import build_labels
from repro.core.shard import ShardPlanner
from repro.core.stl import StableTreeLabelling
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.hierarchy.builder import HierarchyOptions
from repro.workloads.updates import mixed_update_stream
from repro.core.config import STLConfig
from tests.conftest import random_mixed_batch

ENGINES = ("pareto", "label_search")
BACKENDS = ("serial", "thread", "process")

#: More workers than CI runners have cores, so the multi-worker ownership
#: merge is exercised even on small boxes (same constant as test_parallel).
WORKERS = 4


@pytest.fixture(params=[f"{e}-{b}" for e in ENGINES for b in BACKENDS])
def engine_backend(request):
    """One (engine, backend) cell of the equivalence matrix."""
    engine, backend = request.param.split("-")
    return engine, backend


@pytest.fixture
def stl(small_grid):
    """A fresh index per test, closed afterwards (kills any worker pool).

    The rebuild crossover is disabled: on a graph this small it would
    otherwise swallow every batch, and a rebuild is trivially equal to the
    rebuild oracle -- the engines must do the maintaining themselves here.
    """
    index = StableTreeLabelling.build(small_grid.copy(), HierarchyOptions(leaf_size=8))
    index.batch_policy = BatchPolicy(rebuild_fraction=None, max_workers=WORKERS)
    yield index
    index.close()


def assert_matches_rebuild(index: StableTreeLabelling) -> None:
    """The maintained labels equal a from-scratch build on the final graph."""
    fresh = build_labels(index.graph, index.hierarchy)
    diffs = index.labels.differences(fresh)
    assert diffs == [], f"{len(diffs)} label entries diverged: {diffs[:5]}"


class TestEngineBackendMatrix:
    def test_figure10_workload_matches_rebuild(self, stl, engine_backend):
        """The benchmark workload: the increase half, then the restoring
        decrease half, through one matrix cell."""
        engine, backend = engine_backend
        stream = mixed_update_stream(stl.graph, 80, factor=2.0, seed=21)
        stl.apply_batch(stream.increases(), config=STLConfig(backend=backend, engine=engine))
        assert_matches_rebuild(stl)
        stl.apply_batch(stream.decreases(), config=STLConfig(backend=backend, engine=engine))
        assert_matches_rebuild(stl)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_multi_round_mixed_batches_match_rebuild(self, stl, engine_backend, seed):
        """Rounds of mixed batches with repeated edges: state carried across
        rounds must stay exact, not just each round in isolation."""
        engine, backend = engine_backend
        for round_ in range(3):
            batch = random_mixed_batch(stl.graph, 60, seed=seed * 10 + round_)
            stl.apply_batch(batch, config=STLConfig(backend=backend, engine=engine))
        assert_matches_rebuild(stl)

    def test_fully_separator_crossing_batch_matches_rebuild(self, stl, engine_backend):
        """A batch made only of separator-touching edges: the plan has no
        shardable updates, so every backend must degrade to its serial
        engine -- the degenerate corner of the matrix."""
        engine, backend = engine_backend
        _, separator = ShardPlanner(stl.graph).regions()
        sep = set(separator)
        batch = UpdateBatch()
        for u, v, w in stl.graph.edges():
            if u in sep or v in sep:
                batch.append(EdgeUpdate(u, v, w, round(w * 1.7, 3)))
        assert len(batch) > 0, "separator touches no edges; scenario is vacuous"
        stats = stl.apply_batch(batch, config=STLConfig(backend=backend, engine=engine))
        assert stats.updates_processed >= len(batch)
        assert_matches_rebuild(stl)

    def test_engines_agree_with_each_other(self, small_grid, engine_backend):
        """Transitivity check in the other direction: every cell equals the
        serial Pareto engine on the same stream (so any two cells agree)."""
        engine, backend = engine_backend
        reference = StableTreeLabelling.build(
            small_grid.copy(), HierarchyOptions(leaf_size=8)
        )
        candidate = StableTreeLabelling(
            small_grid.copy(), reference.hierarchy, reference.labels.copy()
        )
        policy = BatchPolicy(rebuild_fraction=None, max_workers=WORKERS)
        reference.batch_policy = policy
        candidate.batch_policy = policy
        try:
            for round_ in range(2):
                batch = random_mixed_batch(reference.graph, 50, seed=100 + round_)
                reference.apply_batch(batch, config=STLConfig(backend=False, engine="pareto"))
                candidate.apply_batch(batch, config=STLConfig(backend=backend, engine=engine))
            assert candidate.labels.differences(reference.labels) == []
        finally:
            candidate.close()
