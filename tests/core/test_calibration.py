"""Unit tests for the shipping-cost calibration helper."""

import pytest

from repro.core.calibration import (
    ShippingCalibration,
    ShippingMeasurement,
    calibrate_shipping,
)
from repro.core.labelling import build_labels
from repro.core.shard import ShardPlanner
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy


@pytest.fixture(scope="module")
def calibrated():
    from repro.graph.generators import grid_road_network

    graph = grid_road_network(8, 8, seed=7)
    hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=8))
    labels = build_labels(graph, hierarchy)
    planner = ShardPlanner(graph, num_shards=4)
    return calibrate_shipping(
        graph, labels, planner=planner, batch_sizes=(16, 32), rounds=1
    )


def test_measurements_cover_requested_sizes(calibrated):
    assert len(calibrated.measurements) == 2
    # Coalescing can shrink a batch but sizes stay ordered and positive.
    sizes = [m.updates for m in calibrated.measurements]
    assert all(s > 0 for s in sizes)
    assert sizes == sorted(sizes)


def test_delta_shipping_moves_fewer_bytes(calibrated):
    """The headline claim: resident deltas are far smaller than label slices."""
    for m in calibrated.measurements:
        assert m.delta_bytes < m.slice_bytes
        assert m.bytes_ratio > 1.0
        # Timing is load-dependent so only sanity-check it, not the ratio.
        assert m.slice_seconds > 0.0
        assert m.delta_seconds > 0.0


def test_as_dict_is_json_friendly(calibrated):
    import json

    payload = calibrated.as_dict()
    json.dumps(payload)
    assert len(payload["measurements"]) == len(calibrated.measurements)
    first = payload["measurements"][0]
    assert set(first) == {
        "updates",
        "slice_bytes",
        "slice_seconds",
        "delta_bytes",
        "delta_seconds",
        "bytes_ratio",
        "seconds_ratio",
    }


def test_recommended_min_updates_picks_smallest_qualifying():
    calibration = ShippingCalibration(
        measurements=(
            ShippingMeasurement(10, 100_000, 0.01, 1_000, 0.005),
            ShippingMeasurement(100, 100_000, 0.01, 2_000, 0.0001),
            ShippingMeasurement(1000, 100_000, 0.01, 5_000, 0.0001),
        )
    )
    # With 1 ms of serial work per update, a 100-update batch amortises the
    # fixed overhead (0.0001 s + 2 round trips) within the 10% budget; the
    # 10-update batch does not (0.005 s + 0.001 s > 0.001 s).
    assert calibration.recommended_min_updates(0.001) == 100


def test_recommended_min_updates_falls_back_beyond_largest():
    calibration = ShippingCalibration(
        measurements=(ShippingMeasurement(10, 1_000, 1.0, 500, 1.0),)
    )
    # Nothing qualifies under an absurdly cheap per-update cost: fall back
    # to twice the largest measured size.
    assert calibration.recommended_min_updates(1e-9) == 20
