"""Unit tests for the StableTreeLabelling facade."""

import math

import pytest

from repro.core.labelling import verify_labels
from repro.core.stl import StableTreeLabelling
from repro.graph.updates import EdgeUpdate
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.errors import UpdateError
from tests.conftest import nx_all_pairs


@pytest.fixture
def stl(small_grid):
    return StableTreeLabelling.build(small_grid, HierarchyOptions(leaf_size=8))


class TestBuildAndQuery:
    def test_queries_match_truth(self, stl):
        truth = nx_all_pairs(stl.graph)
        for s in range(0, stl.graph.num_vertices, 5):
            for t in range(0, stl.graph.num_vertices, 4):
                assert stl.query(s, t) == pytest.approx(truth[s].get(t, math.inf))

    def test_construction_time_recorded(self, stl):
        assert stl.construction_seconds > 0

    def test_batch_query(self, stl):
        assert stl.batch_query([(0, 0), (0, 1)])[0] == 0.0

    def test_batch_query_entry_points_agree(self, stl):
        """The facade delegates to core.query.batch_query; both must match."""
        from repro.core.query import batch_query

        pairs = [(0, 5), (3, 17), (2, 2), (7, 40)]
        assert stl.batch_query(pairs) == batch_query(stl.hierarchy, stl.labels, pairs)
        assert stl.batch_query(iter(pairs)) == [stl.query(s, t) for s, t in pairs]

    def test_query_rejects_negative_ids(self, stl):
        with pytest.raises(IndexError):
            stl.query(-1, 5)

    def test_query_with_hub(self, stl):
        distance, hub = stl.query_with_hub(0, stl.graph.num_vertices - 1)
        assert distance > 0
        assert hub >= 0

    def test_stats(self, stl):
        stats = stl.stats()
        assert stats.num_label_entries == stl.labels.num_entries()
        assert stats.tree_height == stl.hierarchy.height
        assert stats.average_label_length > 1
        assert "STL" in stats.method
        assert stats.as_row()["tree height"] == str(stl.hierarchy.height)

    def test_rebuild_gives_equivalent_labels(self, stl):
        rebuilt = stl.rebuild(HierarchyOptions(leaf_size=8))
        truth = nx_all_pairs(stl.graph)
        for s in range(0, stl.graph.num_vertices, 9):
            for t in range(0, stl.graph.num_vertices, 9):
                assert rebuilt.query(s, t) == pytest.approx(truth[s].get(t, math.inf))


class TestMaintenanceModes:
    def test_default_is_pareto(self, stl):
        assert stl.maintenance_mode == "pareto"

    def test_switch_to_label_search(self, stl):
        stl.set_maintenance("label_search")
        assert stl.maintenance_mode == "label_search"
        u, v, w = next(iter(stl.graph.edges()))
        stl.increase_edge(u, v, w * 2)
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_invalid_mode_rejected(self, stl):
        with pytest.raises(ValueError):
            stl.set_maintenance("magic")

    @pytest.mark.parametrize("mode", ["pareto", "label_search"])
    def test_build_with_mode(self, small_grid, mode):
        index = StableTreeLabelling.build(small_grid.copy(), maintenance=mode)
        assert index.maintenance_mode == mode


class TestMaintenanceOperations:
    def test_increase_edge(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        stl.increase_edge(u, v, w * 2)
        assert stl.graph.weight(u, v) == w * 2
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_decrease_edge(self, stl):
        u, v, w = max(stl.graph.edges(), key=lambda e: e[2])
        stl.decrease_edge(u, v, 1.0)
        assert stl.graph.weight(u, v) == 1.0
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_increase_edge_validates_direction(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        with pytest.raises(UpdateError):
            stl.increase_edge(u, v, w / 2)

    def test_decrease_edge_validates_direction(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        with pytest.raises(UpdateError):
            stl.decrease_edge(u, v, w * 2)

    def test_apply_update_neutral_is_noop(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        stats = stl.apply_update(EdgeUpdate(u, v, w, w))
        assert stats.labels_changed == 0

    def test_apply_batch_mixed(self, stl):
        edges = list(stl.graph.edges())[:4]
        updates = [EdgeUpdate(u, v, w, w * 2) for u, v, w in edges[:2]]
        updates += [EdgeUpdate(u, v, w, max(1.0, w / 2)) for u, v, w in edges[2:]]
        stats = stl.apply_batch(updates)
        assert stats.updates_processed == 4
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_remove_edge(self, stl):
        truth_before = nx_all_pairs(stl.graph)
        u, v, w = next(iter(stl.graph.edges()))
        stl.remove_edge(u, v)
        assert math.isinf(stl.graph.weight(u, v))
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []
        # Removing an edge can only make distances larger.
        assert stl.query(u, v) >= truth_before[u][v] - 1e-9
        # A second removal is a no-op.
        stats = stl.remove_edge(u, v)
        assert stats.updates_processed == 0

    def test_queries_track_truth_through_updates(self, stl):
        edges = list(stl.graph.edges())
        for u, v, w in edges[:3]:
            stl.increase_edge(u, v, w * 2)
        for u, v, _ in edges[:3]:
            stl.decrease_edge(u, v, 2.0)
        truth = nx_all_pairs(stl.graph)
        for s in range(0, stl.graph.num_vertices, 8):
            for t in range(0, stl.graph.num_vertices, 7):
                assert stl.query(s, t) == pytest.approx(truth[s].get(t, math.inf))
