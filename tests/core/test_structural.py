"""Unit tests for structural updates (Section 8: insertions and deletions)."""

import math

import pytest

from repro.core.labelling import verify_labels
from repro.core.stl import StableTreeLabelling
from repro.core.structural import StructuralUpdater
from repro.hierarchy.builder import HierarchyOptions
from tests.conftest import nx_all_pairs


@pytest.fixture
def stl(small_grid):
    return StableTreeLabelling.build(small_grid, HierarchyOptions(leaf_size=8))


def _assert_queries_match_truth(stl):
    truth = nx_all_pairs(stl.graph)
    for s in range(0, stl.graph.num_vertices, 9):
        for t in range(0, stl.graph.num_vertices, 8):
            expected = truth[s].get(t, math.inf)
            assert stl.query(s, t) == pytest.approx(expected)


class TestDeletions:
    def test_delete_edge(self, stl):
        updater = StructuralUpdater(stl)
        u, v, _ = next(iter(stl.graph.edges()))
        updater.delete_edge(u, v)
        assert math.isinf(stl.graph.weight(u, v))
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []
        _assert_queries_match_truth(stl)

    def test_delete_vertex_disconnects_it(self, stl):
        updater = StructuralUpdater(stl)
        victim = 10
        updater.delete_vertex(victim)
        for nbr, weight in stl.graph.neighbors(victim):
            assert math.isinf(weight)
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []
        other = 0 if victim != 0 else 1
        assert math.isinf(stl.query(victim, other))


class TestInsertions:
    def test_reinsert_deleted_edge(self, stl):
        updater = StructuralUpdater(stl)
        u, v, w = next(iter(stl.graph.edges()))
        updater.delete_edge(u, v)
        updater.insert_edge(u, v, w)
        assert stl.graph.weight(u, v) == w
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []
        _assert_queries_match_truth(stl)

    def test_insert_edge_between_comparable_vertices(self, stl):
        hierarchy = stl.hierarchy
        graph = stl.graph
        pair = None
        for v in graph.vertices():
            chain = hierarchy.ancestors(v)
            for ancestor in chain[:-1]:
                if not graph.has_edge(ancestor, v):
                    pair = (ancestor, v)
                    break
            if pair:
                break
        assert pair is not None
        updater = StructuralUpdater(stl)
        updater.insert_edge(pair[0], pair[1], 1.0)
        assert stl.graph.weight(*pair) == 1.0
        _assert_queries_match_truth(stl)

    def test_insert_edge_between_incomparable_vertices_rebuilds(self, stl):
        hierarchy = stl.hierarchy
        graph = stl.graph
        pair = None
        for u in graph.vertices():
            for v in graph.vertices():
                if u < v and not graph.has_edge(u, v):
                    if not hierarchy.precedes(u, v) and not hierarchy.precedes(v, u):
                        pair = (u, v)
                        break
            if pair:
                break
        assert pair is not None
        updater = StructuralUpdater(stl, HierarchyOptions(leaf_size=8))
        stats = updater.insert_edge(pair[0], pair[1], 2.0)
        assert stats.extra.get("rebuilds") == 1
        _assert_queries_match_truth(stl)

    def test_insert_existing_edge_with_larger_weight_rejected(self, stl):
        updater = StructuralUpdater(stl)
        u, v, w = next(iter(stl.graph.edges()))
        with pytest.raises(Exception):
            updater.insert_edge(u, v, w * 5)

    def test_insert_vertex(self, stl):
        updater = StructuralUpdater(stl, HierarchyOptions(leaf_size=8))
        old_n = stl.graph.num_vertices
        new_id = updater.insert_vertex([(0, 3.0), (5, 4.0)])
        assert new_id == old_n
        assert stl.graph.num_vertices == old_n + 1
        assert stl.query(new_id, 0) == pytest.approx(3.0)
        _assert_queries_match_truth(stl)
