"""Unit tests for index serialization."""

import io

import pytest

from repro.core.serialization import (
    deserialize_labelling,
    load_labelling,
    save_labelling,
    serialize_labelling,
)
from repro.core.stl import StableTreeLabelling
from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.errors import SerializationError
from tests.conftest import nx_all_pairs


@pytest.fixture
def stl(small_grid):
    return StableTreeLabelling.build(small_grid, HierarchyOptions(leaf_size=8))


def test_round_trip_preserves_queries(stl, tmp_path):
    path = tmp_path / "index.json"
    save_labelling(stl, str(path))
    loaded = load_labelling(str(path), stl.graph)
    truth = nx_all_pairs(stl.graph)
    for s in range(0, stl.graph.num_vertices, 9):
        for t in range(0, stl.graph.num_vertices, 8):
            assert loaded.query(s, t) == pytest.approx(truth[s][t])


def test_round_trip_through_handle(stl):
    buffer = io.StringIO()
    save_labelling(stl, buffer)
    buffer.seek(0)
    loaded = load_labelling(buffer, stl.graph)
    assert loaded.labels.equals(stl.labels)
    assert loaded.hierarchy.tau == stl.hierarchy.tau


def test_round_trip_preserves_maintenance_mode(stl):
    stl.set_maintenance("label_search")
    payload = serialize_labelling(stl)
    loaded = deserialize_labelling(payload, stl.graph)
    assert loaded.maintenance_mode == "label_search"


def test_loaded_index_is_maintainable(stl):
    payload = serialize_labelling(stl)
    loaded = deserialize_labelling(payload, stl.graph)
    u, v, w = next(iter(loaded.graph.edges()))
    loaded.increase_edge(u, v, w * 2)
    from repro.core.labelling import verify_labels

    assert verify_labels(loaded.graph, loaded.hierarchy, loaded.labels) == []


def test_wrong_graph_rejected(stl):
    payload = serialize_labelling(stl)
    with pytest.raises(SerializationError):
        deserialize_labelling(payload, Graph(3))


def test_wrong_version_rejected(stl):
    payload = serialize_labelling(stl)
    payload["format_version"] = 99
    with pytest.raises(SerializationError):
        deserialize_labelling(payload, stl.graph)


def test_infinite_entries_survive_round_trip():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=2))
    payload = serialize_labelling(stl)
    loaded = deserialize_labelling(payload, graph)
    assert loaded.labels.equals(stl.labels)


def test_infinite_entries_survive_file_round_trip(tmp_path):
    """inf entries must survive the full JSON file path, not just the dict."""
    import math

    graph = Graph.from_edges(6, [(i, i + 1, 1.0) for i in range(5)])
    stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=2))
    # Deleting the middle edge leaves inf entries for ancestors that became
    # unreachable inside their own subgraph.
    stl.remove_edge(2, 3)
    assert any(math.isinf(d) for _, _, d in stl.labels.iter_entries())
    path = tmp_path / "index.json"
    save_labelling(stl, str(path))
    loaded = load_labelling(str(path), graph)
    assert loaded.labels.equals(stl.labels)
    assert math.isinf(loaded.query(0, 5))


def test_construction_seconds_survive_round_trip(stl):
    """Regression: stats() on a loaded index used to report 0.0 construction time."""
    assert stl.construction_seconds > 0
    payload = serialize_labelling(stl)
    loaded = deserialize_labelling(payload, stl.graph)
    assert loaded.construction_seconds == stl.construction_seconds
    assert loaded.stats().construction_seconds == stl.construction_seconds


def test_version_1_payload_still_loads(stl):
    """Version-1 payloads (no construction_seconds field) remain readable."""
    payload = serialize_labelling(stl)
    payload["format_version"] = 1
    del payload["construction_seconds"]
    loaded = deserialize_labelling(payload, stl.graph)
    assert loaded.construction_seconds == 0.0
    assert loaded.labels.equals(stl.labels)
