"""Unit tests for index serialization."""

import io
import math
import pickle
import random

import pytest

from repro.core.serialization import (
    deserialize_labelling,
    load_labelling,
    merge_label_slices,
    region_label_slices,
    save_labelling,
    serialize_labelling,
)
from repro.core.shard import ShardPlanner
from repro.core.stl import StableTreeLabelling
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.errors import SerializationError
from tests.conftest import nx_all_pairs


@pytest.fixture
def stl(small_grid):
    return StableTreeLabelling.build(small_grid, HierarchyOptions(leaf_size=8))


def test_round_trip_preserves_queries(stl, tmp_path):
    path = tmp_path / "index.json"
    save_labelling(stl, str(path))
    loaded = load_labelling(str(path), stl.graph)
    truth = nx_all_pairs(stl.graph)
    for s in range(0, stl.graph.num_vertices, 9):
        for t in range(0, stl.graph.num_vertices, 8):
            assert loaded.query(s, t) == pytest.approx(truth[s][t])


def test_round_trip_through_handle(stl):
    buffer = io.StringIO()
    save_labelling(stl, buffer)
    buffer.seek(0)
    loaded = load_labelling(buffer, stl.graph)
    assert loaded.labels.equals(stl.labels)
    assert loaded.hierarchy.tau == stl.hierarchy.tau


def test_round_trip_preserves_maintenance_mode(stl):
    stl.set_maintenance("label_search")
    payload = serialize_labelling(stl)
    loaded = deserialize_labelling(payload, stl.graph)
    assert loaded.maintenance_mode == "label_search"


def test_loaded_index_is_maintainable(stl):
    payload = serialize_labelling(stl)
    loaded = deserialize_labelling(payload, stl.graph)
    u, v, w = next(iter(loaded.graph.edges()))
    loaded.increase_edge(u, v, w * 2)
    from repro.core.labelling import verify_labels

    assert verify_labels(loaded.graph, loaded.hierarchy, loaded.labels) == []


def test_wrong_graph_rejected(stl):
    payload = serialize_labelling(stl)
    with pytest.raises(SerializationError):
        deserialize_labelling(payload, Graph(3))


def test_wrong_version_rejected(stl):
    payload = serialize_labelling(stl)
    payload["format_version"] = 99
    with pytest.raises(SerializationError):
        deserialize_labelling(payload, stl.graph)


def test_infinite_entries_survive_round_trip():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=2))
    payload = serialize_labelling(stl)
    loaded = deserialize_labelling(payload, graph)
    assert loaded.labels.equals(stl.labels)


def test_infinite_entries_survive_file_round_trip(tmp_path):
    """inf entries must survive the full JSON file path, not just the dict."""
    import math

    graph = Graph.from_edges(6, [(i, i + 1, 1.0) for i in range(5)])
    stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=2))
    # Deleting the middle edge leaves inf entries for ancestors that became
    # unreachable inside their own subgraph.
    stl.remove_edge(2, 3)
    assert any(math.isinf(d) for _, _, d in stl.labels.iter_entries())
    path = tmp_path / "index.json"
    save_labelling(stl, str(path))
    loaded = load_labelling(str(path), graph)
    assert loaded.labels.equals(stl.labels)
    assert math.isinf(loaded.query(0, 5))


def test_construction_seconds_survive_round_trip(stl):
    """Regression: stats() on a loaded index used to report 0.0 construction time."""
    assert stl.construction_seconds > 0
    payload = serialize_labelling(stl)
    loaded = deserialize_labelling(payload, stl.graph)
    assert loaded.construction_seconds == stl.construction_seconds
    assert loaded.stats().construction_seconds == stl.construction_seconds


def test_version_1_payload_still_loads(stl):
    """Version-1 payloads (no construction_seconds field) remain readable."""
    payload = serialize_labelling(stl)
    payload["format_version"] = 1
    del payload["construction_seconds"]
    loaded = deserialize_labelling(payload, stl.graph)
    assert loaded.construction_seconds == 0.0
    assert loaded.labels.equals(stl.labels)


def test_version_2_nested_payload_still_loads(stl):
    """Version-2 payloads carried nested per-vertex lists, not the flat store."""
    payload = serialize_labelling(stl)
    payload["format_version"] = 2
    flat = payload.pop("labels_flat")
    offsets = payload.pop("label_offsets")
    payload["labels"] = [
        flat[offsets[v] : offsets[v + 1]] for v in range(len(offsets) - 1)
    ]
    loaded = deserialize_labelling(payload, stl.graph)
    assert loaded.labels.equals(stl.labels)
    assert loaded.query(0, stl.graph.num_vertices - 1) == stl.query(
        0, stl.graph.num_vertices - 1
    )


def test_corrupt_flat_payload_rejected(stl):
    """A flat payload with inconsistent offsets raises SerializationError."""
    payload = serialize_labelling(stl)
    payload["label_offsets"] = payload["label_offsets"][:-1] + [
        payload["label_offsets"][-1] + 1
    ]
    with pytest.raises(SerializationError):
        deserialize_labelling(payload, stl.graph)


# --------------------------------------------------------------------------- #
# Pickle round-trips (the process shard backend silently depends on these)
# --------------------------------------------------------------------------- #

def _mixed_net_batch(graph, seed=3):
    rng = random.Random(seed)
    batch = UpdateBatch()
    for u, v, w in graph.edges():
        if rng.random() < 0.4:
            batch.append(EdgeUpdate(u, v, w, round(w * rng.uniform(0.5, 2.0), 3)))
    return batch.coalesce(graph)


def test_shard_plan_pickle_round_trip(small_grid):
    """A ShardPlan ships to worker processes; pickling must be lossless."""
    planner = ShardPlanner(small_grid, num_shards=4)
    plan = planner.plan(_mixed_net_batch(small_grid))
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.regions == plan.regions
    assert clone.separator == plan.separator
    assert list(clone.residual) == list(plan.residual)
    assert len(clone.shards) == len(plan.shards)
    for mine, theirs in zip(plan.shards, clone.shards):
        assert list(mine) == list(theirs)
    assert clone.balance == plan.balance
    assert clone.num_updates == plan.num_updates


def test_label_slices_pickle_round_trip(stl):
    """Per-region label slices survive pickling bit-for-bit, inf included."""
    regions, separator = ShardPlanner(stl.graph, num_shards=4).regions()
    stl.labels.labels[separator[0]][0] = math.inf  # exercise the inf path
    slices = region_label_slices(stl.labels, [*regions, separator])
    clones = pickle.loads(pickle.dumps(slices))
    assert len(clones) == len(slices)
    for mine, theirs in zip(slices, clones):
        assert mine == theirs  # dict equality is entry-wise, inf == inf
    # Slices are copies: mutating a slice must not touch the index...
    v = regions[0][0]
    slices[0][v][0] = -1.0
    assert stl.labels[v][0] != -1.0
    # ...until merged back explicitly, and only within the ownership set.
    written = merge_label_slices(stl.labels, slices[0], owned=regions[0])
    assert written == len(regions[0])
    assert stl.labels[v][0] == -1.0


def test_merge_label_slices_respects_ownership_and_shape(stl):
    regions, _ = ShardPlanner(stl.graph, num_shards=4).regions()
    foreign = regions[1][0]
    before = list(stl.labels[foreign])
    written = merge_label_slices(stl.labels, {foreign: [0.0] * len(before)}, owned=regions[0])
    assert written == 0, "rows outside the ownership set must be ignored"
    assert list(stl.labels[foreign]) == before
    with pytest.raises(SerializationError):
        merge_label_slices(stl.labels, {foreign: [0.0]})
