"""Unit tests for sharded parallel batch maintenance (core/shard.py)."""

import pytest

from repro.core.batch import BatchedParetoEngine, BatchPolicy
from repro.core.labelling import verify_labels
from repro.core.shard import ShardedBatchEngine, ShardPlanner, default_num_shards
from repro.core.stl import StableTreeLabelling
from repro.graph.updates import EdgeUpdate
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.errors import UpdateError
from repro.core.config import STLConfig
from tests.conftest import paired_indexes, random_mixed_batch


class TestShardPlanner:
    def test_regions_partition_the_vertex_set(self, small_grid):
        planner = ShardPlanner(small_grid, num_shards=4)
        regions, separator = planner.regions()
        seen: set[int] = set(separator)
        assert len(seen) == len(separator), "separator has duplicates"
        for region in regions:
            assert not seen.intersection(region), "regions/separator overlap"
            seen.update(region)
        assert seen == set(range(small_grid.num_vertices))

    def test_no_edge_joins_two_regions(self, small_grid):
        """The defining property: regions only touch through the separator."""
        planner = ShardPlanner(small_grid, num_shards=4)
        regions, _ = planner.regions()
        region_of = {}
        for rid, region in enumerate(regions):
            for v in region:
                region_of[v] = rid
        for u, v, _ in small_grid.edges():
            ru, rv = region_of.get(u), region_of.get(v)
            if ru is not None and rv is not None:
                assert ru == rv, f"edge ({u}, {v}) crosses regions {ru}/{rv}"

    def test_planning_is_deterministic(self, small_grid):
        batch = random_mixed_batch(small_grid, 40, seed=5).coalesce(small_grid)
        plans = [ShardPlanner(small_grid.copy(), num_shards=4).plan(batch) for _ in range(2)]
        assert plans[0].regions == plans[1].regions
        assert plans[0].separator == plans[1].separator
        for a, b in zip(plans[0].shards, plans[1].shards):
            assert list(a) == list(b)
        assert list(plans[0].residual) == list(plans[1].residual)

    def test_plan_respects_first_seen_order(self, small_grid):
        """Sub-batches inherit the coalesced batch's first-seen edge order."""
        net = random_mixed_batch(small_grid, 60, seed=9).coalesce(small_grid)
        position = {
            (u.u, u.v) if u.u < u.v else (u.v, u.u): k for k, u in enumerate(net)
        }
        plan = ShardPlanner(small_grid, num_shards=4).plan(net)
        for sub in [*plan.shards, plan.residual]:
            keys = [(u.u, u.v) if u.u < u.v else (u.v, u.u) for u in sub]
            assert [position[k] for k in keys] == sorted(position[k] for k in keys)

    def test_plan_routes_updates_by_region(self, small_grid):
        planner = ShardPlanner(small_grid, num_shards=4)
        regions, separator = planner.regions()
        sep = set(separator)
        net = random_mixed_batch(small_grid, 50, seed=3).coalesce(small_grid)
        plan = planner.plan(net)
        assert plan.num_updates == len(net)
        for rid, sub in enumerate(plan.shards):
            region = set(regions[rid])
            for u in sub:
                assert u.u in region and u.v in region
        for u in plan.residual:
            assert u.u in sep or u.v in sep or any(
                (u.u in set(r)) != (u.v in set(r)) for r in regions
            )

    def test_num_shards_validation(self, small_grid):
        with pytest.raises(ValueError):
            ShardPlanner(small_grid, num_shards=1)
        assert default_num_shards() >= 2

    def test_balance_metrics(self, small_grid):
        net = random_mixed_batch(small_grid, 50, seed=11).coalesce(small_grid)
        plan = ShardPlanner(small_grid, num_shards=4).plan(net)
        assert 0.0 <= plan.balance <= 1.0
        assert plan.sharded_updates + len(plan.residual) == len(net)
        policy = BatchPolicy(parallel_min_balance=plan.balance)
        assert plan.worth_running(policy) == (plan.populated_shards >= 2)


class TestShardedEquivalence:
    """Property-style: sharded labels match the serial engine entry-wise."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_mixed_batches_match_serial(self, small_grid, seed):
        serial, sharded = paired_indexes(small_grid)
        batch = random_mixed_batch(serial.graph, 70, seed=seed)
        serial_engine = BatchedParetoEngine(serial.graph, serial.hierarchy, serial.labels)
        serial_engine.apply(batch.coalesce(serial.graph).updates)
        engine = ShardedBatchEngine(
            sharded.graph,
            sharded.hierarchy,
            sharded.labels,
            planner=ShardPlanner(sharded.graph, num_shards=4),
        )
        engine.apply(batch.coalesce(sharded.graph).updates)
        assert serial.labels.equals(sharded.labels)
        assert verify_labels(sharded.graph, sharded.hierarchy, sharded.labels) == []

    def test_repeated_batches_stay_exact(self, small_grid):
        """Regression for the float-equality marking bug: a second mixed
        batch lands on labels whose entries were rewritten by decrease
        repairs; before the tolerant through-the-edge test both the serial
        and the sharded engine silently lost whole increase deltas here."""
        serial, sharded = paired_indexes(small_grid)
        serial_engine = BatchedParetoEngine(serial.graph, serial.hierarchy, serial.labels)
        engine = ShardedBatchEngine(
            sharded.graph,
            sharded.hierarchy,
            sharded.labels,
            planner=ShardPlanner(sharded.graph, num_shards=4),
        )
        for round_ in range(3):
            batch = random_mixed_batch(serial.graph, 40, seed=round_)
            serial_engine.apply(batch.coalesce(serial.graph).updates)
            engine.apply(batch.coalesce(sharded.graph).updates)
            assert verify_labels(serial.graph, serial.hierarchy, serial.labels) == []
            assert verify_labels(sharded.graph, sharded.hierarchy, sharded.labels) == []
            assert serial.labels.equals(sharded.labels)

    def test_fully_separator_crossing_batch(self, small_grid):
        """Degenerate plan: every update touches the separator, so the whole
        batch is residual and the engine runs the serial path."""
        serial, sharded = paired_indexes(small_grid)
        planner = ShardPlanner(sharded.graph, num_shards=4)
        _, separator = planner.regions()
        sep = set(separator)
        updates = [
            EdgeUpdate(u, v, w, w * 2)
            for u, v, w in sharded.graph.edges()
            if u in sep or v in sep
        ]
        assert updates, "grid separator must touch some edges"
        engine = ShardedBatchEngine(
            sharded.graph, sharded.hierarchy, sharded.labels, planner=planner
        )
        stats = engine.apply(updates)
        assert stats.extra["sharded_updates"] == 0
        assert stats.extra["residual_updates"] == len(updates)
        BatchedParetoEngine(serial.graph, serial.hierarchy, serial.labels).apply(updates)
        assert serial.labels.equals(sharded.labels)
        assert verify_labels(sharded.graph, sharded.hierarchy, sharded.labels) == []

    def test_non_coalesced_batch_rejected(self, small_grid):
        _, sharded = paired_indexes(small_grid)
        u, v, w = next(iter(sharded.graph.edges()))
        engine = ShardedBatchEngine(sharded.graph, sharded.hierarchy, sharded.labels)
        with pytest.raises(UpdateError):
            engine.apply([EdgeUpdate(u, v, w, w / 2), EdgeUpdate(u, v, w / 2, w * 2)])

    def test_stale_old_weight_rejected(self, small_grid):
        _, sharded = paired_indexes(small_grid)
        u, v, w = next(iter(sharded.graph.edges()))
        engine = ShardedBatchEngine(sharded.graph, sharded.hierarchy, sharded.labels)
        with pytest.raises(UpdateError):
            engine.apply([EdgeUpdate(u, v, w + 1.0, w + 5.0)])


class TestPolicyCrossover:
    def test_should_loop_and_should_shard(self):
        policy = BatchPolicy(batched_min_updates=3, parallel_min_updates=100)
        assert policy.should_loop(2)
        assert not policy.should_loop(3)
        assert not policy.should_shard(99)
        assert policy.should_shard(100)
        assert not BatchPolicy(parallel_min_updates=None).should_shard(10_000)

    def test_accepts_plan(self):
        policy = BatchPolicy(parallel_min_balance=0.5)
        assert policy.accepts_plan(2, 0.5)
        assert not policy.accepts_plan(1, 1.0)
        assert not policy.accepts_plan(4, 0.49)

    def test_apply_batch_parallel_false_never_shards(self, small_grid):
        stl = StableTreeLabelling.build(small_grid.copy(), HierarchyOptions(leaf_size=8))
        stl.batch_policy = BatchPolicy(
            rebuild_fraction=None, parallel_min_updates=1, parallel_min_balance=0.0
        )
        batch = random_mixed_batch(stl.graph, 30, seed=1)
        stats = stl.apply_batch(batch, config=STLConfig(backend=False))
        assert "sharded" not in stats.extra or stats.extra["sharded"] == 0
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_apply_batch_parallel_true_forces_sharding(self, small_grid):
        stl = StableTreeLabelling.build(small_grid.copy(), HierarchyOptions(leaf_size=8))
        # Even a policy that would rebuild is bypassed by parallel=True.
        stl.batch_policy = BatchPolicy(rebuild_min_updates=1, rebuild_fraction=0.0)
        batch = random_mixed_batch(stl.graph, 30, seed=2)
        stats = stl.apply_batch(batch, config=STLConfig(backend=True))
        assert stats.extra["sharded"] == 1
        assert "rebuild_fallback" not in stats.extra
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_apply_batch_label_search_runs_parallel(self, small_grid):
        """Label-search mode shards on the thread backend (PR 7 lifted the
        pre-PR-7 ValueError) and stays entry-wise equal to the serial engine."""
        serial = StableTreeLabelling.build(
            small_grid.copy(), HierarchyOptions(leaf_size=8), maintenance="label_search"
        )
        sharded = StableTreeLabelling(
            small_grid.copy(), serial.hierarchy, serial.labels.copy(),
            maintenance="label_search",
        )
        batch = random_mixed_batch(serial.graph, 50, seed=3)
        serial.apply_batch(batch, config=STLConfig(backend=False))
        stats = sharded.apply_batch(batch, config=STLConfig(backend=True))
        assert stats.extra["sharded"] == 1
        assert stats.extra["label_search_engine"] == 1
        assert sharded.labels.differences(serial.labels) == []

    def test_policy_crossover_selects_sharded(self, small_grid):
        stl = StableTreeLabelling.build(small_grid.copy(), HierarchyOptions(leaf_size=8))
        stl.batch_policy = BatchPolicy(
            rebuild_fraction=None, parallel_min_updates=10, parallel_min_balance=0.1
        )
        batch = random_mixed_batch(stl.graph, 60, seed=4)
        stats = stl.apply_batch(batch)
        assert stats.extra.get("sharded") == 1
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_tiny_batch_runs_per_update_loop(self, small_grid):
        stl = StableTreeLabelling.build(small_grid.copy(), HierarchyOptions(leaf_size=8))
        u, v, w = next(iter(stl.graph.edges()))
        stats = stl.apply_batch([EdgeUpdate(u, v, w, w * 2)])
        # The loop path reports no engine-only extras, just the net size.
        assert stats.extra["net_updates"] == 1
        assert stats.updates_processed == 1
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []
