"""Unit tests for the batched Pareto maintenance engine (core/batch.py)."""

import math
import random

import pytest

from repro.core.batch import BatchedParetoEngine, BatchPolicy
from repro.core.labelling import build_labels, verify_labels
from repro.core.stl import StableTreeLabelling
from repro.core.config import STLConfig
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.hierarchy.builder import HierarchyOptions
from tests.conftest import nx_all_pairs


@pytest.fixture
def stl(small_grid):
    return StableTreeLabelling.build(small_grid, HierarchyOptions(leaf_size=8))


def random_mixed_batch(graph, num_updates, seed):
    """A batch whose chains repeatedly hit the same edges with both kinds."""
    rng = random.Random(seed)
    edges = list(graph.edges())
    current = {(u, v): w for u, v, w in edges}
    batch = UpdateBatch()
    for _ in range(num_updates):
        u, v, _ = edges[rng.randrange(len(edges))]
        old = current[(u, v)]
        new = round(rng.uniform(0.5, 40.0), 1)
        batch.append(EdgeUpdate(u, v, old, new))
        current[(u, v)] = new
    return batch, current


class TestBatchPolicy:
    def test_small_batches_never_rebuild(self):
        policy = BatchPolicy(rebuild_min_updates=64, rebuild_fraction=0.0)
        assert not policy.should_rebuild(63, 100)
        assert policy.should_rebuild(64, 100)

    def test_fraction_threshold(self):
        policy = BatchPolicy(rebuild_min_updates=1, rebuild_fraction=0.25)
        assert not policy.should_rebuild(25, 100)
        assert policy.should_rebuild(26, 100)

    def test_none_disables_rebuild(self):
        policy = BatchPolicy(rebuild_min_updates=0, rebuild_fraction=None)
        assert not policy.should_rebuild(10_000, 1)


class TestReorderRegression:
    def test_mixed_chain_on_one_edge_lands_on_net_weight(self, stl):
        """The apply_batch reorder corruption: increases must not be hoisted
        over decreases on the same edge.  The ISSUE's repro: a chain meant to
        end at 42.0 used to land on 7.0."""
        u, v, w = next(iter(stl.graph.edges()))
        batch = [
            EdgeUpdate(u, v, w, w + 30),
            EdgeUpdate(u, v, w + 30, 7.0),
            EdgeUpdate(u, v, 7.0, 42.0),
        ]
        stats = stl.apply_batch(batch)
        assert stl.graph.weight(u, v) == 42.0
        assert stats.updates_processed == 3
        assert stats.extra["net_updates"] == 1
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    @pytest.mark.parametrize("mode", ["pareto", "label_search"])
    def test_labels_match_rebuild_after_mixed_batch(self, small_grid, mode):
        stl = StableTreeLabelling.build(
            small_grid.copy(), HierarchyOptions(leaf_size=8), maintenance=mode
        )
        stl.batch_policy = BatchPolicy(rebuild_fraction=None)
        batch, final_weights = random_mixed_batch(stl.graph, 40, seed=13)
        stl.apply_batch(batch)
        for (u, v), w in final_weights.items():
            assert stl.graph.weight(u, v) == w
        rebuilt = build_labels(stl.graph, stl.hierarchy)
        assert stl.labels.equals(rebuilt)


class TestBatchedParetoEngine:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_coalesced_batches_match_rebuild(self, seeded_random_graph, seed):
        stl = StableTreeLabelling.build(seeded_random_graph, HierarchyOptions(leaf_size=6))
        batch, _ = random_mixed_batch(stl.graph, 25, seed=seed)
        net = batch.coalesce(stl.graph)
        engine = BatchedParetoEngine(stl.graph, stl.hierarchy, stl.labels)
        stats = engine.apply(net.updates)
        assert stats.updates_processed == len(net)
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_non_coalesced_batch_rejected(self, stl):
        """The engine's precondition is enforced, not just documented: a
        repeated edge would be silently reordered by the kind partition."""
        from repro.utils.errors import UpdateError

        u, v, w = next(iter(stl.graph.edges()))
        engine = BatchedParetoEngine(stl.graph, stl.hierarchy, stl.labels)
        with pytest.raises(UpdateError):
            engine.apply([EdgeUpdate(u, v, w, w / 2), EdgeUpdate(u, v, w / 2, w * 2)])

    def test_stale_old_weight_rejected(self, stl):
        """A stale old_weight mis-scopes the mark phase; the engine must
        refuse it rather than silently corrupt labels."""
        from repro.utils.errors import UpdateError

        u, v, w = next(iter(stl.graph.edges()))
        engine = BatchedParetoEngine(stl.graph, stl.hierarchy, stl.labels)
        with pytest.raises(UpdateError):
            engine.apply([EdgeUpdate(u, v, w + 1.0, w + 5.0)])

    def test_pure_increase_batch(self, stl):
        updates = [EdgeUpdate(u, v, w, w * 3) for u, v, w in list(stl.graph.edges())[:6]]
        engine = BatchedParetoEngine(stl.graph, stl.hierarchy, stl.labels)
        engine.apply(updates)
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_pure_decrease_batch_shares_frontier(self, stl):
        updates = [EdgeUpdate(u, v, w, w / 4) for u, v, w in list(stl.graph.edges())[:6]]
        engine = BatchedParetoEngine(stl.graph, stl.hierarchy, stl.labels)
        engine.apply(updates)
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_increase_to_infinity_in_batch(self, stl):
        """Edge deletions (weight -> inf) ride along in a batch."""
        edges = list(stl.graph.edges())
        updates = [EdgeUpdate(edges[0][0], edges[0][1], edges[0][2], math.inf)]
        updates += [EdgeUpdate(u, v, w, w / 2) for u, v, w in edges[5:8]]
        engine = BatchedParetoEngine(stl.graph, stl.hierarchy, stl.labels)
        engine.apply(updates)
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_queries_match_truth_after_batch(self, stl):
        batch, _ = random_mixed_batch(stl.graph, 30, seed=99)
        stl.batch_policy = BatchPolicy(rebuild_fraction=None)
        stl.apply_batch(batch)
        truth = nx_all_pairs(stl.graph)
        for s in range(0, stl.graph.num_vertices, 7):
            for t in range(0, stl.graph.num_vertices, 6):
                assert stl.query(s, t) == pytest.approx(truth[s].get(t, math.inf))


class TestRebuildFallback:
    def test_large_batch_triggers_rebuild(self, stl):
        stl.batch_policy = BatchPolicy(rebuild_min_updates=1, rebuild_fraction=0.0)
        updates = [EdgeUpdate(u, v, w, w * 2) for u, v, w in list(stl.graph.edges())[:5]]
        stats = stl.apply_batch(updates)
        assert stats.extra.get("rebuild_fallback") == 1
        assert stats.updates_processed == 5
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_fallback_keeps_engines_valid(self, stl):
        """The in-place label swap must not orphan the maintenance engines."""
        stl.batch_policy = BatchPolicy(rebuild_min_updates=1, rebuild_fraction=0.0)
        edges = list(stl.graph.edges())
        stl.apply_batch([EdgeUpdate(u, v, w, w * 2) for u, v, w in edges[:5]])
        u, v, w = edges[10]
        stl.increase_edge(u, v, w * 2)
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []

    def test_policy_argument_overrides_default(self, stl):
        updates = [EdgeUpdate(u, v, w, w * 2) for u, v, w in list(stl.graph.edges())[:5]]
        stats = stl.apply_batch(
            updates,
            config=STLConfig(policy=BatchPolicy(rebuild_min_updates=1, rebuild_fraction=0.0)),
        )
        assert stats.extra.get("rebuild_fallback") == 1


class TestNeutralCounting:
    def test_neutral_only_batch_counts_processed(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        stats = stl.apply_batch([EdgeUpdate(u, v, w, w)])
        assert stats.updates_processed == 1
        assert stats.labels_changed == 0

    @pytest.mark.parametrize("mode", ["pareto", "label_search"])
    def test_cancelling_chain_counts_all_inputs(self, small_grid, mode):
        stl = StableTreeLabelling.build(
            small_grid.copy(), HierarchyOptions(leaf_size=8), maintenance=mode
        )
        u, v, w = next(iter(stl.graph.edges()))
        stats = stl.apply_batch([EdgeUpdate(u, v, w, w * 2), EdgeUpdate(u, v, w * 2, w)])
        assert stats.updates_processed == 2
        assert stats.extra["net_updates"] == 1
        assert stl.graph.weight(u, v) == w

    def test_empty_batch(self, stl):
        stats = stl.apply_batch([])
        assert stats.updates_processed == 0
