"""Unit tests for the process-pool shard backend (core/parallel.py).

These tests spawn real worker processes; CI runs them with
``-p no:cacheprovider`` and a hard timeout so a deadlocked pool fails fast
(see ``.github/workflows/ci.yml``).
"""

import random

import pytest

from repro.core.batch import BatchedParetoEngine, BatchPolicy
from repro.core.labelling import verify_labels
from repro.core.parallel import ProcessShardBackend
from repro.core.shard import (
    SHARD_BACKEND_NAMES,
    SerialShardBackend,
    ShardBackend,
    ShardedBatchEngine,
    ShardPlanner,
    create_backend,
    normalize_parallel,
)
from repro.core.stl import StableTreeLabelling
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.errors import UpdateError
from repro.workloads.updates import mixed_update_stream
from repro.core.config import STLConfig
from tests.conftest import paired_indexes, random_mixed_batch

#: Worker count used throughout: more workers than this box has cores, so
#: the multi-worker ownership merge is exercised even on a 1-CPU runner.
WORKERS = 4


@pytest.fixture
def process_pair(small_grid):
    """(serial engine + index, process backend + index) on the same build."""
    serial, par = paired_indexes(small_grid)
    engine = BatchedParetoEngine(serial.graph, serial.hierarchy, serial.labels)
    backend = ProcessShardBackend(
        par.graph,
        par.hierarchy,
        par.labels,
        planner=ShardPlanner(par.graph, num_shards=4),
        max_workers=WORKERS,
    )
    yield serial, engine, par, backend
    backend.close()


class TestProcessBackendEquivalence:
    def test_figure10_workload_matches_serial(self, medium_grid):
        """Entry-wise label equality on the Figure 10 workload.

        The same stream halves (a 200-edge sample doubled, then restored --
        the paper's grouped-maintenance input) go through the serial batched
        engine and the process backend; labels must agree entry-wise and
        both graphs must return to their original weights.
        """
        serial, par = paired_indexes(medium_grid)
        engine = BatchedParetoEngine(serial.graph, serial.hierarchy, serial.labels)
        backend = ProcessShardBackend(
            par.graph,
            par.hierarchy,
            par.labels,
            planner=ShardPlanner(par.graph, num_shards=4),
            max_workers=WORKERS,
        )
        try:
            stream = mixed_update_stream(serial.graph, 400, factor=2.0, seed=2025)
            escapes = 0
            for half in (stream.increases(), stream.decreases()):
                engine.apply(half.coalesce(serial.graph).updates)
                stats = backend.apply(half.coalesce(par.graph).updates)
                escapes += stats.extra.get("mark_escapes", 0)
                escapes += stats.extra.get("decrease_escapes", 0)
            assert serial.labels.equals(par.labels)
            assert verify_labels(par.graph, par.hierarchy, par.labels) == []
            for u, v, w in medium_grid.edges():
                assert par.graph.weight(u, v) == w
            # The workload must actually exercise the ownership protocol:
            # separator crossings exist on any grid plan of this size.
            assert escapes > 0
        finally:
            backend.close()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_multi_round_mixed_batches_stay_exact(self, process_pair, seed):
        """Several mixed batches in sequence: each round starts from labels
        rewritten by the previous round's owned-region repairs, which is
        exactly where a merge/settlement bug would compound."""
        serial, engine, par, backend = process_pair
        for round_ in range(3):
            batch = random_mixed_batch(serial.graph, 50, seed=seed * 10 + round_)
            engine.apply(batch.coalesce(serial.graph).updates)
            backend.apply(batch.coalesce(par.graph).updates)
            assert serial.labels.equals(par.labels)
            assert verify_labels(par.graph, par.hierarchy, par.labels) == []

    def test_fully_separator_crossing_batch_degrades_serially(self, small_grid):
        """Degenerate plan: every update touches the separator, so the whole
        batch is residual; the backend must hand it to the serial engine
        without spawning a single worker."""
        serial, par = paired_indexes(small_grid)
        planner = ShardPlanner(par.graph, num_shards=4)
        _, separator = planner.regions()
        sep = set(separator)
        updates = [
            EdgeUpdate(u, v, w, w * 2)
            for u, v, w in par.graph.edges()
            if u in sep or v in sep
        ]
        assert updates, "grid separator must touch some edges"
        backend = ProcessShardBackend(
            par.graph, par.hierarchy, par.labels, planner=planner, max_workers=WORKERS
        )
        try:
            stats = backend.apply(updates)
            assert stats.extra["sharded_updates"] == 0
            assert stats.extra["residual_updates"] == len(updates)
            assert "process_workers" not in stats.extra
            assert backend._workers is None, "degenerate plan must not spawn workers"
            BatchedParetoEngine(serial.graph, serial.hierarchy, serial.labels).apply(
                updates
            )
            assert serial.labels.equals(par.labels)
        finally:
            backend.close()

    def test_increase_only_and_decrease_only_batches(self, process_pair):
        """Each half of the phase protocol also works without the other."""
        serial, engine, par, backend = process_pair
        increases = UpdateBatch(
            EdgeUpdate(u, v, w, w * 2) for u, v, w in list(serial.graph.edges())[:40]
        )
        engine.apply(increases.coalesce(serial.graph).updates)
        backend.apply(increases.coalesce(par.graph).updates)
        assert serial.labels.equals(par.labels)
        decreases = UpdateBatch(
            EdgeUpdate(up.u, up.v, up.new_weight, up.old_weight)
            for up in increases.updates
        )
        engine.apply(decreases.coalesce(serial.graph).updates)
        backend.apply(decreases.coalesce(par.graph).updates)
        assert serial.labels.equals(par.labels)
        assert verify_labels(par.graph, par.hierarchy, par.labels) == []

    def test_non_coalesced_batch_rejected(self, small_grid):
        _, par = paired_indexes(small_grid)
        backend = ProcessShardBackend(par.graph, par.hierarchy, par.labels)
        try:
            u, v, w = next(iter(par.graph.edges()))
            with pytest.raises(UpdateError):
                backend.apply([EdgeUpdate(u, v, w, w / 2), EdgeUpdate(u, v, w / 2, w * 2)])
        finally:
            backend.close()

    def test_failed_round_tears_the_pool_down(self, process_pair, monkeypatch):
        """A worker failure mid-batch must not leave buffered replies behind:
        the pool is torn down so a retry starts from fresh workers instead of
        consuming the failed batch's replies as its own."""
        serial, engine, par, backend = process_pair
        batch = random_mixed_batch(serial.graph, 50, seed=13)
        net = batch.coalesce(par.graph)
        plan = backend.planner.plan(net)
        assert plan.populated_shards >= 2, "need a non-degenerate plan"
        from repro.core import parallel as parallel_mod

        def boom(self, timeout):
            raise RuntimeError("synthetic worker failure")

        monkeypatch.setattr(parallel_mod._RegionWorker, "recv", boom)
        with pytest.raises(RuntimeError, match="synthetic worker failure"):
            backend.apply(net.updates, plan=plan)
        assert backend._workers is None, "failed batch must close the pool"
        monkeypatch.undo()
        # The index state is torn (the failed batch half-applied), so rebuild
        # a fresh pair to show the backend itself recovered.
        engine.apply(batch.coalesce(serial.graph).updates)

    def test_explicit_max_workers_resizes_the_pool(self, process_pair):
        serial, engine, par, backend = process_pair
        batch = random_mixed_batch(serial.graph, 50, seed=14)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        assert len(backend._workers) > 1
        batch = random_mixed_batch(serial.graph, 50, seed=15)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates, max_workers=1)
        assert len(backend._workers) == 1, "conflicting request must resize"
        assert serial.labels.equals(par.labels)

    def test_close_is_idempotent_and_pool_respawns(self, process_pair):
        serial, engine, par, backend = process_pair
        batch = random_mixed_batch(serial.graph, 40, seed=7)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        assert backend._workers is not None
        backend.close()
        backend.close()
        assert backend._workers is None
        # A fresh batch after close() transparently respawns the pool.
        batch = random_mixed_batch(serial.graph, 40, seed=8)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        assert serial.labels.equals(par.labels)


class TestBackendSelection:
    def test_normalize_parallel_mappings(self):
        assert normalize_parallel(None) is None
        assert normalize_parallel(False) == "serial"
        assert normalize_parallel(True) == "thread"
        for name in SHARD_BACKEND_NAMES:
            assert normalize_parallel(name) == name

    @pytest.mark.parametrize("bogus", [1, 2.5, "threads", "fork", object()])
    def test_truthy_garbage_raises_with_allowed_set(self, bogus):
        """Regression: ``parallel`` used to accept any truthy value."""
        with pytest.raises(ValueError) as err:
            normalize_parallel(bogus)
        message = str(err.value)
        assert "allowed backends: 'process', 'serial', 'thread'" in message
        assert "True/False/None" in message

    def test_apply_batch_rejects_unknown_backend(self, small_grid):
        stl = StableTreeLabelling.build(small_grid.copy(), HierarchyOptions(leaf_size=8))
        u, v, w = next(iter(stl.graph.edges()))
        with pytest.raises(ValueError, match="allowed backends"):
            stl.apply_batch([EdgeUpdate(u, v, w, w * 2)], config=STLConfig(backend="proces"))

    def test_create_backend_registry(self, small_grid):
        stl = StableTreeLabelling.build(small_grid.copy(), HierarchyOptions(leaf_size=8))
        planner = ShardPlanner(stl.graph, num_shards=4)
        for name, cls in (
            ("serial", SerialShardBackend),
            ("thread", ShardedBatchEngine),
            ("process", ProcessShardBackend),
        ):
            backend = create_backend(name, stl.graph, stl.hierarchy, stl.labels, planner)
            try:
                assert isinstance(backend, cls)
                assert isinstance(backend, ShardBackend)
                assert backend.name == name
                assert backend.planner is planner
            finally:
                backend.close()
        with pytest.raises(ValueError, match="allowed backends"):
            create_backend("gpu", stl.graph, stl.hierarchy, stl.labels)

    def test_policy_backend_for_crossover(self):
        policy = BatchPolicy(process_min_updates=100)
        assert policy.backend_for(99) == "thread"
        assert policy.backend_for(100) == "process"
        # The calibrated default engages the process pool at 384 net
        # updates (see BatchPolicy.process_min_updates); None disables it.
        assert BatchPolicy().backend_for(383) == "thread"
        assert BatchPolicy().backend_for(384) == "process"
        assert BatchPolicy(process_min_updates=None).backend_for(10**6) == "thread"

    def test_apply_batch_parallel_process_end_to_end(self, small_grid):
        """``apply_batch(parallel="process")`` forces the process backend and
        matches the serial route entry-wise."""
        serial, par = paired_indexes(small_grid)
        par.batch_policy = BatchPolicy(rebuild_fraction=None, max_workers=WORKERS)
        try:
            for round_ in range(2):
                batch = random_mixed_batch(serial.graph, 60, seed=round_ + 20)
                serial.apply_batch(UpdateBatch(batch.updates), config=STLConfig(backend="serial"))
                stats = par.apply_batch(UpdateBatch(batch.updates), config=STLConfig(backend="process"))
                assert stats.extra["sharded"] == 1
                assert serial.labels.equals(par.labels)
            assert par._process_backend is not None
            assert par._process_backend.planner is par._shard_engine.planner
        finally:
            par.close()
            par.close()  # idempotent

    def test_policy_crossover_routes_to_process(self, small_grid):
        stl = StableTreeLabelling.build(small_grid.copy(), HierarchyOptions(leaf_size=8))
        stl.batch_policy = BatchPolicy(
            rebuild_fraction=None,
            parallel_min_updates=10,
            parallel_min_balance=0.1,
            process_min_updates=10,
            max_workers=WORKERS,
        )
        try:
            batch = random_mixed_batch(stl.graph, 60, seed=4)
            stats = stl.apply_batch(batch)
            assert stats.extra.get("sharded") == 1
            assert stl._process_backend is not None, "crossover must pick process"
            assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []
        finally:
            stl.close()

    def test_label_search_mode_runs_process(self, small_grid):
        """Label-search mode runs on the process backend (PR 7 lifted the
        pre-PR-7 ValueError) and stays entry-wise equal to the serial engine."""
        serial = StableTreeLabelling.build(
            small_grid.copy(), HierarchyOptions(leaf_size=8), maintenance="label_search"
        )
        par = StableTreeLabelling(
            small_grid.copy(), serial.hierarchy, serial.labels.copy(),
            maintenance="label_search",
        )
        try:
            batch = random_mixed_batch(serial.graph, 50, seed=3)
            serial.apply_batch(batch, config=STLConfig(backend=False))
            stats = par.apply_batch(batch, config=STLConfig(backend="process"))
            assert stats.extra["sharded"] == 1
            assert stats.extra["label_search_engine"] == 1
            assert par.labels.differences(serial.labels) == []
        finally:
            par.close()


class TestSharedMemoryResidency:
    """Lifecycle and delta-sync behaviour of the resident worker pool."""

    def test_segment_exists_while_pool_lives_and_is_unlinked_on_close(
        self, process_pair
    ):
        import os

        serial, engine, par, backend = process_pair
        assert backend.segment_name is None, "no segment before the first batch"
        batch = random_mixed_batch(serial.graph, 50, seed=31)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        name = backend.segment_name
        assert name is not None
        assert os.path.exists(f"/dev/shm/{name}")
        assert par.labels.is_shared
        backend.close()
        assert backend.segment_name is None
        assert not os.path.exists(f"/dev/shm/{name}")
        assert not par.labels.is_shared, "close() must copy labels back out"
        assert serial.labels.equals(par.labels)

    def test_numpy_cache_invalidated_across_residency_lifecycle(self, process_pair):
        """The cached query views must never outlive a buffer adoption.

        ``share_into`` (pool spawn) and ``unshare`` (``close()``) each adopt
        a new entries buffer; a cached ``frombuffer`` view over the old one
        would serve stale distances -- and a live view over the shm segment
        would make ``memoryview.release()`` raise ``BufferError`` on close,
        so this test also covers that ordering.
        """
        pytest.importorskip("numpy")
        from repro.core.kernels import label_arrays

        serial, engine, par, backend = process_pair
        before = label_arrays(par.labels)
        epoch = par.labels.buffer_epoch
        pairs = [(0, v) for v in range(min(60, par.graph.num_vertices))]
        par.batch_query(pairs, config=STLConfig(kernel="vector"))  # cache is hot pre-share

        batch = random_mixed_batch(serial.graph, 50, seed=39)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        assert par.labels.is_shared
        assert par.labels.buffer_epoch > epoch, "share_into must bump the epoch"
        shared = label_arrays(par.labels)
        assert shared is not before, "cache must be rebuilt over the segment"
        assert par.batch_query(pairs, config=STLConfig(kernel="vector")) == par.batch_query(
            pairs, config=STLConfig(kernel="scalar"
        ))

        shared_epoch = par.labels.buffer_epoch
        backend.close()  # would raise BufferError if the cache survived
        assert not par.labels.is_shared
        assert par.labels.buffer_epoch > shared_epoch
        assert label_arrays(par.labels) is not shared
        assert par.batch_query(pairs, config=STLConfig(kernel="vector")) == par.batch_query(
            pairs, config=STLConfig(kernel="scalar"
        ))
        assert serial.labels.equals(par.labels)

    def test_pool_resize_unlinks_the_old_segment(self, process_pair):
        import os

        serial, engine, par, backend = process_pair
        batch = random_mixed_batch(serial.graph, 50, seed=32)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        first = backend.segment_name
        assert os.path.exists(f"/dev/shm/{first}")
        batch = random_mixed_batch(serial.graph, 50, seed=33)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates, max_workers=1)
        second = backend.segment_name
        assert second != first
        assert not os.path.exists(f"/dev/shm/{first}"), "old segment must be unlinked"
        assert os.path.exists(f"/dev/shm/{second}")
        assert serial.labels.equals(par.labels)

    def test_stl_close_unlinks_every_segment(self, small_grid):
        import os

        serial, par = paired_indexes(small_grid)
        par.batch_policy = BatchPolicy(rebuild_fraction=None, max_workers=WORKERS)
        batch = random_mixed_batch(serial.graph, 60, seed=34)
        serial.apply_batch(UpdateBatch(batch.updates), config=STLConfig(backend="serial"))
        par.apply_batch(UpdateBatch(batch.updates), config=STLConfig(backend="process"))
        name = par._process_backend.segment_name
        assert name is not None and os.path.exists(f"/dev/shm/{name}")
        par.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        assert serial.labels.equals(par.labels)

    def test_workers_survive_rounds_touching_no_owned_rows(self, process_pair):
        """A round whose plan skips a worker (or the whole pool) must leave
        the idle workers consistent: their next sync has to replay every
        write they missed, including serial-path writes through the shared
        labels."""
        serial, engine, par, backend = process_pair
        # Round 1: a global batch spawns the pool.
        batch = random_mixed_batch(serial.graph, 60, seed=35)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        workers_after_round1 = backend._workers
        assert workers_after_round1 is not None
        assert serial.labels.equals(par.labels)
        # Round 2: confine all updates to the edges inside one region; the
        # plan degenerates (one populated shard) and runs serially, so every
        # resident worker owns zero touched rows and receives no message.
        regions, _ = backend.planner.regions()
        target = max(regions, key=len)
        inside = set(target)
        local_edges = [
            (u, v, w) for u, v, w in par.graph.edges() if u in inside and v in inside
        ]
        assert len(local_edges) >= 10, "need a populated region"
        confined = UpdateBatch(
            EdgeUpdate(u, v, w, round(w * 1.7, 3)) for u, v, w in local_edges[:20]
        )
        engine.apply(confined.coalesce(serial.graph).updates)
        stats = backend.apply(confined.coalesce(par.graph).updates)
        assert "process_workers" not in stats.extra, "confined round must run serially"
        assert backend._workers is workers_after_round1, "idle pool must survive"
        assert serial.labels.equals(par.labels)
        # Round 3: a global batch again; the workers apply it from their
        # delta-synced adjacency (catching up on round 2's serial writes).
        batch = random_mixed_batch(serial.graph, 60, seed=36)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        assert backend._workers is workers_after_round1, "pool must not respawn"
        assert serial.labels.equals(par.labels)
        assert verify_labels(par.graph, par.hierarchy, par.labels) == []

    def test_delta_sync_survives_interleaved_serial_updates(self, process_pair):
        """Three mixed process rounds with per-update serial writes between
        them: the interleaved writes go through the master graph only, so the
        workers' resident adjacency must catch up via the weight log."""
        serial, engine, par, backend = process_pair
        rng = random.Random(36)
        for round_ in range(3):
            batch = random_mixed_batch(serial.graph, 50, seed=360 + round_)
            engine.apply(batch.coalesce(serial.graph).updates)
            backend.apply(batch.coalesce(par.graph).updates)
            assert serial.labels.equals(par.labels)
            # Interleave: single-edge updates applied through the serial
            # engine path on BOTH indexes (the process pool never sees them
            # except through the next round's weight-delta sync).
            edges = list(serial.graph.edges())
            for _ in range(5):
                u, v, w = edges[rng.randrange(len(edges))]
                new = round(rng.uniform(0.5, 40.0), 1)
                for index in (serial, par):
                    cur = index.graph.weight(u, v)
                    single = UpdateBatch([EdgeUpdate(u, v, cur, new)])
                    BatchedParetoEngine(
                        index.graph, index.hierarchy, index.labels
                    ).apply(single.coalesce(index.graph).updates)
                edges = list(serial.graph.edges())
            assert serial.labels.equals(par.labels)
        assert verify_labels(par.graph, par.hierarchy, par.labels) == []

    def test_trimmed_weight_log_forces_adjacency_resync(self, process_pair):
        """If the master graph's write log overflows between rounds, the next
        sync must fall back to a full adjacency resync (and stay exact)."""
        serial, engine, par, backend = process_pair
        batch = random_mixed_batch(serial.graph, 50, seed=37)
        engine.apply(batch.coalesce(serial.graph).updates)
        backend.apply(batch.coalesce(par.graph).updates)
        # Overflow the bounded log with no-op weight rewrites on both graphs.
        for graph in (serial.graph, par.graph):
            edges = list(graph.edges())
            bound = max(256, 2 * graph.num_edges)
            for i in range(bound + 10):
                u, v, w = edges[i % len(edges)]
                graph.set_weight(u, v, graph.weight(u, v))
        batch = random_mixed_batch(serial.graph, 50, seed=38)
        engine.apply(batch.coalesce(serial.graph).updates)
        stats = backend.apply(batch.coalesce(par.graph).updates)
        assert stats.extra.get("adjacency_resyncs", 0) > 0
        assert serial.labels.equals(par.labels)
        assert verify_labels(par.graph, par.hierarchy, par.labels) == []
