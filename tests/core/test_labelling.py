"""Unit tests for STL label construction (Definition 4.6, Lemma 4.7)."""

import math

import pytest

from repro.algorithms.dijkstra import dijkstra_rank_restricted
from repro.core.labelling import build_labels, verify_labels
from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.utils.errors import LabellingError


@pytest.fixture
def built(small_grid):
    hierarchy = build_hierarchy(small_grid, HierarchyOptions(leaf_size=8))
    labels = build_labels(small_grid, hierarchy)
    return small_grid, hierarchy, labels


class TestConstruction:
    def test_label_lengths_match_tau(self, built):
        graph, hierarchy, labels = built
        for v in graph.vertices():
            assert len(labels[v]) == hierarchy.tau[v] + 1

    def test_self_entry_is_zero(self, built):
        graph, hierarchy, labels = built
        for v in graph.vertices():
            assert labels[v][hierarchy.tau[v]] == 0.0

    def test_entries_are_subgraph_distances(self, built):
        graph, hierarchy, labels = built
        for r in list(hierarchy.vertices_in_label_order())[:20]:
            index = hierarchy.tau[r]
            expected = dijkstra_rank_restricted(graph, r, hierarchy.tau)
            for x in hierarchy.descendants(r):
                want = expected.get(x, math.inf)
                assert labels[x][index] == pytest.approx(want)

    def test_entries_never_below_global_distance(self, built):
        """Subgraph distances can only be >= distances in the whole graph."""
        from tests.conftest import nx_all_pairs

        graph, hierarchy, labels = built
        truth = nx_all_pairs(graph)
        for v in range(0, graph.num_vertices, 5):
            chain = hierarchy.ancestors(v)
            for index, r in enumerate(chain):
                entry = labels[v][index]
                if not math.isinf(entry):
                    assert entry >= truth[v][r] - 1e-9

    def test_verify_labels_passes(self, built):
        graph, hierarchy, labels = built
        assert verify_labels(graph, hierarchy, labels) == []

    def test_verify_labels_detects_corruption(self, built):
        graph, hierarchy, labels = built
        corrupted = labels.copy()
        corrupted[5][0] = 0.123
        assert verify_labels(graph, hierarchy, corrupted) != []

    def test_mismatched_hierarchy_rejected(self, small_grid):
        hierarchy = build_hierarchy(small_grid)
        other = Graph(3)
        with pytest.raises(LabellingError):
            build_labels(other, hierarchy)


class TestSTLLabelsContainer:
    def test_num_entries(self, built):
        _, hierarchy, labels = built
        assert labels.num_entries() == sum(hierarchy.tau[v] + 1 for v in range(len(labels)))

    def test_entry_bounds_checked(self, built):
        _, _, labels = built
        with pytest.raises(LabellingError):
            labels.entry(0, 999)

    def test_copy_is_deep(self, built):
        _, _, labels = built
        clone = labels.copy()
        clone[0][0] = -1.0
        assert labels[0][0] != -1.0

    def test_equals_and_differences(self, built):
        _, _, labels = built
        clone = labels.copy()
        assert labels.equals(clone)
        clone[3][0] = clone[3][0] + 1.0
        assert not labels.equals(clone)
        diffs = labels.differences(clone)
        assert len(diffs) == 1
        assert diffs[0][0] == 3

    def test_iter_entries_count(self, built):
        _, _, labels = built
        assert sum(1 for _ in labels.iter_entries()) == labels.num_entries()

    def test_memory_estimate(self, built):
        _, _, labels = built
        estimate = labels.memory_estimate()
        assert estimate.distance_entries == labels.num_entries()
        assert estimate.total_bytes == 4 * labels.num_entries()

    def test_label_of_alias(self, built):
        _, _, labels = built
        assert labels.label_of(2) is labels[2]


def test_labels_on_disconnected_graph_use_inf():
    graph = Graph.from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
    hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=2))
    labels = build_labels(graph, hierarchy)
    assert verify_labels(graph, hierarchy, labels) == []
    has_inf = any(math.isinf(d) for label in labels.labels for d in label)
    # Vertices in one component cannot reach ancestors placed in the other.
    assert has_inf or hierarchy.height <= 2
