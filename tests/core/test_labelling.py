"""Unit tests for STL label construction (Definition 4.6, Lemma 4.7)."""

import math

import pytest

from repro.algorithms.dijkstra import dijkstra_rank_restricted
from repro.core.labelling import build_labels, verify_labels
from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.utils.errors import LabellingError


@pytest.fixture
def built(small_grid):
    hierarchy = build_hierarchy(small_grid, HierarchyOptions(leaf_size=8))
    labels = build_labels(small_grid, hierarchy)
    return small_grid, hierarchy, labels


class TestConstruction:
    def test_label_lengths_match_tau(self, built):
        graph, hierarchy, labels = built
        for v in graph.vertices():
            assert len(labels[v]) == hierarchy.tau[v] + 1

    def test_self_entry_is_zero(self, built):
        graph, hierarchy, labels = built
        for v in graph.vertices():
            assert labels[v][hierarchy.tau[v]] == 0.0

    def test_entries_are_subgraph_distances(self, built):
        graph, hierarchy, labels = built
        for r in list(hierarchy.vertices_in_label_order())[:20]:
            index = hierarchy.tau[r]
            expected = dijkstra_rank_restricted(graph, r, hierarchy.tau)
            for x in hierarchy.descendants(r):
                want = expected.get(x, math.inf)
                assert labels[x][index] == pytest.approx(want)

    def test_entries_never_below_global_distance(self, built):
        """Subgraph distances can only be >= distances in the whole graph."""
        from tests.conftest import nx_all_pairs

        graph, hierarchy, labels = built
        truth = nx_all_pairs(graph)
        for v in range(0, graph.num_vertices, 5):
            chain = hierarchy.ancestors(v)
            for index, r in enumerate(chain):
                entry = labels[v][index]
                if not math.isinf(entry):
                    assert entry >= truth[v][r] - 1e-9

    def test_verify_labels_passes(self, built):
        graph, hierarchy, labels = built
        assert verify_labels(graph, hierarchy, labels) == []

    def test_verify_labels_detects_corruption(self, built):
        graph, hierarchy, labels = built
        corrupted = labels.copy()
        corrupted[5][0] = 0.123
        assert verify_labels(graph, hierarchy, corrupted) != []

    def test_mismatched_hierarchy_rejected(self, small_grid):
        hierarchy = build_hierarchy(small_grid)
        other = Graph(3)
        with pytest.raises(LabellingError):
            build_labels(other, hierarchy)


class TestSTLLabelsContainer:
    def test_num_entries(self, built):
        _, hierarchy, labels = built
        assert labels.num_entries() == sum(hierarchy.tau[v] + 1 for v in range(len(labels)))

    def test_entry_bounds_checked(self, built):
        _, _, labels = built
        with pytest.raises(LabellingError):
            labels.entry(0, 999)

    def test_copy_is_deep(self, built):
        _, _, labels = built
        clone = labels.copy()
        clone[0][0] = -1.0
        assert labels[0][0] != -1.0

    def test_equals_and_differences(self, built):
        _, _, labels = built
        clone = labels.copy()
        assert labels.equals(clone)
        clone[3][0] = clone[3][0] + 1.0
        assert not labels.equals(clone)
        diffs = labels.differences(clone)
        assert len(diffs) == 1
        assert diffs[0][0] == 3

    def test_iter_entries_count(self, built):
        _, _, labels = built
        assert sum(1 for _ in labels.iter_entries()) == labels.num_entries()

    def test_memory_estimate(self, built):
        _, _, labels = built
        estimate = labels.memory_estimate()
        assert estimate.distance_entries == labels.num_entries()
        assert estimate.total_bytes == 4 * labels.num_entries()

    def test_label_of_alias(self, built):
        _, _, labels = built
        assert labels.label_of(2) is labels[2]


def test_labels_on_disconnected_graph_use_inf():
    graph = Graph.from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
    hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=2))
    labels = build_labels(graph, hierarchy)
    assert verify_labels(graph, hierarchy, labels) == []
    has_inf = any(math.isinf(d) for label in labels.labels for d in label)
    # Vertices in one component cannot reach ancestors placed in the other.
    assert has_inf or hierarchy.height <= 2


class TestCSRStore:
    """The contiguous flat store behind STLLabels (entries + offsets)."""

    def test_view_and_offsets_are_consistent(self, built):
        _, _, labels = built
        entries = labels.view
        offsets = labels.offsets
        assert offsets[0] == 0
        assert offsets[-1] == len(entries) == labels.num_entries()
        for v in range(len(labels)):
            row = list(labels[v])
            assert row == list(entries[offsets[v] : offsets[v + 1]])

    def test_rows_write_through_to_flat_view(self, built):
        _, _, labels = built
        labels[0][0] = 42.5
        assert labels.view[labels.offsets[0]] == 42.5

    def test_store_bytes(self, built):
        from repro.core.labelling import ENTRY_BYTES, OFFSET_BYTES

        _, _, labels = built
        expected = labels.num_entries() * ENTRY_BYTES + (len(labels) + 1) * OFFSET_BYTES
        assert labels.store_bytes() == expected

    def test_from_flat_round_trip(self, built):
        from array import array

        from repro.core.labelling import STLLabels

        _, _, labels = built
        rebuilt = STLLabels.from_flat(
            array("d", labels.view), array("q", labels.offsets)
        )
        assert labels.equals(rebuilt)

    def test_from_flat_rejects_bad_offsets(self):
        from array import array

        from repro.core.labelling import STLLabels

        entries = array("d", [0.0, 1.0, 2.0])
        with pytest.raises(LabellingError):
            STLLabels.from_flat(entries, array("q", [1, 3]))  # offsets[0] != 0
        with pytest.raises(LabellingError):
            STLLabels.from_flat(entries, array("q", [0, 2]))  # offsets[-1] != len
        with pytest.raises(LabellingError):
            STLLabels.from_flat(entries, array("q", [0, 2, 1, 3]))  # decreasing

    def test_set_row_requires_matching_length(self, built):
        _, _, labels = built
        with pytest.raises(LabellingError):
            labels.set_row(0, [1.0] * (len(labels[0]) + 1))
        labels.set_row(0, [7.0] * len(labels[0]))
        assert list(labels[0]) == [7.0] * len(labels[0])

    def test_share_and_unshare_round_trip(self, built):
        from multiprocessing import shared_memory

        from repro.core.labelling import ENTRY_BYTES

        _, _, labels = built
        before = [list(row) for row in labels.labels]
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, labels.num_entries() * ENTRY_BYTES)
        )
        try:
            target = shm.buf[: labels.num_entries() * ENTRY_BYTES].cast("d")
            labels.share_into(target)
            assert labels.is_shared
            # Writes land in the segment while shared.
            labels[0][0] = 13.25
            assert target[labels.offsets[0]] == 13.25
            labels.unshare()
            assert not labels.is_shared
            del target
        finally:
            shm.close()
            shm.unlink()
        after = [list(row) for row in labels.labels]
        before[0][0] = 13.25
        assert after == before


class TestDifferencesShapeMismatches:
    """Regression: differences() must not zip-truncate unequal shapes."""

    def test_extra_vertices_are_reported(self, built):
        from repro.core.labelling import STLLabels

        _, _, labels = built
        shorter = STLLabels([list(labels[v]) for v in range(len(labels) - 2)])
        diffs = labels.differences(shorter)
        reported = {v for v, _, _, _ in diffs}
        assert len(labels) - 2 in reported
        assert len(labels) - 1 in reported
        # Symmetric: the shorter side sees the same mismatches.
        assert {v for v, _, _, _ in shorter.differences(labels)} == reported

    def test_extra_row_entries_are_reported(self, built):
        from repro.core.labelling import STLLabels

        _, _, labels = built
        rows = [list(labels[v]) for v in range(len(labels))]
        rows[4] = rows[4] + [9.0]  # one extra trailing entry
        longer = STLLabels(rows)
        diffs = labels.differences(longer)
        assert any(v == 4 and i == len(rows[4]) - 1 for v, i, _, _ in diffs)
        assert not labels.equals(longer)
