"""Unit tests for Pareto Search maintenance (Algorithms 3-5)."""

import math
import random

import pytest

from repro.core.label_search import LabelSearchDecrease, LabelSearchIncrease
from repro.core.labelling import build_labels, verify_labels
from repro.core.pareto_search import ParetoSearchDecrease, ParetoSearchIncrease
from repro.core.query import query_distance
from repro.graph.updates import EdgeUpdate
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.utils.errors import UpdateError
from tests.conftest import nx_all_pairs


def _build(graph, leaf_size=8):
    hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=leaf_size))
    labels = build_labels(graph, hierarchy)
    return hierarchy, labels


def _assert_labels_exact(graph, hierarchy, labels):
    problems = verify_labels(graph, hierarchy, labels)
    assert problems == [], problems[:5]


class TestParetoDecrease:
    def test_single_decrease_matches_rebuild(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = max(small_grid.edges(), key=lambda e: e[2])
        ParetoSearchDecrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, 1.0))
        _assert_labels_exact(small_grid, hierarchy, labels)

    def test_matches_label_search_result(self, small_grid):
        hierarchy_a, labels_a = _build(small_grid)
        graph_b = small_grid.copy()
        hierarchy_b, labels_b = hierarchy_a, labels_a.copy()
        u, v, w = list(small_grid.edges())[3]
        update = EdgeUpdate(u, v, w, max(1.0, w / 2))
        ParetoSearchDecrease(small_grid, hierarchy_a, labels_a).apply(update)
        LabelSearchDecrease(graph_b, hierarchy_b, labels_b).apply(update)
        assert labels_a.equals(labels_b), labels_a.differences(labels_b)[:5]

    def test_rejects_increase(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        with pytest.raises(UpdateError):
            ParetoSearchDecrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w * 2))

    def test_sequence_of_decreases(self, small_grid):
        hierarchy, labels = _build(small_grid)
        maintainer = ParetoSearchDecrease(small_grid, hierarchy, labels)
        for u, v, w in list(small_grid.edges())[:8]:
            maintainer.apply(EdgeUpdate(u, v, w, max(1.0, w // 2)))
        _assert_labels_exact(small_grid, hierarchy, labels)


class TestParetoIncrease:
    def test_single_increase_matches_rebuild(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = min(small_grid.edges(), key=lambda e: e[2])
        ParetoSearchIncrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w * 4))
        _assert_labels_exact(small_grid, hierarchy, labels)

    def test_matches_label_search_result(self, small_grid):
        hierarchy_a, labels_a = _build(small_grid)
        graph_b = small_grid.copy()
        labels_b = labels_a.copy()
        u, v, w = list(small_grid.edges())[5]
        update = EdgeUpdate(u, v, w, w * 3)
        ParetoSearchIncrease(small_grid, hierarchy_a, labels_a).apply(update)
        LabelSearchIncrease(graph_b, hierarchy_a, labels_b).apply(update)
        assert labels_a.equals(labels_b), labels_a.differences(labels_b)[:5]

    def test_increase_to_infinity(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        ParetoSearchIncrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, math.inf))
        _assert_labels_exact(small_grid, hierarchy, labels)

    def test_rejects_decrease(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        with pytest.raises(UpdateError):
            ParetoSearchIncrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w / 2))

    def test_queries_match_truth_after_increase(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = min(small_grid.edges(), key=lambda e: e[2])
        ParetoSearchIncrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w * 8))
        truth = nx_all_pairs(small_grid)
        for s in range(0, small_grid.num_vertices, 7):
            for t in range(0, small_grid.num_vertices, 6):
                assert query_distance(hierarchy, labels, s, t) == pytest.approx(
                    truth[s].get(t, math.inf)
                )


class TestRandomisedSequences:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_long_mixed_sequence_stays_exact(self, small_city, seed):
        graph = small_city.copy()
        hierarchy, labels = _build(graph, leaf_size=6)
        decrease = ParetoSearchDecrease(graph, hierarchy, labels)
        increase = ParetoSearchIncrease(graph, hierarchy, labels)
        rng = random.Random(seed)
        edges = list(graph.edges())
        for step in range(24):
            u, v, _ = edges[rng.randrange(len(edges))]
            w = graph.weight(u, v)
            if rng.random() < 0.5:
                increase.apply(EdgeUpdate(u, v, w, w * rng.choice([2.0, 3.0, 5.0])))
            else:
                decrease.apply(EdgeUpdate(u, v, w, max(1.0, w // 2)))
            if step % 6 == 5:
                _assert_labels_exact(graph, hierarchy, labels)
        _assert_labels_exact(graph, hierarchy, labels)

    def test_restore_cycle_returns_to_original_labels(self, small_grid):
        """Doubling then restoring every edge weight must restore the labels."""
        hierarchy, labels = _build(small_grid)
        original = labels.copy()
        increase = ParetoSearchIncrease(small_grid, hierarchy, labels)
        decrease = ParetoSearchDecrease(small_grid, hierarchy, labels)
        edges = list(small_grid.edges())[:10]
        for u, v, w in edges:
            increase.apply(EdgeUpdate(u, v, w, w * 2))
        for u, v, w in edges:
            decrease.apply(EdgeUpdate(u, v, w * 2, w))
        assert labels.equals(original), labels.differences(original)[:5]
