"""STLConfig: the one configuration object, its validator and the shims.

The API redesign folded the accreted per-call kwargs (``parallel=``,
``engine=``, ``kernel=``, ``policy=``) into one frozen dataclass validated
at construction.  These tests pin the contract: construction-time
validation through :class:`ConfigError` (a ``ValueError`` subclass),
canonical normalisation of the legacy boolean spellings, the
:func:`repro.open_network` facade, and the deprecation shims that keep the
old kwargs working while warning.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.batch import BatchPolicy, normalize_engine
from repro.core.config import DEFAULT_CONFIG, STLConfig
from repro.core.kernels import HAS_NUMPY, normalize_kernel
from repro.core.shard import normalize_parallel
from repro.core.stl import StableTreeLabelling, open_network
from repro.graph.updates import EdgeUpdate
from repro.utils.errors import (
    ConfigError,
    LabellingError,
    ReproError,
    SerializationError,
    ServiceError,
    SnapshotError,
    STLError,
    UpdateError,
)


class TestSTLConfigValidation:
    def test_default_is_all_auto(self):
        config = STLConfig()
        assert config.backend is None
        assert config.engine is None
        assert config.kernel is None
        assert config.policy is None
        assert config == DEFAULT_CONFIG

    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(ConfigError, match="allowed backends"):
            STLConfig(backend="proces")

    def test_unknown_engine_fails_at_construction(self):
        with pytest.raises(ConfigError, match="allowed engines"):
            STLConfig(engine="paretto")

    def test_unknown_kernel_fails_at_construction(self):
        with pytest.raises(ConfigError):
            STLConfig(kernel="vectorised")

    def test_policy_type_checked(self):
        with pytest.raises(ConfigError, match="BatchPolicy"):
            STLConfig(policy={"rebuild_fraction": 0.5})  # type: ignore[arg-type]

    def test_config_error_is_value_error(self):
        """Pre-redesign ``except ValueError`` handlers keep catching."""
        with pytest.raises(ValueError):
            STLConfig(backend="bogus")
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, STLError)

    def test_legacy_boolean_backends_normalised(self):
        assert STLConfig(backend=True).backend == "thread"
        assert STLConfig(backend=False).backend == "serial"
        assert STLConfig(backend=True) == STLConfig(backend="thread")
        assert hash(STLConfig(backend=False)) == hash(STLConfig(backend="serial"))

    def test_replace_revalidates(self):
        base = STLConfig(engine="label_search")
        assert base.replace(backend="process").engine == "label_search"
        with pytest.raises(ConfigError):
            base.replace(backend="nope")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            STLConfig().backend = "thread"  # type: ignore[misc]

    def test_maintenance_follows_engine(self):
        assert STLConfig().maintenance == "pareto"
        assert STLConfig(engine="pareto").maintenance == "pareto"
        assert STLConfig(engine="label_search").maintenance == "label_search"

    def test_describe(self):
        assert STLConfig().describe() == "STLConfig(auto)"
        text = STLConfig(engine="pareto", policy=BatchPolicy()).describe()
        assert "engine='pareto'" in text and "policy=custom" in text


class TestNormalizerErrors:
    """The shared validators raise the unified hierarchy's ConfigError."""

    def test_normalize_parallel(self):
        with pytest.raises(ConfigError):
            normalize_parallel("premium")

    def test_normalize_engine(self):
        with pytest.raises(ConfigError):
            normalize_engine("fast")

    def test_normalize_kernel(self):
        with pytest.raises(ConfigError):
            normalize_kernel("gpu")

    @pytest.mark.skipif(HAS_NUMPY, reason="needs the no-numpy interpreter")
    def test_vector_without_numpy_is_config_error(self):
        with pytest.raises(ConfigError):
            STLConfig(kernel="vector")


class TestErrorHierarchy:
    """One root, documented subclasses, and the historical alias."""

    def test_single_root(self):
        for exc in (ConfigError, SnapshotError, ServiceError, SerializationError,
                    UpdateError, LabellingError):
            assert issubclass(exc, STLError)

    def test_repro_error_alias(self):
        assert ReproError is STLError


class TestOpenNetwork:
    def test_facade_builds_configured_index(self, small_grid):
        config = STLConfig(engine="label_search", kernel="scalar")
        stl = open_network(small_grid, config=config)
        assert stl.config is config
        assert stl.maintenance_mode == "label_search"
        assert repro.open_network is open_network

    def test_default_config(self, small_grid):
        stl = open_network(small_grid)
        assert stl.config == DEFAULT_CONFIG
        assert stl.maintenance_mode == "pareto"

    def test_config_drives_batches_without_kwargs(self, small_grid):
        stl = open_network(small_grid, config=STLConfig(engine="label_search"))
        u, v, w = next(iter(stl.graph.edges()))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            stats = stl.apply_batch(
                [EdgeUpdate(u, v, w, w * 2) for u, v, w in list(stl.graph.edges())[:8]]
            )
        assert stats.extra.get("label_search_engine") == 1

    def test_rebuild_inherits_config(self, small_grid):
        config = STLConfig(kernel="scalar")
        stl = open_network(small_grid, config=config)
        assert stl.rebuild().config is config


class TestDeprecationShims:
    @pytest.fixture
    def stl(self, small_grid):
        return StableTreeLabelling.build(small_grid)

    def test_parallel_kwarg_warns_and_works(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        with pytest.warns(DeprecationWarning, match="backend"):
            stats = stl.apply_batch([EdgeUpdate(u, v, w, w * 2)], parallel="serial")
        assert stats.updates_processed == 1

    def test_engine_kwarg_warns_and_works(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        with pytest.warns(DeprecationWarning, match="STLConfig"):
            stats = stl.apply_batch([EdgeUpdate(u, v, w, w * 2)], engine="label_search")
        assert stats.extra.get("label_search_engine") == 1

    def test_policy_kwarg_warns_and_works(self, stl):
        updates = [EdgeUpdate(u, v, w, w * 2) for u, v, w in list(stl.graph.edges())[:5]]
        with pytest.warns(DeprecationWarning, match="policy"):
            stats = stl.apply_batch(
                updates, policy=BatchPolicy(rebuild_min_updates=1, rebuild_fraction=0.0)
            )
        assert stats.extra.get("rebuild_fallback") == 1

    def test_kernel_kwarg_warns_and_works(self, stl):
        pairs = [(0, stl.graph.num_vertices - 1)]
        with pytest.warns(DeprecationWarning, match="kernel"):
            legacy = stl.batch_query(pairs, kernel="scalar")
        assert legacy == stl.batch_query(pairs, config=STLConfig(kernel="scalar"))

    def test_legacy_booleans_still_accepted_through_shim(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        with pytest.warns(DeprecationWarning):
            stats = stl.apply_batch([EdgeUpdate(u, v, w, w * 2)], parallel=False)
        assert stats.updates_processed == 1

    def test_mixing_config_and_legacy_kwargs_rejected(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        with pytest.raises(ConfigError, match="not both"):
            stl.apply_batch(
                [EdgeUpdate(u, v, w, w * 2)], engine="pareto", config=STLConfig()
            )
        with pytest.raises(ConfigError, match="not both"):
            stl.batch_query([(0, 1)], kernel="scalar", config=STLConfig())

    def test_config_path_is_warning_free(self, stl):
        u, v, w = next(iter(stl.graph.edges()))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            stl.apply_batch([EdgeUpdate(u, v, w, w * 2)], config=STLConfig(backend="serial"))
            stl.batch_query([(0, 1)], config=STLConfig(kernel="scalar"))

    def test_explicit_all_export_surface(self):
        for name in ("open_network", "STLConfig", "STLError", "LabelSnapshot",
                     "QueryService", "QueryServer", "StableTreeLabelling"):
            assert name in repro.__all__
            assert hasattr(repro, name)
