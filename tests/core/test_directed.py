"""Unit tests for the directed-graph extension (Section 8)."""

import math

import networkx as nx
import pytest

from repro.core.directed import DirectedGraph, DirectedSTL
from repro.graph.generators import grid_road_network, random_connected_graph
from repro.hierarchy.builder import HierarchyOptions


def _truth(directed: DirectedGraph) -> dict[int, dict[int, float]]:
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(directed.num_vertices))
    for u in range(directed.num_vertices):
        for v, w in directed.out_neighbors(u):
            if nx_graph.has_edge(u, v):
                nx_graph[u][v]["weight"] = min(nx_graph[u][v]["weight"], w)
            else:
                nx_graph.add_edge(u, v, weight=w)
    return dict(nx.all_pairs_dijkstra_path_length(nx_graph))


def _asymmetric_directed(graph, seed=3):
    import random

    rng = random.Random(seed)
    extra = []
    for u, v, w in graph.edges():
        if rng.random() < 0.3:
            extra.append((u, v, w * 0.5))  # faster one-way direction
    return DirectedGraph.from_undirected(graph, asymmetry=extra)


class TestDirectedGraph:
    def test_basic_construction(self):
        directed = DirectedGraph(3)
        directed.add_edge(0, 1, 2.0)
        directed.add_edge(1, 2, 3.0)
        assert directed.out_neighbors(0) == [(1, 2.0)]
        assert directed.in_neighbors(2) == [(1, 3.0)]
        assert directed.num_edges == 2

    def test_from_undirected_symmetric(self, small_grid):
        directed = DirectedGraph.from_undirected(small_grid)
        assert directed.num_edges == 2 * small_grid.num_edges

    def test_to_undirected_round_trip(self, small_grid):
        directed = DirectedGraph.from_undirected(small_grid)
        undirected = directed.to_undirected()
        assert undirected.num_edges == small_grid.num_edges

    def test_invalid_edges_rejected(self):
        directed = DirectedGraph(2)
        with pytest.raises(Exception):
            directed.add_edge(0, 0, 1.0)
        with pytest.raises(Exception):
            directed.add_edge(0, 1, -1.0)


class TestDirectedSTL:
    def test_symmetric_graph_matches_undirected_truth(self, small_grid):
        directed = DirectedGraph.from_undirected(small_grid)
        index = DirectedSTL.build(directed, HierarchyOptions(leaf_size=8))
        truth = _truth(directed)
        for s in range(0, directed.num_vertices, 7):
            for t in range(0, directed.num_vertices, 6):
                expected = truth[s].get(t, math.inf)
                assert index.query(s, t) == pytest.approx(expected)

    def test_asymmetric_weights(self):
        graph = grid_road_network(6, 6, seed=4)
        directed = _asymmetric_directed(graph)
        index = DirectedSTL.build(directed, HierarchyOptions(leaf_size=6))
        truth = _truth(directed)
        mismatches = 0
        for s in range(directed.num_vertices):
            for t in range(directed.num_vertices):
                expected = truth[s].get(t, math.inf)
                if abs(index.query(s, t) - expected) > 1e-9:
                    mismatches += 1
        assert mismatches == 0

    def test_directed_distances_can_be_asymmetric(self):
        graph = random_connected_graph(25, 0.1, seed=2)
        directed = _asymmetric_directed(graph, seed=9)
        index = DirectedSTL.build(directed, HierarchyOptions(leaf_size=5))
        asymmetric_pairs = sum(
            1
            for s in range(directed.num_vertices)
            for t in range(s + 1, directed.num_vertices)
            if abs(index.query(s, t) - index.query(t, s)) > 1e-9
        )
        assert asymmetric_pairs > 0

    def test_entry_count(self, small_grid):
        directed = DirectedGraph.from_undirected(small_grid)
        index = DirectedSTL.build(directed, HierarchyOptions(leaf_size=8))
        assert index.num_label_entries() == 2 * sum(
            index.hierarchy.tau[v] + 1 for v in range(directed.num_vertices)
        )
