"""LabelSnapshot: the RCU read side, reclamation, tiering and persistence.

Covers the serving layer's core invariants at the object level (the
service-level concurrency suite lives in ``tests/serve``): acquired
generations are immutable under writer mutation (copy-on-write via
``adopt_labels``), retirement refuses new readers but never tears an
in-flight one, disposal runs exactly once when the last reader drains, and
the fast/fallback tiers agree with the Dijkstra oracle.  Also the PR's
regression fix: ``StableTreeLabelling.close()`` is idempotent and defers
resource teardown while snapshot readers still pin the store.
"""

from __future__ import annotations

import io
import math

import pytest

from repro.algorithms.dijkstra import dijkstra_with_target
from repro.core.serialization import (
    load_snapshot,
    save_snapshot,
    serialize_snapshot,
)
from repro.core.snapshot import FALLBACK_PATH, FAST_PATH, LabelSnapshot
from repro.core.stl import StableTreeLabelling, open_network
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate
from repro.utils.errors import LabellingError, SerializationError, SnapshotError

from tests.conftest import assert_distances_match


@pytest.fixture
def stl(small_grid):
    return StableTreeLabelling.build(small_grid)


class TestConstruction:
    def test_capture_copies_by_default(self, stl):
        snap = stl.snapshot(version=3)
        assert snap.version == 3
        assert snap.labels is not stl.labels
        assert snap.graph is not stl.graph

    def test_capture_zero_copy_shares_store(self, stl):
        snap = stl.snapshot(copy=False)
        assert snap.labels is stl.labels
        assert snap.graph is not stl.graph  # the graph is always frozen

    def test_labels_require_hierarchy(self, stl):
        with pytest.raises(SnapshotError, match="together"):
            LabelSnapshot(stl.hierarchy, None, stl.graph.copy())

    def test_mismatched_sizes_rejected(self, stl, paper_graph):
        other = StableTreeLabelling.build(paper_graph)
        with pytest.raises(SnapshotError, match="vertices"):
            LabelSnapshot(stl.hierarchy, other.labels, stl.graph.copy())


class TestReaderProtocol:
    def test_acquire_release_counts(self, stl):
        snap = stl.snapshot()
        assert snap.readers == 0
        snap.acquire()
        snap.acquire()
        assert snap.readers == 2
        snap.release()
        snap.release()
        assert snap.readers == 0

    def test_release_without_acquire(self, stl):
        with pytest.raises(SnapshotError, match="matching acquire"):
            stl.snapshot().release()

    def test_retired_snapshot_refuses_new_readers(self, stl):
        snap = stl.snapshot()
        snap.retire()
        with pytest.raises(SnapshotError, match="retired"):
            snap.acquire()

    def test_retire_without_readers_disposes_immediately(self, stl):
        snap = stl.snapshot()
        snap.retire()
        assert snap.disposed
        assert snap.labels is None and snap.hierarchy is None

    def test_epoch_drain_defers_disposal_to_last_reader(self, stl):
        snap = stl.snapshot()
        snap.acquire()
        snap.acquire()
        snap.retire()
        assert snap.retired and not snap.disposed
        # In-flight readers keep answering after retirement.
        d, tier = snap.distance(0, stl.graph.num_vertices - 1)
        assert tier == FAST_PATH and not math.isinf(d)
        snap.release()
        assert not snap.disposed
        snap.release()
        assert snap.disposed

    def test_retire_idempotent(self, stl):
        snap = stl.snapshot()
        snap.retire()
        snap.retire()
        assert snap.disposed

    def test_context_manager(self, stl):
        snap = stl.snapshot()
        with snap:
            assert snap.readers == 1
        assert snap.readers == 0

    def test_disposed_snapshot_refuses_queries(self, stl):
        snap = stl.snapshot()
        snap.retire()
        with pytest.raises(SnapshotError, match="reclaimed"):
            snap.distance(0, 1)

    def test_defer_until_drained(self, stl):
        snap = stl.snapshot()
        fired = []
        snap.defer_until_drained(lambda: fired.append("now"))
        assert fired == ["now"]  # no readers: immediate
        snap.acquire()
        snap.defer_until_drained(lambda: fired.append("later"))
        assert fired == ["now"]
        snap.retire()
        snap.release()
        assert fired == ["now", "later"]

    def test_zero_copy_acquire_pins_the_store(self, stl):
        snap = stl.snapshot(copy=False)
        snap.acquire()
        assert stl.labels.pinned and stl.labels.pin_count == 1
        snap.release()
        assert not stl.labels.pinned


class TestQueryTiering:
    def test_fast_path_matches_index(self, stl):
        snap = stl.snapshot()
        n = stl.graph.num_vertices
        for s, t in [(0, n - 1), (3, 17), (5, 5)]:
            d, tier = snap.distance(s, t)
            assert tier == FAST_PATH
            assert_distances_match(stl.query(s, t), d, f"({s},{t})")

    def test_fallback_only_matches_dijkstra(self, small_grid):
        snap = LabelSnapshot.fallback_only(small_grid)
        d, tier = snap.distance(0, small_grid.num_vertices - 1)
        assert tier == FALLBACK_PATH
        assert_distances_match(
            dijkstra_with_target(small_grid, 0, small_grid.num_vertices - 1), d
        )
        assert not snap.covers(0, 1)
        assert snap.buffer_epoch == -1

    def test_batch_distances_tiers_per_pair(self, stl):
        snap = stl.snapshot()
        pairs = [(0, 10), (2, 40), (63, 0)]
        assert snap.batch_distances(pairs) == [stl.query(s, t) for s, t in pairs]
        labelless = LabelSnapshot.fallback_only(stl.graph)
        assert labelless.batch_distances(pairs) == snap.batch_distances(pairs)

    def test_snapshot_is_immutable_under_writer_mutation(self, stl):
        """The copy-on-write discipline: publish zero-copy, shadow, mutate."""
        n = stl.graph.num_vertices
        before = {(s, t): stl.query(s, t) for s, t in [(0, n - 1), (1, 30)]}
        snap = stl.snapshot(copy=False)
        with snap:
            # Writer shadows its store (what the service does before the
            # next batch once a zero-copy snapshot is out), then mutates.
            stl.adopt_labels(stl.labels.snapshot_store())
            u, v, w = next(iter(stl.graph.edges()))
            stl.apply_batch([EdgeUpdate(u, v, w, w * 4)])
            for (s, t), expected in before.items():
                assert_distances_match(expected, snap.distance(s, t)[0], "frozen read")
        assert stl.query(0, n - 1) >= before[(0, n - 1)] - 1e-9

    def test_adopted_writer_stays_correct(self, stl, small_grid):
        from repro.core.labelling import verify_labels

        stl.snapshot(copy=False)
        stl.adopt_labels(stl.labels.snapshot_store())
        edges = list(stl.graph.edges())[:10]
        stl.apply_batch([EdgeUpdate(u, v, w, w * 2) for u, v, w in edges])
        assert verify_labels(stl.graph, stl.hierarchy, stl.labels) == []


class TestClosePinsRegression:
    """close() under the service swap path: idempotent + epoch-deferred."""

    def test_double_close_is_noop(self, stl):
        stl.close()
        stl.close()
        assert not stl.close_pending

    def test_close_with_live_reader_defers(self, stl):
        snap = stl.snapshot(copy=False)
        snap.acquire()
        stl.close()
        assert stl.close_pending  # deferred, not refused, not executed
        stl.close()  # second close during the window: no-op
        assert stl.close_pending
        snap.release()
        assert not stl.close_pending  # drained -> teardown ran

    def test_deferred_close_tears_down_process_backend(self, stl):
        stl._shard_backend("process")  # force the pooled backend alive
        assert stl._process_backend is not None
        snap = stl.snapshot(copy=False)
        snap.acquire()
        stl.close()
        assert stl._process_backend is not None  # still alive behind the pin
        snap.release()
        assert stl._process_backend is None

    def test_unmatched_unpin_rejected(self, stl):
        with pytest.raises(LabellingError, match="unpin"):
            stl.labels.unpin()


class TestSnapshotPersistence:
    def test_round_trip_labelled(self, stl):
        snap = stl.snapshot(version=9)
        handle = io.StringIO()
        with snap:
            save_snapshot(snap, handle)
        handle.seek(0)
        restored = load_snapshot(handle)
        assert restored.version == 9
        n = stl.graph.num_vertices
        for s, t in [(0, n - 1), (7, 22)]:
            d, tier = restored.distance(s, t)
            assert tier == FAST_PATH
            assert_distances_match(stl.query(s, t), d)

    def test_round_trip_fallback_only(self, small_grid):
        snap = LabelSnapshot.fallback_only(small_grid)
        handle = io.StringIO()
        save_snapshot(snap, handle)
        handle.seek(0)
        restored = load_snapshot(handle)
        assert restored.labels is None
        assert_distances_match(
            snap.distance(0, 30)[0], restored.distance(0, 30)[0], "fallback round trip"
        )

    def test_infinite_weights_survive(self):
        graph = Graph.from_edges(4, [(0, 1, 2.0), (2, 3, 5.0)])
        stl = open_network(graph)
        snap = stl.snapshot()
        handle = io.StringIO()
        with snap:
            save_snapshot(snap, handle)
        handle.seek(0)
        restored = load_snapshot(handle)
        assert math.isinf(restored.distance(0, 3)[0])
        assert restored.distance(2, 3)[0] == 5.0

    def test_disposed_snapshot_refused(self, stl):
        snap = stl.snapshot()
        snap.retire()
        with pytest.raises(SerializationError, match="reclaimed"):
            serialize_snapshot(snap)

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError, match="snapshot format"):
            load_snapshot(io.StringIO('{"snapshot_format": 99}'))

    def test_files_round_trip(self, stl, tmp_path):
        path = tmp_path / "snap.json"
        with stl.snapshot(version=2) as snap:
            save_snapshot(snap, path)
        restored = load_snapshot(path)
        assert restored.version == 2
        assert restored.num_vertices == stl.graph.num_vertices
