"""Unit tests for Label Search maintenance (Algorithms 1 and 2)."""

import math
import random

import pytest

from repro.core.batch_label_search import BatchedLabelSearchEngine
from repro.core.label_search import LabelSearchDecrease, LabelSearchIncrease
from repro.core.labelling import build_labels, verify_labels
from repro.core.query import query_distance
from repro.graph.updates import EdgeUpdate
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.utils.errors import UpdateError
from tests.conftest import nx_all_pairs, random_mixed_batch


def _build(graph, leaf_size=8):
    hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=leaf_size))
    labels = build_labels(graph, hierarchy)
    return hierarchy, labels


def _assert_labels_exact(graph, hierarchy, labels):
    problems = verify_labels(graph, hierarchy, labels)
    assert problems == [], problems[:5]


class TestDecrease:
    def test_single_decrease_matches_rebuild(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        LabelSearchDecrease(small_grid, hierarchy, labels).apply(
            EdgeUpdate(u, v, w, max(1.0, w / 2))
        )
        _assert_labels_exact(small_grid, hierarchy, labels)

    def test_decrease_changes_queries(self, small_grid):
        hierarchy, labels = _build(small_grid)
        # Pick the heaviest edge and make it nearly free: some query must improve.
        u, v, w = max(small_grid.edges(), key=lambda e: e[2])
        before = query_distance(hierarchy, labels, u, v)
        LabelSearchDecrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, 1.0))
        after = query_distance(hierarchy, labels, u, v)
        assert after <= before
        assert after == 1.0

    def test_no_op_decrease_changes_nothing(self, small_grid):
        hierarchy, labels = _build(small_grid)
        snapshot = labels.copy()
        u, v, w = next(iter(small_grid.edges()))
        # Decrease to a value still larger than any alternative path won't
        # change labels if the edge was not on any shortest path; either way,
        # labels must remain exact.
        LabelSearchDecrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w * 0.999))
        _assert_labels_exact(small_grid, hierarchy, labels)
        assert labels.num_entries() == snapshot.num_entries()

    def test_batch_decrease(self, small_grid):
        hierarchy, labels = _build(small_grid)
        edges = list(small_grid.edges())[:5]
        updates = [EdgeUpdate(u, v, w, max(1.0, w / 3)) for u, v, w in edges]
        stats = LabelSearchDecrease(small_grid, hierarchy, labels).apply(updates)
        assert stats.updates_processed == 5
        _assert_labels_exact(small_grid, hierarchy, labels)

    def test_rejects_increase(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        with pytest.raises(UpdateError):
            LabelSearchDecrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w * 2))


class TestIncrease:
    def test_single_increase_matches_rebuild(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        LabelSearchIncrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w * 3))
        _assert_labels_exact(small_grid, hierarchy, labels)

    def test_increase_then_queries_match_truth(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = min(small_grid.edges(), key=lambda e: e[2])
        LabelSearchIncrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w * 10))
        truth = nx_all_pairs(small_grid)
        for s in range(0, small_grid.num_vertices, 6):
            for t in range(0, small_grid.num_vertices, 5):
                assert query_distance(hierarchy, labels, s, t) == pytest.approx(
                    truth[s].get(t, math.inf)
                )

    def test_batch_increase(self, small_grid):
        hierarchy, labels = _build(small_grid)
        edges = list(small_grid.edges())[:5]
        updates = [EdgeUpdate(u, v, w, w * 2) for u, v, w in edges]
        LabelSearchIncrease(small_grid, hierarchy, labels).apply(updates)
        _assert_labels_exact(small_grid, hierarchy, labels)

    def test_increase_to_infinity_models_deletion(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        LabelSearchIncrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, math.inf))
        _assert_labels_exact(small_grid, hierarchy, labels)

    def test_rejects_decrease(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        with pytest.raises(UpdateError):
            LabelSearchIncrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, w / 2))


class TestRandomisedSequences:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_long_mixed_sequence_stays_exact(self, small_city, seed):
        hierarchy, labels = _build(small_city, leaf_size=6)
        decrease = LabelSearchDecrease(small_city, hierarchy, labels)
        increase = LabelSearchIncrease(small_city, hierarchy, labels)
        rng = random.Random(seed)
        edges = list(small_city.edges())
        for step in range(20):
            u, v, _ = edges[rng.randrange(len(edges))]
            w = small_city.weight(u, v)
            if rng.random() < 0.5:
                increase.apply(EdgeUpdate(u, v, w, w * rng.choice([2.0, 3.0])))
            else:
                decrease.apply(EdgeUpdate(u, v, w, max(1.0, w // 2)))
            if step % 5 == 4:
                _assert_labels_exact(small_city, hierarchy, labels)
        _assert_labels_exact(small_city, hierarchy, labels)

    def test_stats_are_populated(self, small_grid):
        hierarchy, labels = _build(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        stats = LabelSearchDecrease(small_grid, hierarchy, labels).apply(EdgeUpdate(u, v, w, 1.0))
        assert stats.updates_processed == 1
        assert stats.heap_pushes >= 0
        merged = stats
        merged.merge(stats)
        assert merged.updates_processed == 2


class TestBatchedEngine:
    """Regression coverage for the batched Label Search engine (PR 7)."""

    def test_repeated_batches_stay_exact(self, small_grid):
        """Label Search mirror of the sharded engine's regression: repeated
        mixed batches land on labels whose entries were rewritten by earlier
        repairs, so a marking predicate that is too strict (or an
        old-shortest-path test that drifted from ``on_old_shortest_path``)
        silently loses increase deltas only from round two onward."""
        hierarchy, labels = _build(small_grid)
        engine = BatchedLabelSearchEngine(small_grid, hierarchy, labels)
        for round_ in range(3):
            batch = random_mixed_batch(small_grid, 40, seed=round_)
            engine.apply(batch.coalesce(small_grid).updates)
            _assert_labels_exact(small_grid, hierarchy, labels)

    def test_matches_per_kind_classes(self, small_grid):
        """The batch lift changes scheduling, not results: one mixed batch
        through the engine equals the per-kind classes applied serially."""
        hierarchy, labels = _build(small_grid)
        other = small_grid.copy()
        other_labels = labels.copy()
        engine = BatchedLabelSearchEngine(small_grid, hierarchy, labels)
        batch = random_mixed_batch(small_grid, 30, seed=9).coalesce(small_grid)
        engine.apply(batch.updates)
        increases = batch.increases()
        decreases = batch.decreases()
        if len(increases):
            LabelSearchIncrease(other, hierarchy, other_labels).apply(increases)
        if len(decreases):
            LabelSearchDecrease(other, hierarchy, other_labels).apply(decreases)
        assert labels.differences(other_labels) == []
