"""Unit tests for vertex-separator extraction."""

from repro.graph.graph import Graph
from repro.partition.separator import crossing_edges, extract_separator, is_vertex_separator


def test_crossing_edges_on_path():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    edges = crossing_edges(graph, [0, 1], [2, 3])
    assert edges == [(1, 2)]


def test_extract_separator_covers_all_crossings(small_grid):
    n = small_grid.num_vertices
    side_a = list(range(n // 2))
    side_b = list(range(n // 2, n))
    separator, new_a, new_b = extract_separator(small_grid, side_a, side_b)
    assert is_vertex_separator(small_grid, separator, new_a, new_b)
    assert set(separator) | set(new_a) | set(new_b) == set(range(n))
    assert not (set(separator) & set(new_a))
    assert not (set(separator) & set(new_b))


def test_extract_separator_no_crossings():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    separator, new_a, new_b = extract_separator(graph, [0, 1], [2, 3])
    assert separator == []
    assert new_a == [0, 1]
    assert new_b == [2, 3]


def test_separator_is_reasonably_small_on_grid():
    from repro.graph.generators import grid_road_network

    graph = grid_road_network(10, 10, seed=0, drop_probability=0.0, diagonal_probability=0.0)
    # Split along rows: the optimal vertex separator has ~10 vertices.
    side_a = [v for v in range(graph.num_vertices) if v // 10 < 5]
    side_b = [v for v in range(graph.num_vertices) if v // 10 >= 5]
    separator, _, _ = extract_separator(graph, side_a, side_b)
    assert len(separator) <= 12


def test_is_vertex_separator_detects_leaks():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    assert not is_vertex_separator(graph, [], [0, 1], [2, 3])
    assert is_vertex_separator(graph, [1], [0], [2, 3])
