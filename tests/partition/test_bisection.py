"""Unit tests for the balanced bisectors."""

import pytest

from repro.graph.generators import grid_road_network, random_connected_graph
from repro.graph.graph import Graph
from repro.partition.bisection import (
    BFSBisector,
    GeometricBisector,
    HybridBisector,
    enforce_balance,
)
from repro.partition.separator import is_vertex_separator
from repro.utils.errors import PartitionError


def _check_valid_bisection(graph, vertices, bisection):
    covered = set(bisection.separator) | set(bisection.left) | set(bisection.right)
    assert covered == set(vertices)
    assert is_vertex_separator(graph, bisection.separator, bisection.left, bisection.right)


class TestGeometricBisector:
    def test_valid_on_grid(self, medium_grid):
        bisection = GeometricBisector().bisect(medium_grid, list(medium_grid.vertices()))
        _check_valid_bisection(medium_grid, list(medium_grid.vertices()), bisection)
        assert bisection.balance <= 0.7

    def test_small_separator_on_grid(self):
        graph = grid_road_network(12, 12, seed=0, drop_probability=0.0, diagonal_probability=0.0)
        bisection = GeometricBisector().bisect(graph, list(graph.vertices()))
        assert len(bisection.separator) <= 20

    def test_requires_coordinates(self, small_random):
        with pytest.raises(PartitionError):
            GeometricBisector().bisect(small_random, list(small_random.vertices()))

    def test_subset_partition(self, medium_grid):
        subset = list(range(0, medium_grid.num_vertices, 2))
        bisection = GeometricBisector().bisect(medium_grid, subset)
        covered = set(bisection.separator) | set(bisection.left) | set(bisection.right)
        assert covered == set(subset)

    def test_single_vertex(self, medium_grid):
        bisection = GeometricBisector().bisect(medium_grid, [3])
        assert bisection.left == [3]
        assert bisection.separator == []


class TestBFSBisector:
    def test_valid_without_coordinates(self, small_random):
        bisection = BFSBisector().bisect(small_random, list(small_random.vertices()))
        _check_valid_bisection(small_random, list(small_random.vertices()), bisection)

    def test_valid_on_grid(self, medium_grid):
        bisection = BFSBisector().bisect(medium_grid, list(medium_grid.vertices()))
        _check_valid_bisection(medium_grid, list(medium_grid.vertices()), bisection)


class TestHybridBisector:
    def test_uses_geometry_when_available(self, medium_grid):
        bisection = HybridBisector().bisect(medium_grid, list(medium_grid.vertices()))
        _check_valid_bisection(medium_grid, list(medium_grid.vertices()), bisection)

    def test_falls_back_without_coordinates(self, small_random):
        bisection = HybridBisector().bisect(small_random, list(small_random.vertices()))
        _check_valid_bisection(small_random, list(small_random.vertices()), bisection)

    def test_compare_both_picks_a_valid_result(self, medium_grid):
        bisection = HybridBisector(compare_both=True).bisect(
            medium_grid, list(medium_grid.vertices())
        )
        _check_valid_bisection(medium_grid, list(medium_grid.vertices()), bisection)

    def test_disconnected_subset_split_without_separator(self):
        graph = Graph.from_edges(6, [(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)])
        bisection = HybridBisector().bisect(graph, list(range(6)))
        assert bisection.separator == []
        assert set(bisection.left) | set(bisection.right) == set(range(6))


class TestBalanceCheck:
    def test_balanced_bisection_passes(self, medium_grid):
        bisection = HybridBisector().bisect(medium_grid, list(medium_grid.vertices()))
        assert enforce_balance(bisection, beta=0.2)

    def test_invalid_beta_rejected(self, medium_grid):
        bisection = HybridBisector().bisect(medium_grid, list(medium_grid.vertices()))
        with pytest.raises(PartitionError):
            enforce_balance(bisection, beta=0.9)

    def test_random_graphs_bisect_cleanly(self):
        for seed in range(4):
            graph = random_connected_graph(60, 0.05, seed=seed)
            bisection = HybridBisector().bisect(graph, list(graph.vertices()))
            _check_valid_bisection(graph, list(graph.vertices()), bisection)
