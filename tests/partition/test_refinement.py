"""Unit tests for FM-style bipartition refinement."""

from repro.graph.generators import grid_road_network
from repro.partition.metrics import edge_cut_size
from repro.partition.refinement import refine_bipartition


def test_refinement_never_increases_cut():
    graph = grid_road_network(10, 10, seed=1, drop_probability=0.0)
    n = graph.num_vertices
    # Deliberately bad split: interleaved columns.
    side_a = [v for v in range(n) if v % 2 == 0]
    side_b = [v for v in range(n) if v % 2 == 1]
    before = edge_cut_size(graph, side_a, side_b)
    new_a, new_b = refine_bipartition(graph, side_a, side_b)
    after = edge_cut_size(graph, new_a, new_b)
    assert after <= before
    assert set(new_a) | set(new_b) == set(range(n))
    assert not (set(new_a) & set(new_b))


def test_refinement_respects_balance_bound():
    graph = grid_road_network(8, 8, seed=2, drop_probability=0.0)
    n = graph.num_vertices
    side_a = list(range(n // 2))
    side_b = list(range(n // 2, n))
    new_a, new_b = refine_bipartition(graph, side_a, side_b, max_imbalance=0.6)
    assert max(len(new_a), len(new_b)) <= 0.6 * n + 1


def test_refinement_empty_input():
    graph = grid_road_network(4, 4, seed=0)
    assert refine_bipartition(graph, [], []) == ([], [])


def test_refinement_preserves_membership_sets():
    graph = grid_road_network(6, 6, seed=3)
    n = graph.num_vertices
    side_a = list(range(0, n, 3))
    side_b = [v for v in range(n) if v not in side_a]
    new_a, new_b = refine_bipartition(graph, side_a, side_b)
    assert sorted(new_a + new_b) == sorted(side_a + side_b)
