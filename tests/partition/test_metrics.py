"""Unit tests for partition metrics."""

from repro.graph.graph import Graph
from repro.partition.metrics import balance_ratio, boundary_vertices, edge_cut_size


def test_balance_ratio():
    assert balance_ratio([1, 2], [3, 4]) == 0.5
    assert balance_ratio([1, 2, 3], [4]) == 0.75
    assert balance_ratio([], []) == 0.5
    assert balance_ratio([1], []) == 1.0


def test_edge_cut_size():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])
    assert edge_cut_size(graph, [0, 1], [2, 3]) == 2
    assert edge_cut_size(graph, [0, 1, 2, 3], []) == 0


def test_boundary_vertices():
    graph = Graph.from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
    assert boundary_vertices(graph, [0, 1, 2], [3, 4]) == [2]
    assert boundary_vertices(graph, [3, 4], [0, 1, 2]) == [3]
