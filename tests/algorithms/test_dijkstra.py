"""Unit tests for Dijkstra variants against networkx ground truth."""

import math

import pytest

from repro.algorithms.dijkstra import (
    dijkstra,
    dijkstra_rank_restricted,
    dijkstra_subset,
    dijkstra_with_target,
)
from repro.graph.graph import Graph
from tests.conftest import nx_all_pairs


class TestSingleSource:
    def test_matches_networkx(self, small_grid):
        truth = nx_all_pairs(small_grid)
        for source in range(0, small_grid.num_vertices, 7):
            dist = dijkstra(small_grid, source)
            for target, expected in truth[source].items():
                assert dist[target] == pytest.approx(expected)

    def test_unreachable_is_inf(self):
        graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        dist = dijkstra(graph, 0)
        assert dist[1] == 1.0
        assert math.isinf(dist[2])

    def test_parents_reconstruct_tree(self, small_random):
        dist, parent = dijkstra(small_random, 0, with_parents=True)
        for v in range(1, small_random.num_vertices):
            if math.isinf(dist[v]):
                assert parent[v] == -1
                continue
            p = parent[v]
            assert p != -1
            assert dist[v] == pytest.approx(dist[p] + small_random.weight(p, v))

    def test_infinite_edges_skipped(self):
        graph = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        graph.set_weight(1, 2, math.inf)
        dist = dijkstra(graph, 0)
        assert math.isinf(dist[2])


class TestSinglePair:
    def test_matches_full_search(self, small_grid):
        truth = nx_all_pairs(small_grid)
        pairs = [(0, small_grid.num_vertices - 1), (3, 17), (10, 42)]
        for s, t in pairs:
            assert dijkstra_with_target(small_grid, s, t) == pytest.approx(truth[s][t])

    def test_same_vertex_is_zero(self, small_grid):
        assert dijkstra_with_target(small_grid, 5, 5) == 0.0

    def test_disconnected_pair(self):
        graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert math.isinf(dijkstra_with_target(graph, 0, 3))


class TestRestrictedSearches:
    def test_rank_restricted_respects_threshold(self, small_random):
        rank = list(range(small_random.num_vertices))
        source = 10
        reached = dijkstra_rank_restricted(small_random, source, rank)
        assert reached[source] == 0.0
        assert all(rank[v] >= rank[source] for v in reached)

    def test_rank_restricted_equals_subgraph_dijkstra(self, small_random):
        rank = [v % 5 for v in range(small_random.num_vertices)]
        source = 7
        threshold = rank[source]
        reached = dijkstra_rank_restricted(small_random, source, rank)
        allowed = {v for v in range(small_random.num_vertices) if rank[v] >= threshold}
        sub, mapping = small_random.induced_subgraph(allowed)
        sub_dist = dijkstra(sub, mapping[source])
        for v, d in reached.items():
            assert d == pytest.approx(sub_dist[mapping[v]])

    def test_subset_search(self, small_random):
        allowed = set(range(0, small_random.num_vertices, 2)) | {1}
        result = dijkstra_subset(small_random, 1, lambda v: v in allowed)
        assert result[1] == 0.0
        assert all(v in allowed or v == 1 for v in result)
