"""Unit tests for bidirectional Dijkstra."""

import math

import pytest

from repro.algorithms.bidirectional import bidirectional_dijkstra
from repro.graph.graph import Graph
from tests.conftest import nx_all_pairs


def test_matches_ground_truth_on_grid(small_grid):
    truth = nx_all_pairs(small_grid)
    n = small_grid.num_vertices
    for s in range(0, n, 9):
        for t in range(0, n, 11):
            expected = truth[s].get(t, math.inf)
            assert bidirectional_dijkstra(small_grid, s, t) == pytest.approx(expected)


def test_matches_ground_truth_on_random(seeded_random_graph):
    truth = nx_all_pairs(seeded_random_graph)
    n = seeded_random_graph.num_vertices
    for s in range(0, n, 5):
        for t in range(0, n, 7):
            expected = truth[s].get(t, math.inf)
            assert bidirectional_dijkstra(seeded_random_graph, s, t) == pytest.approx(expected)


def test_identical_endpoints():
    graph = Graph.from_edges(2, [(0, 1, 3.0)])
    assert bidirectional_dijkstra(graph, 1, 1) == 0.0


def test_disconnected_returns_inf():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    assert math.isinf(bidirectional_dijkstra(graph, 0, 2))


def test_shortcut_vs_long_path():
    # Direct edge is worse than the detour; both searches must meet correctly.
    graph = Graph.from_edges(4, [(0, 3, 10.0), (0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)])
    assert bidirectional_dijkstra(graph, 0, 3) == 6.0
