"""Unit tests for path reconstruction helpers."""

import pytest

from repro.algorithms.dijkstra import dijkstra
from repro.algorithms.paths import is_valid_path, path_weight, reconstruct_path
from repro.graph.graph import Graph


def test_reconstruct_path_from_dijkstra(small_grid):
    dist, parent = dijkstra(small_grid, 0, with_parents=True)
    target = small_grid.num_vertices - 1
    path = reconstruct_path(parent, 0, target)
    assert path[0] == 0
    assert path[-1] == target
    assert is_valid_path(small_grid, path)
    assert path_weight(small_grid, path) == pytest.approx(dist[target])


def test_reconstruct_path_same_vertex():
    assert reconstruct_path([-1], 0, 0) == [0]


def test_reconstruct_unreachable_returns_empty():
    assert reconstruct_path([-1, -1], 0, 1) == []


def test_path_weight_requires_edges():
    graph = Graph.from_edges(3, [(0, 1, 1.0)])
    with pytest.raises(Exception):
        path_weight(graph, [0, 2])


def test_is_valid_path():
    graph = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
    assert is_valid_path(graph, [0, 1, 2])
    assert not is_valid_path(graph, [0, 2])
    assert is_valid_path(graph, [1])
