"""Unit tests for A* search."""

import math

import pytest

from repro.algorithms.astar import astar_distance
from repro.graph.graph import Graph
from repro.utils.errors import GraphError
from tests.conftest import nx_all_pairs


def test_requires_coordinates():
    graph = Graph.from_edges(2, [(0, 1, 1.0)])
    with pytest.raises(GraphError):
        astar_distance(graph, 0, 1)


def test_matches_dijkstra_with_admissible_heuristic(small_grid):
    # Generator weights are ~10x the Euclidean distance, so max_speed=1
    # (heuristic = distance / 1) is strongly admissible.
    truth = nx_all_pairs(small_grid)
    n = small_grid.num_vertices
    for s, t in [(0, n - 1), (5, n // 2), (n // 3, 2 * n // 3)]:
        assert astar_distance(small_grid, s, t, max_speed=1.0) == pytest.approx(truth[s][t])


def test_same_vertex(small_grid):
    assert astar_distance(small_grid, 4, 4) == 0.0


def test_unreachable_returns_inf():
    graph = Graph(4, coordinates=[(0, 0), (1, 0), (5, 5), (6, 5)])
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(2, 3, 1.0)
    assert math.isinf(astar_distance(graph, 0, 3, max_speed=1.0))
