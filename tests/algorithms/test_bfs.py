"""Unit tests for BFS utilities."""

import math

from repro.algorithms.bfs import bfs_distances, bfs_order, double_sweep_pseudo_peripheral
from repro.graph.graph import Graph


def test_bfs_distances_hop_counts(path_graph):
    dist = bfs_distances(path_graph, 0)
    assert dist == {i: i for i in range(6)}


def test_bfs_distances_restricted():
    graph = Graph.from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
    dist = bfs_distances(graph, 0, allowed=[0, 1, 2])
    assert set(dist) == {0, 1, 2}


def test_bfs_ignores_infinite_edges():
    graph = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
    graph.set_weight(1, 2, math.inf)
    assert set(bfs_distances(graph, 0)) == {0, 1}


def test_bfs_order_starts_at_source(small_grid):
    order = bfs_order(small_grid, 3)
    assert order[0] == 3
    assert len(order) == small_grid.num_vertices
    assert len(set(order)) == len(order)


def test_double_sweep_finds_distant_pair(path_graph):
    a, b = double_sweep_pseudo_peripheral(path_graph, list(range(6)))
    assert {a, b} == {0, 5}


def test_double_sweep_on_single_vertex():
    graph = Graph(1)
    assert double_sweep_pseudo_peripheral(graph, [0]) == (0, 0)
