"""Property-based tests for the dynamic maintenance algorithms.

The central invariant: after any sequence of weight updates, the maintained
labels are identical to labels rebuilt from scratch on the updated graph --
for both Label Search and Pareto Search, and for increases and decreases.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.labelling import build_labels
from repro.core.stl import StableTreeLabelling
from repro.graph.generators import random_connected_graph
from repro.graph.updates import EdgeUpdate
from repro.hierarchy.builder import HierarchyOptions

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def update_scenarios(draw):
    """A random graph plus a random sequence of weight updates on it."""
    n = draw(st.integers(min_value=5, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_connected_graph(n, 0.15, seed=seed)
    edges = list(graph.edges())
    num_updates = draw(st.integers(min_value=1, max_value=8))
    updates = []
    for _ in range(num_updates):
        index = draw(st.integers(min_value=0, max_value=len(edges) - 1))
        action = draw(st.sampled_from(["x2", "x5", "half", "one", "x3"]))
        updates.append((index, action))
    return graph, updates


def _next_weight(current: float, action: str) -> float:
    if action == "x2":
        return current * 2
    if action == "x3":
        return current * 3
    if action == "x5":
        return current * 5
    if action == "half":
        return max(1.0, current // 2)
    return 1.0


def _replay(graph, updates, maintenance):
    stl = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=4), maintenance)
    edges = list(graph.edges())
    for index, action in updates:
        u, v, _ = edges[index]
        current = stl.graph.weight(u, v)
        new_weight = float(_next_weight(current, action))
        if new_weight == current:
            continue
        stl.apply_update(EdgeUpdate(u, v, current, new_weight))
    return stl


@SETTINGS
@given(update_scenarios())
def test_pareto_maintenance_equals_rebuild(scenario):
    graph, updates = scenario
    stl = _replay(graph, updates, "pareto")
    rebuilt = build_labels(stl.graph, stl.hierarchy)
    assert stl.labels.equals(rebuilt), stl.labels.differences(rebuilt)[:5]


@SETTINGS
@given(update_scenarios())
def test_label_search_maintenance_equals_rebuild(scenario):
    graph, updates = scenario
    stl = _replay(graph, updates, "label_search")
    rebuilt = build_labels(stl.graph, stl.hierarchy)
    assert stl.labels.equals(rebuilt), stl.labels.differences(rebuilt)[:5]


@SETTINGS
@given(update_scenarios())
def test_both_strategies_agree(scenario):
    graph, updates = scenario
    pareto = _replay(graph, updates, "pareto")
    label_search = _replay(graph, updates, "label_search")
    assert pareto.labels.equals(label_search.labels)


@SETTINGS
@given(update_scenarios())
def test_queries_remain_metric_after_updates(scenario):
    """Distances stay symmetric and satisfy the triangle inequality."""
    graph, updates = scenario
    stl = _replay(graph, updates, "pareto")
    n = graph.num_vertices
    triples = [(0, n // 2, n - 1), (n // 3, 0, n // 2)]
    for a, b, c in triples:
        assert stl.query(a, b) == pytest.approx(stl.query(b, a))
        import math

        dab, dac, dcb = stl.query(a, b), stl.query(a, c), stl.query(c, b)
        if not any(map(math.isinf, (dab, dac, dcb))):
            assert dab <= dac + dcb + 1e-9
