"""Property-based tests for the dynamic maintenance algorithms.

The central invariant: after any sequence of weight updates, the maintained
labels are identical to labels rebuilt from scratch on the updated graph --
for both Label Search and Pareto Search, per-update and batched, and for
increases and decreases (including deletions to ``inf`` and restores back).
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.core.batch import BatchPolicy
from repro.core.labelling import build_labels
from repro.core.stl import StableTreeLabelling
from repro.graph.generators import random_connected_graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.rng import make_rng
from repro.core.config import STLConfig

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def update_scenarios(draw):
    """A random graph plus a random sequence of weight updates on it."""
    n = draw(st.integers(min_value=5, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_connected_graph(n, 0.15, seed=seed)
    edges = list(graph.edges())
    num_updates = draw(st.integers(min_value=1, max_value=8))
    updates = []
    for _ in range(num_updates):
        index = draw(st.integers(min_value=0, max_value=len(edges) - 1))
        action = draw(st.sampled_from(["x2", "x5", "half", "one", "x3"]))
        updates.append((index, action))
    return graph, updates


def _next_weight(current: float, action: str) -> float:
    if action == "x2":
        return current * 2
    if action == "x3":
        return current * 3
    if action == "x5":
        return current * 5
    if action == "half":
        return max(1.0, current // 2)
    return 1.0


def _replay(graph, updates, maintenance):
    stl = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=4), maintenance)
    edges = list(graph.edges())
    for index, action in updates:
        u, v, _ = edges[index]
        current = stl.graph.weight(u, v)
        new_weight = float(_next_weight(current, action))
        if new_weight == current:
            continue
        stl.apply_update(EdgeUpdate(u, v, current, new_weight))
    return stl


@SETTINGS
@given(update_scenarios())
def test_pareto_maintenance_equals_rebuild(scenario):
    graph, updates = scenario
    stl = _replay(graph, updates, "pareto")
    rebuilt = build_labels(stl.graph, stl.hierarchy)
    assert stl.labels.equals(rebuilt), stl.labels.differences(rebuilt)[:5]


@SETTINGS
@given(update_scenarios())
def test_label_search_maintenance_equals_rebuild(scenario):
    graph, updates = scenario
    stl = _replay(graph, updates, "label_search")
    rebuilt = build_labels(stl.graph, stl.hierarchy)
    assert stl.labels.equals(rebuilt), stl.labels.differences(rebuilt)[:5]


@SETTINGS
@given(update_scenarios())
def test_both_strategies_agree(scenario):
    graph, updates = scenario
    pareto = _replay(graph, updates, "pareto")
    label_search = _replay(graph, updates, "label_search")
    assert pareto.labels.equals(label_search.labels)


@SETTINGS
@given(update_scenarios())
def test_queries_remain_metric_after_updates(scenario):
    """Distances stay symmetric and satisfy the triangle inequality."""
    graph, updates = scenario
    stl = _replay(graph, updates, "pareto")
    n = graph.num_vertices
    triples = [(0, n // 2, n - 1), (n // 3, 0, n // 2)]
    for a, b, c in triples:
        assert stl.query(a, b) == pytest.approx(stl.query(b, a))

        dab, dac, dcb = stl.query(a, b), stl.query(a, c), stl.query(c, b)
        if not any(map(math.isinf, (dab, dac, dcb))):
            assert dab <= dac + dcb + 1e-9


# --------------------------------------------------------------------------- #
# Randomized update streams through the batch engines (PR 7)
# --------------------------------------------------------------------------- #

#: Weight chains deliberately visit the awkward ends of the range: ``inf``
#: models a deletion, ``1e15`` sits next to it (a finite weight that any
#: float-overflow or isinf-confusion in the kernels would mangle), and
#: ``restore`` brings a deleted edge back.
_CHAIN_ACTIONS = ("up", "down", "delete", "near_inf", "restore")


@st.composite
def stream_scenarios(draw):
    """A random graph plus multi-round batches with repeated edges and
    deletion/restore chains, seeded through :func:`repro.utils.rng.make_rng`."""
    n = draw(st.integers(min_value=8, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_connected_graph(n, 0.18, seed=seed)
    edges = list(graph.edges())
    rng = make_rng(seed + 1)
    num_rounds = draw(st.integers(min_value=1, max_value=3))
    current = {(u, v): w for u, v, w in edges}
    rounds = []
    for _ in range(num_rounds):
        batch = []
        for _ in range(draw(st.integers(min_value=2, max_value=10))):
            u, v, _ = edges[rng.randrange(len(edges))]
            old = current[(u, v)]
            action = draw(st.sampled_from(_CHAIN_ACTIONS))
            if action == "delete":
                new = math.inf
            elif action == "near_inf":
                new = 1e15
            elif action == "restore":
                new = round(rng.uniform(1.0, 20.0), 1)
            elif action == "up":
                new = old * 2 if not math.isinf(old) else round(rng.uniform(1.0, 20.0), 1)
            else:
                new = max(0.5, old / 2) if not math.isinf(old) else 1.0
            if new == old:
                continue
            batch.append((u, v, old, new))
            current[(u, v)] = new
        if batch:
            rounds.append(batch)
    return graph, rounds


def _replay_batches(graph, rounds, engine):
    stl = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=4))
    stl.batch_policy = BatchPolicy(rebuild_fraction=None)
    for batch in rounds:
        updates = UpdateBatch(EdgeUpdate(u, v, old, new) for u, v, old, new in batch)
        stl.apply_batch(updates, config=STLConfig(backend=False, engine=engine))
    return stl


@SETTINGS
@given(stream_scenarios())
def test_batch_engines_agree_on_random_streams(scenario):
    """Both engine families land on entry-wise identical labels after the
    same stream -- and both equal a from-scratch rebuild."""
    graph, rounds = scenario
    pareto = _replay_batches(graph, rounds, "pareto")
    label_search = _replay_batches(graph, rounds, "label_search")
    assert pareto.labels.equals(label_search.labels), (
        pareto.labels.differences(label_search.labels)[:5]
    )
    rebuilt = build_labels(pareto.graph, pareto.hierarchy)
    assert pareto.labels.equals(rebuilt), pareto.labels.differences(rebuilt)[:5]


@SETTINGS
@given(stream_scenarios())
def test_batch_engines_answer_queries_like_dijkstra(scenario):
    """Query correctness against the Dijkstra oracle on the final weights --
    catches any divergence the label-shape oracle cannot see (e.g. a wrong
    but internally consistent labelling)."""
    graph, rounds = scenario
    stl = _replay_batches(graph, rounds, "label_search")
    # Replay the stream through the oracle's own update path: Graph.copy()
    # re-adds edges (finite-only), but set_weight accepts inf deletions.
    oracle = DijkstraOracle.build(graph.copy())
    for batch in rounds:
        oracle.apply_batch(EdgeUpdate(u, v, old, new) for u, v, old, new in batch)
    rng = make_rng(4242)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(10)]
    for s, t in pairs:
        expected = oracle.query(s, t)
        actual = stl.query(s, t)
        if math.isinf(expected) or math.isinf(actual):
            assert expected == actual, f"({s}, {t}): {expected} vs {actual}"
        else:
            assert actual == pytest.approx(expected), f"({s}, {t})"
