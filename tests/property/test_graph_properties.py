"""Property-based tests for the graph substrate and search algorithms."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.bidirectional import bidirectional_dijkstra
from repro.algorithms.dijkstra import dijkstra, dijkstra_with_target
from repro.graph.components import connected_components
from repro.graph.generators import random_connected_graph
from repro.graph.graph import Graph

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def arbitrary_graphs(draw):
    """Possibly disconnected graphs with random integer weights."""
    n = draw(st.integers(min_value=1, max_value=25))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=1, max_value=20),
            ),
            max_size=60,
        )
    )
    graph = Graph(n)
    for u, v, w in edges:
        if u != v:
            graph.add_edge(u, v, float(w))
    return graph


@SETTINGS
@given(arbitrary_graphs())
def test_dijkstra_matches_networkx(graph):
    import networkx as nx

    truth = dict(nx.all_pairs_dijkstra_path_length(graph.to_networkx()))
    source = 0
    dist = dijkstra(graph, source)
    for v in graph.vertices():
        expected = truth[source].get(v, math.inf)
        assert dist[v] == expected or abs(dist[v] - expected) < 1e-9


@SETTINGS
@given(arbitrary_graphs())
def test_bidirectional_matches_unidirectional(graph):
    n = graph.num_vertices
    pairs = [(0, n - 1), (n // 2, 0), (n - 1, n // 3)]
    for s, t in pairs:
        a = dijkstra_with_target(graph, s, t)
        b = bidirectional_dijkstra(graph, s, t)
        assert a == b or abs(a - b) < 1e-9


@SETTINGS
@given(arbitrary_graphs())
def test_components_partition_vertices(graph):
    components = connected_components(graph)
    seen = [v for component in components for v in component]
    assert sorted(seen) == list(graph.vertices())


@SETTINGS
@given(arbitrary_graphs())
def test_copy_equals_original(graph):
    clone = graph.copy()
    assert sorted(clone.edges()) == sorted(graph.edges())
    assert clone.num_vertices == graph.num_vertices


@SETTINGS
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=500))
def test_random_connected_graph_is_connected(n, seed):
    graph = random_connected_graph(n, 0.1, seed=seed)
    assert len(connected_components(graph)) == 1
    assert graph.num_vertices == n


@SETTINGS
@given(arbitrary_graphs(), st.integers(min_value=1, max_value=30))
def test_set_weight_is_visible_to_searches(graph, new_weight):
    edges = list(graph.edges())
    if not edges:
        return
    u, v, _ = edges[0]
    graph.set_weight(u, v, float(new_weight))
    assert dijkstra_with_target(graph, u, v) <= new_weight
