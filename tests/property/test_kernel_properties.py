"""Property-based tests: the scalar and vector query kernels always agree.

The contract under test is *exact* entry-wise equality -- both kernels run
the identical float64 additions and min-reductions, so no tolerance is
allowed.  Disconnected graphs (``inf`` answers) and ``s == t`` pairs are
generated on purpose; the whole module skips itself on the no-numpy CI leg
(there is only one kernel to compare there).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.stl import StableTreeLabelling
from repro.graph.generators import random_connected_graph
from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions
from repro.core.config import STLConfig

pytestmark = pytest.mark.skipif(
    not kernels.HAS_NUMPY, reason="requires numpy (repro[fast])"
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs_maybe_disconnected(draw):
    """One or two random connected components in a single vertex space.

    Two components guarantee ``inf`` answers for every cross-component pair,
    covering the disconnected branch of both kernels.
    """
    num_components = draw(st.integers(min_value=1, max_value=2))
    parts = [
        random_connected_graph(
            draw(st.integers(min_value=2, max_value=25)),
            draw(st.floats(min_value=0.0, max_value=0.25)),
            seed=draw(st.integers(min_value=0, max_value=10_000)),
        )
        for _ in range(num_components)
    ]
    total = sum(part.num_vertices for part in parts)
    graph = Graph(total)
    offset = 0
    for part in parts:
        for u, v, w in part.edges():
            graph.add_edge(u + offset, v + offset, w)
        offset += part.num_vertices
    return graph


@st.composite
def graphs_with_pairs(draw):
    graph = draw(graphs_maybe_disconnected())
    n = graph.num_vertices
    ids = st.integers(min_value=0, max_value=n - 1)
    pairs = draw(st.lists(st.tuples(ids, ids), min_size=0, max_size=80))
    # Force the corner cases in even when the random draw misses them.
    pairs += [(0, 0), (n - 1, n - 1), (0, n - 1)]
    return graph, pairs


class TestKernelAgreement:
    @SETTINGS
    @given(graphs_with_pairs())
    def test_scalar_and_vector_agree_entrywise(self, case):
        graph, pairs = case
        stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=4))
        scalar = stl.batch_query(pairs, config=STLConfig(kernel="scalar"))
        vector = stl.batch_query(pairs, config=STLConfig(kernel="vector"))
        assert scalar == vector

    @SETTINGS
    @given(graphs_with_pairs())
    def test_agreement_survives_maintenance(self, case):
        # Updates rewrite entries in place through the cached views; the
        # kernels must agree on the *maintained* labels too.
        graph, pairs = case
        stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=4))
        u, v, w = next(iter(graph.edges()))
        from repro.graph.updates import EdgeUpdate

        stl.apply_update(EdgeUpdate(u, v, w, w * 2.0))
        assert stl.batch_query(pairs, config=STLConfig(kernel="scalar")) == stl.batch_query(
            pairs, config=STLConfig(kernel="vector"
        ))
