"""Property-based tests (hypothesis) for STL construction and queries."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.stl import StableTreeLabelling
from repro.graph.generators import random_connected_graph
from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from tests.conftest import nx_all_pairs

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graphs(draw, max_vertices=40):
    """Random connected graphs with integer weights (many shortest-path ties)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    extra = draw(st.floats(min_value=0.0, max_value=0.25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_connected_graph(n, extra, seed=seed)


@st.composite
def weighted_trees(draw):
    """Random trees: the worst case for balanced separators (long paths)."""
    n = draw(st.integers(min_value=2, max_value=30))
    seed_rng = draw(st.integers(min_value=0, max_value=10_000))
    import random as _random

    rng = _random.Random(seed_rng)
    graph = Graph(n)
    for v in range(1, n):
        graph.add_edge(v, rng.randrange(v), float(rng.randint(1, 9)))
    return graph


class TestStaticProperties:
    @SETTINGS
    @given(connected_graphs())
    def test_queries_match_dijkstra(self, graph):
        stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=4))
        truth = nx_all_pairs(graph)
        vertices = list(graph.vertices())
        for s in vertices[:: max(1, len(vertices) // 8)]:
            for t in vertices[:: max(1, len(vertices) // 8)]:
                expected = truth[s].get(t, math.inf)
                assert abs(stl.query(s, t) - expected) < 1e-9 or stl.query(s, t) == expected

    @SETTINGS
    @given(weighted_trees())
    def test_tree_graphs(self, graph):
        stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=3))
        truth = nx_all_pairs(graph)
        for s in graph.vertices():
            t = (s * 7 + 3) % graph.num_vertices
            assert stl.query(s, t) == pytest.approx(truth[s][t])

    @SETTINGS
    @given(connected_graphs(max_vertices=30))
    def test_hierarchy_invariants(self, graph):
        hierarchy = build_hierarchy(graph, HierarchyOptions(leaf_size=4))
        # Every vertex assigned, tau consistent with chain positions.
        for v in graph.vertices():
            chain = hierarchy.ancestors(v)
            assert chain[-1] == v
            assert len(chain) == hierarchy.tau[v] + 1
        # Lemma 5.3: edges join comparable vertices.
        for u, v, _ in graph.edges():
            assert hierarchy.precedes(u, v) or hierarchy.precedes(v, u)

    @SETTINGS
    @given(connected_graphs(max_vertices=30))
    def test_two_hop_cover_property(self, graph):
        """Lemma 4.7: some common ancestor realises the exact distance."""
        stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=4))
        hierarchy, labels = stl.hierarchy, stl.labels
        truth = nx_all_pairs(graph)
        vertices = list(graph.vertices())
        for s in vertices[:: max(1, len(vertices) // 6)]:
            for t in vertices[:: max(1, len(vertices) // 6)]:
                expected = truth[s].get(t, math.inf)
                k = hierarchy.num_common_ancestors(s, t)
                if s == t or math.isinf(expected):
                    continue
                realised = min(labels[s][i] + labels[t][i] for i in range(k))
                assert realised == pytest.approx(expected)

    @SETTINGS
    @given(connected_graphs(max_vertices=30))
    def test_query_symmetry_and_triangle_inequality(self, graph):
        stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=4))
        n = graph.num_vertices
        probes = [(0, n - 1, n // 2), (n // 3, 2 * n // 3, 0)]
        for a, b, c in probes:
            dab, dba = stl.query(a, b), stl.query(b, a)
            assert dab == pytest.approx(dba)
            dac, dcb = stl.query(a, c), stl.query(c, b)
            if not any(map(math.isinf, (dab, dac, dcb))):
                assert dab <= dac + dcb + 1e-9
