"""Unit tests for the CH-W induced tree decomposition."""

from repro.baselines.contraction import ContractionHierarchy
from repro.baselines.tree_decomposition import TreeDecomposition


def _decomposition(graph):
    return TreeDecomposition(ContractionHierarchy(graph, witness_search=False))


def test_single_tree_with_root_last_in_order(small_random):
    td = _decomposition(small_random)
    assert td.parent[td.root] == -1
    assert len(td.topdown_order) == small_random.num_vertices
    assert td.topdown_order[0] == td.root


def test_bag_vertices_are_ancestors(small_random):
    """The defining H2H property: every bag member is a tree ancestor."""
    td = _decomposition(small_random)
    for v in range(small_random.num_vertices):
        for u, _ in td.bag[v]:
            assert td.is_ancestor(u, v)


def test_depths_consistent_with_parents(small_random):
    td = _decomposition(small_random)
    for v in range(small_random.num_vertices):
        parent = td.parent[v]
        if parent != -1:
            assert td.depth[v] == td.depth[parent] + 1


def test_ancestors_path(small_random):
    td = _decomposition(small_random)
    for v in range(0, small_random.num_vertices, 5):
        chain = td.ancestors(v)
        assert chain[0] == td.root
        assert chain[-1] == v
        assert len(chain) == td.depth[v] + 1


def test_subtree_contains_descendants_only(small_random):
    td = _decomposition(small_random)
    v = td.topdown_order[1] if small_random.num_vertices > 1 else td.root
    subtree = td.subtree(v)
    assert v in subtree
    for u in subtree:
        assert td.is_ancestor(v, u)


def test_height_and_width_bounds(small_grid):
    td = _decomposition(small_grid)
    assert 1 <= td.height <= small_grid.num_vertices
    assert 1 <= td.width <= small_grid.num_vertices
