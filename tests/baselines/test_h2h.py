"""Unit tests for the static H2H index."""

import math

import pytest

from repro.baselines.h2h import H2HIndex
from tests.conftest import nx_all_pairs


@pytest.fixture
def index(small_grid):
    return H2HIndex.build(small_grid)


def test_all_pairs_match_truth(index, small_grid):
    truth = nx_all_pairs(small_grid)
    for s in range(small_grid.num_vertices):
        for t in range(0, small_grid.num_vertices, 3):
            expected = truth[s].get(t, math.inf)
            assert index.query(s, t) == pytest.approx(expected)


def test_random_graphs(seeded_random_graph):
    index = H2HIndex.build(seeded_random_graph)
    truth = nx_all_pairs(seeded_random_graph)
    n = seeded_random_graph.num_vertices
    for s in range(0, n, 2):
        for t in range(0, n, 3):
            assert index.query(s, t) == pytest.approx(truth[s].get(t, math.inf))


def test_lca_is_a_common_ancestor(index, small_grid):
    td = index.td
    for s, t in [(0, 20), (5, 33), (11, 48)]:
        ancestor = index.lca(s, t)
        assert td.is_ancestor(ancestor, s)
        assert td.is_ancestor(ancestor, t)


def test_distance_arrays_match_truth(index, small_grid):
    truth = nx_all_pairs(small_grid)
    for v in range(0, small_grid.num_vertices, 6):
        chain = index.anc[v]
        for depth, ancestor in enumerate(chain):
            assert index.dist[v][depth] == pytest.approx(truth[v][ancestor])


def test_pos_points_at_bag_depths(index):
    td = index.td
    for v in range(0, len(index.pos), 7):
        bag_depths = {td.depth[u] for u, _ in td.bag[v]} | {td.depth[v]}
        assert set(index.pos[v]) == bag_depths


def test_stats_shape(index, small_grid):
    stats = index.stats()
    assert stats.num_vertices == small_grid.num_vertices
    assert stats.num_label_entries == sum(len(d) for d in index.dist)
    assert stats.tree_height == index.td.height
    assert stats.bytes_total > 4 * stats.num_label_entries  # aux data counted
