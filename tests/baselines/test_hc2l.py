"""Unit tests for the HC2L static baseline."""

import math

import pytest

from repro.baselines.hc2l import HC2L
from repro.core.stl import StableTreeLabelling
from repro.hierarchy.builder import HierarchyOptions
from tests.conftest import nx_all_pairs


@pytest.fixture
def index(small_grid):
    return HC2L.build(small_grid, leaf_size=8)


def test_all_pairs_match_truth(index, small_grid):
    truth = nx_all_pairs(small_grid)
    for s in range(small_grid.num_vertices):
        for t in range(0, small_grid.num_vertices, 3):
            expected = truth[s].get(t, math.inf)
            assert index.query(s, t) == pytest.approx(expected)


def test_random_graphs(seeded_random_graph):
    index = HC2L.build(seeded_random_graph, leaf_size=5)
    truth = nx_all_pairs(seeded_random_graph)
    n = seeded_random_graph.num_vertices
    for s in range(n):
        for t in range(0, n, 2):
            assert index.query(s, t) == pytest.approx(truth[s].get(t, math.inf))


def test_labels_store_global_distances(index, small_grid):
    """Unlike STL, HC2L entries equal distances in the whole graph."""
    truth = nx_all_pairs(small_grid)
    hierarchy = index.hierarchy
    for v in range(0, small_grid.num_vertices, 6):
        chain = hierarchy.ancestors(v)
        for position, ancestor in enumerate(chain):
            entry = index.labels[v][position]
            if not math.isinf(entry):
                assert entry == pytest.approx(truth[v][ancestor])


def test_hc2l_labels_at_least_as_large_as_stl(small_city):
    """Shortcuts densify the subgraphs, so HC2L cuts/labels dominate STL's."""
    stl = StableTreeLabelling.build(small_city.copy(), HierarchyOptions(leaf_size=8))
    hc2l = HC2L.build(small_city.copy(), leaf_size=8)
    assert hc2l.num_label_entries() >= stl.labels.num_entries()


def test_stats(index, small_grid):
    stats = index.stats()
    assert stats.method == "HC2L"
    assert stats.num_label_entries == index.num_label_entries()
    assert stats.tree_height == index.hierarchy.height
    assert stats.construction_seconds > 0


def test_disconnected_graph():
    from repro.graph.graph import Graph

    graph = Graph.from_edges(6, [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0), (4, 5, 2.0)])
    index = HC2L.build(graph, leaf_size=2)
    assert index.query(0, 2) == 3.0
    assert math.isinf(index.query(0, 5))
