"""Unit tests for contraction hierarchies (CH and CH-W)."""

import math

import pytest

from repro.baselines.contraction import ContractionHierarchy
from repro.graph.graph import Graph
from tests.conftest import nx_all_pairs


class TestConstruction:
    def test_order_is_a_permutation(self, small_random):
        ch = ContractionHierarchy(small_random)
        assert sorted(ch.order) == list(range(small_random.num_vertices))
        assert all(ch.order[ch.rank[v]] == v for v in range(small_random.num_vertices))

    def test_shortcut_graph_contains_original_edges(self, small_random):
        ch = ContractionHierarchy(small_random)
        for u, v, w in small_random.edges():
            assert ch.shortcuts[u][v] <= w

    def test_chw_has_at_least_as_many_shortcuts_as_ch(self, small_grid):
        chw = ContractionHierarchy(small_grid, witness_search=False)
        ch = ContractionHierarchy(small_grid, witness_search=True)
        assert chw.num_shortcut_edges() >= ch.num_shortcut_edges()

    def test_bag_structure(self, small_random):
        ch = ContractionHierarchy(small_random)
        for v in range(small_random.num_vertices):
            higher = ch.higher_neighbors(v)
            lower = ch.lower_neighbors(v)
            assert all(ch.rank[u] > ch.rank[v] for u, _ in higher)
            assert all(ch.rank[u] < ch.rank[v] for u, _ in lower)
            assert len(higher) + len(lower) == len(ch.shortcuts[v])

    def test_max_bag_size_reasonable_on_grid(self, small_grid):
        ch = ContractionHierarchy(small_grid, witness_search=False)
        assert ch.max_bag_size() <= small_grid.num_vertices // 2


class TestQueries:
    @pytest.mark.parametrize("witness_search", [False, True])
    def test_all_pairs_match_truth(self, seeded_random_graph, witness_search):
        ch = ContractionHierarchy(seeded_random_graph, witness_search=witness_search)
        truth = nx_all_pairs(seeded_random_graph)
        n = seeded_random_graph.num_vertices
        for s in range(0, n, 3):
            for t in range(0, n, 4):
                expected = truth[s].get(t, math.inf)
                assert ch.query(s, t) == pytest.approx(expected)

    def test_grid_queries(self, small_grid):
        ch = ContractionHierarchy(small_grid, witness_search=False)
        truth = nx_all_pairs(small_grid)
        for s, t in [(0, 63), (5, 40), (17, 22), (3, 3)]:
            s = min(s, small_grid.num_vertices - 1)
            t = min(t, small_grid.num_vertices - 1)
            assert ch.query(s, t) == pytest.approx(truth[s].get(t, math.inf))

    def test_disconnected_graph(self):
        graph = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 2.0)])
        ch = ContractionHierarchy(graph)
        assert math.isinf(ch.query(0, 3))
        assert ch.query(2, 3) == 2.0
