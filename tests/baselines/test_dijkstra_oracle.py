"""Unit tests for the index-free Dijkstra oracle."""

import pytest

from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.graph.updates import EdgeUpdate
from tests.conftest import nx_all_pairs


def test_queries_match_truth(small_grid):
    oracle = DijkstraOracle.build(small_grid)
    truth = nx_all_pairs(small_grid)
    for s, t in [(0, 10), (5, 40), (3, 3)]:
        assert oracle.query(s, t) == pytest.approx(truth[s].get(t))


def test_unidirectional_mode(small_grid):
    oracle = DijkstraOracle.build(small_grid, bidirectional=False)
    truth = nx_all_pairs(small_grid)
    assert oracle.query(0, 20) == pytest.approx(truth[0][20])


def test_updates_are_instant_and_reflected(small_grid):
    graph = small_grid.copy()
    oracle = DijkstraOracle.build(graph)
    u, v, w = max(graph.edges(), key=lambda e: e[2])
    oracle.apply_batch([EdgeUpdate(u, v, w, 1.0)])
    assert graph.weight(u, v) == 1.0
    assert oracle.query(u, v) == 1.0


def test_stats_report_zero_size(small_grid):
    stats = DijkstraOracle.build(small_grid).stats()
    assert stats.num_label_entries == 0
    assert stats.bytes_total == 0
