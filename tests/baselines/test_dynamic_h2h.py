"""Unit tests for IncH2H and DTDHL dynamic maintenance."""

import math
import random

import pytest

from repro.baselines.dtdhl import DTDHL
from repro.baselines.inch2h import IncH2H
from repro.graph.updates import EdgeUpdate
from tests.conftest import nx_all_pairs


def _assert_index_exact(index, graph, stride=4):
    truth = nx_all_pairs(graph)
    for s in range(0, graph.num_vertices, stride):
        for t in range(0, graph.num_vertices, stride - 1):
            expected = truth[s].get(t, math.inf)
            assert index.query(s, t) == pytest.approx(expected)


@pytest.mark.parametrize("cls", [IncH2H, DTDHL])
class TestDynamicMaintenance:
    def test_single_increase(self, small_grid, cls):
        graph = small_grid.copy()
        index = cls.build(graph)
        u, v, w = min(graph.edges(), key=lambda e: e[2])
        index.apply_update(EdgeUpdate(u, v, w, w * 4))
        _assert_index_exact(index, graph)

    def test_single_decrease(self, small_grid, cls):
        graph = small_grid.copy()
        index = cls.build(graph)
        u, v, w = max(graph.edges(), key=lambda e: e[2])
        index.apply_update(EdgeUpdate(u, v, w, 1.0))
        _assert_index_exact(index, graph)

    def test_batch_of_updates(self, small_grid, cls):
        graph = small_grid.copy()
        index = cls.build(graph)
        edges = list(graph.edges())[:4]
        index.apply_batch([EdgeUpdate(u, v, w, w * 2) for u, v, w in edges])
        _assert_index_exact(index, graph)

    def test_random_sequence(self, small_grid, cls):
        graph = small_grid.copy()
        index = cls.build(graph)
        rng = random.Random(7)
        edges = list(graph.edges())
        for _ in range(12):
            u, v, _ = edges[rng.randrange(len(edges))]
            w = graph.weight(u, v)
            new_w = w * 2 if rng.random() < 0.5 else max(1.0, w // 2)
            if new_w == w:
                continue
            index.apply_update(EdgeUpdate(u, v, w, float(new_w)))
        _assert_index_exact(index, graph, stride=5)

    def test_update_returns_stats(self, small_grid, cls):
        graph = small_grid.copy()
        index = cls.build(graph)
        u, v, w = next(iter(graph.edges()))
        stats = index.apply_update(EdgeUpdate(u, v, w, w * 2))
        assert stats.updates_processed == 1


class TestRelativeBehaviour:
    def test_inch2h_memory_larger_than_dtdhl(self, small_grid):
        inch2h = IncH2H.build(small_grid.copy())
        dtdhl = DTDHL.build(small_grid.copy())
        assert inch2h.stats().bytes_total > dtdhl.stats().bytes_total
        assert inch2h.stats().num_label_entries == dtdhl.stats().num_label_entries

    def test_inch2h_touches_fewer_labels_than_dtdhl(self, medium_grid):
        """The pruned maintenance must not do more label work than the full one."""
        inch2h = IncH2H.build(medium_grid.copy())
        dtdhl = DTDHL.build(medium_grid.copy())
        rng = random.Random(3)
        edges = list(medium_grid.edges())
        inch2h_work = dtdhl_work = 0
        for _ in range(6):
            u, v, w = edges[rng.randrange(len(edges))]
            update = EdgeUpdate(u, v, w, w * 3)
            inch2h_work += inch2h.apply_update(update).vertices_affected
            dtdhl_work += dtdhl.apply_update(update).vertices_affected
        assert inch2h_work <= dtdhl_work
