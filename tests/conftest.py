"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graph.generators import (
    city_road_network,
    grid_road_network,
    paper_example_graph,
    random_connected_graph,
)
from repro.graph.graph import Graph


def nx_all_pairs(graph: Graph) -> dict[int, dict[int, float]]:
    """All-pairs shortest-path distances via networkx (ground truth)."""
    return dict(nx.all_pairs_dijkstra_path_length(graph.to_networkx()))


def nx_distance(graph: Graph, s: int, t: int) -> float:
    """Single-pair ground-truth distance (inf when disconnected)."""
    nx_graph = graph.to_networkx()
    try:
        return nx.dijkstra_path_length(nx_graph, s, t)
    except nx.NetworkXNoPath:
        return math.inf


def assert_distances_match(expected: float, actual: float, context: str = "") -> None:
    """Assert two distances agree, treating inf exactly."""
    if math.isinf(expected) or math.isinf(actual):
        assert expected == actual, f"{context}: expected {expected}, got {actual}"
    else:
        assert abs(expected - actual) < 1e-9, f"{context}: expected {expected}, got {actual}"


@pytest.fixture
def triangle_graph() -> Graph:
    """A 3-cycle with distinct weights."""
    return Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])


@pytest.fixture
def path_graph() -> Graph:
    """A 6-vertex path with unit weights."""
    return Graph.from_edges(6, [(i, i + 1, 1.0) for i in range(5)])


@pytest.fixture
def small_grid() -> Graph:
    """An 8x8 perturbed grid road network."""
    return grid_road_network(8, 8, seed=7)


@pytest.fixture
def medium_grid() -> Graph:
    """A 12x12 perturbed grid road network."""
    return grid_road_network(12, 12, seed=11)


@pytest.fixture
def small_city() -> Graph:
    """A small two-city road network with highways."""
    return city_road_network(num_cities=2, city_rows=6, city_cols=6, seed=3)


@pytest.fixture
def small_random() -> Graph:
    """A 40-vertex random connected graph with integer weights."""
    return random_connected_graph(40, 0.08, seed=5)


@pytest.fixture
def paper_graph() -> Graph:
    """The 16-vertex example network from Figure 2 of the paper."""
    return paper_example_graph()


@pytest.fixture(params=[0, 1, 2])
def seeded_random_graph(request) -> Graph:
    """Three random connected graphs with different seeds."""
    return random_connected_graph(35, 0.1, seed=request.param)
