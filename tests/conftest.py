"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest

from repro.core.stl import StableTreeLabelling
from repro.graph.generators import (
    city_road_network,
    grid_road_network,
    paper_example_graph,
    random_connected_graph,
)
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.hierarchy.builder import HierarchyOptions


def nx_all_pairs(graph: Graph) -> dict[int, dict[int, float]]:
    """All-pairs shortest-path distances via networkx (ground truth)."""
    return dict(nx.all_pairs_dijkstra_path_length(graph.to_networkx()))


def nx_distance(graph: Graph, s: int, t: int) -> float:
    """Single-pair ground-truth distance (inf when disconnected)."""
    nx_graph = graph.to_networkx()
    try:
        return nx.dijkstra_path_length(nx_graph, s, t)
    except nx.NetworkXNoPath:
        return math.inf


def assert_distances_match(expected: float, actual: float, context: str = "") -> None:
    """Assert two distances agree, treating inf exactly."""
    if math.isinf(expected) or math.isinf(actual):
        assert expected == actual, f"{context}: expected {expected}, got {actual}"
    else:
        assert abs(expected - actual) < 1e-9, f"{context}: expected {expected}, got {actual}"


def random_mixed_batch(graph: Graph, num_updates: int, seed: int) -> UpdateBatch:
    """A batch whose chains repeatedly hit the same edges with both kinds.

    Each update replaces a random edge's *current* weight (tracked across
    the batch, so chains stay valid) with a fresh uniform draw -- the mix of
    increases, decreases and repeated edges the batch engines must coalesce.
    Shared by the shard, parallel and engine-equivalence suites.
    """
    rng = random.Random(seed)
    edges = list(graph.edges())
    current = {(u, v): w for u, v, w in edges}
    batch = UpdateBatch()
    for _ in range(num_updates):
        u, v, _ = edges[rng.randrange(len(edges))]
        old = current[(u, v)]
        new = round(rng.uniform(0.5, 40.0), 1)
        batch.append(EdgeUpdate(u, v, old, new))
        current[(u, v)] = new
    return batch


def paired_indexes(
    graph: Graph, leaf_size: int = 8
) -> tuple[StableTreeLabelling, StableTreeLabelling]:
    """Two indexes sharing one hierarchy/label build, on independent graphs.

    The hierarchy is weight-independent and safe to share; the graph and the
    labels are copied so the two indexes maintain fully independent state --
    the setup every cross-engine comparison test starts from.
    """
    serial = StableTreeLabelling.build(graph.copy(), HierarchyOptions(leaf_size=leaf_size))
    other = StableTreeLabelling(graph.copy(), serial.hierarchy, serial.labels.copy())
    return serial, other


@pytest.fixture
def triangle_graph() -> Graph:
    """A 3-cycle with distinct weights."""
    return Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])


@pytest.fixture
def path_graph() -> Graph:
    """A 6-vertex path with unit weights."""
    return Graph.from_edges(6, [(i, i + 1, 1.0) for i in range(5)])


@pytest.fixture
def small_grid() -> Graph:
    """An 8x8 perturbed grid road network."""
    return grid_road_network(8, 8, seed=7)


@pytest.fixture
def medium_grid() -> Graph:
    """A 12x12 perturbed grid road network."""
    return grid_road_network(12, 12, seed=11)


@pytest.fixture
def small_city() -> Graph:
    """A small two-city road network with highways."""
    return city_road_network(num_cities=2, city_rows=6, city_cols=6, seed=3)


@pytest.fixture
def small_random() -> Graph:
    """A 40-vertex random connected graph with integer weights."""
    return random_connected_graph(40, 0.08, seed=5)


@pytest.fixture
def paper_graph() -> Graph:
    """The 16-vertex example network from Figure 2 of the paper."""
    return paper_example_graph()


@pytest.fixture(params=[0, 1, 2])
def seeded_random_graph(request) -> Graph:
    """Three random connected graphs with different seeds."""
    return random_connected_graph(35, 0.1, seed=request.param)
