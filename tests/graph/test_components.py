"""Unit tests for connected-component utilities."""

import math

from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.graph import Graph


def test_single_component():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    assert is_connected(graph)
    assert connected_components(graph) == [[0, 1, 2, 3]]


def test_two_components_sorted_by_size():
    graph = Graph.from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
    components = connected_components(graph)
    assert components == [[0, 1, 2], [3, 4]]
    assert not is_connected(graph)


def test_isolated_vertices_are_components():
    graph = Graph(3)
    components = connected_components(graph)
    assert sorted(map(tuple, components)) == [(0,), (1,), (2,)]


def test_infinite_edges_are_ignored():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    graph.set_weight(1, 2, math.inf)
    components = connected_components(graph)
    assert components == [[0, 1], [2, 3]]


def test_restricted_components():
    graph = Graph.from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
    components = connected_components(graph, vertices=[0, 1, 3, 4])
    assert components == [[0, 1], [3, 4]]


def test_largest_component_returns_mapping():
    graph = Graph.from_edges(5, [(0, 1, 2.0), (1, 2, 3.0), (3, 4, 1.0)])
    sub, mapping = largest_component(graph)
    assert sub.num_vertices == 3
    assert set(mapping) == {0, 1, 2}
    assert sub.weight(mapping[0], mapping[1]) == 2.0


def test_empty_graph_is_connected():
    assert is_connected(Graph(0))
