"""Unit tests for the edge-update model."""

import pytest

from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch, UpdateKind
from repro.utils.errors import UpdateError


@pytest.fixture
def graph() -> Graph:
    return Graph.from_edges(4, [(0, 1, 2.0), (1, 2, 4.0), (2, 3, 6.0)])


class TestEdgeUpdate:
    def test_kind_classification(self):
        assert EdgeUpdate(0, 1, 2.0, 5.0).kind is UpdateKind.INCREASE
        assert EdgeUpdate(0, 1, 5.0, 2.0).kind is UpdateKind.DECREASE
        assert EdgeUpdate(0, 1, 2.0, 2.0).kind is UpdateKind.NEUTRAL

    def test_delta(self):
        assert EdgeUpdate(0, 1, 2.0, 5.0).delta == 3.0
        assert EdgeUpdate(0, 1, 5.0, 2.0).delta == -3.0

    def test_reversed(self):
        update = EdgeUpdate(0, 1, 2.0, 5.0)
        assert update.reversed() == EdgeUpdate(0, 1, 5.0, 2.0)

    def test_apply(self, graph):
        EdgeUpdate(0, 1, 2.0, 5.0).apply(graph)
        assert graph.weight(0, 1) == 5.0

    def test_apply_validates_old_weight(self, graph):
        with pytest.raises(UpdateError):
            EdgeUpdate(0, 1, 3.0, 5.0).apply(graph)

    def test_scaling_factory(self, graph):
        update = EdgeUpdate.scaling(graph, 1, 2, 2.0)
        assert update.old_weight == 4.0
        assert update.new_weight == 8.0

    def test_setting_factory(self, graph):
        update = EdgeUpdate.setting(graph, 2, 3, 1.0)
        assert update.old_weight == 6.0
        assert update.new_weight == 1.0


class TestUpdateBatch:
    def test_filtering_by_kind(self):
        batch = UpdateBatch(
            [EdgeUpdate(0, 1, 2.0, 5.0), EdgeUpdate(1, 2, 4.0, 1.0), EdgeUpdate(2, 3, 6.0, 6.0)]
        )
        assert len(batch.increases()) == 1
        assert len(batch.decreases()) == 1
        assert len(batch) == 3

    def test_apply_and_rollback(self, graph):
        batch = UpdateBatch([EdgeUpdate(0, 1, 2.0, 5.0), EdgeUpdate(1, 2, 4.0, 1.0)])
        batch.apply(graph)
        assert graph.weight(0, 1) == 5.0
        assert graph.weight(1, 2) == 1.0
        batch.rollback(graph)
        assert graph.weight(0, 1) == 2.0
        assert graph.weight(1, 2) == 4.0

    def test_reversed_batch_is_reverse_order(self):
        batch = UpdateBatch([EdgeUpdate(0, 1, 2.0, 5.0), EdgeUpdate(1, 2, 4.0, 1.0)])
        reversed_updates = list(batch.reversed())
        assert reversed_updates[0].u == 1
        assert reversed_updates[0].old_weight == 1.0

    def test_edges_deduplicates(self):
        batch = UpdateBatch(
            [EdgeUpdate(1, 0, 2.0, 5.0), EdgeUpdate(0, 1, 5.0, 2.0), EdgeUpdate(1, 2, 4.0, 8.0)]
        )
        assert batch.edges() == [(0, 1), (1, 2)]

    def test_indexing_and_append(self):
        batch = UpdateBatch()
        update = EdgeUpdate(0, 1, 2.0, 5.0)
        batch.append(update)
        assert batch[0] == update
        assert batch.updates == (update,)


class TestCoalesce:
    def test_single_updates_pass_through(self, graph):
        batch = UpdateBatch([EdgeUpdate(0, 1, 2.0, 5.0), EdgeUpdate(1, 2, 4.0, 1.0)])
        net = batch.coalesce(graph)
        assert list(net) == list(batch)

    def test_chain_folds_to_net_update(self, graph):
        batch = UpdateBatch(
            [
                EdgeUpdate(0, 1, 2.0, 9.0),
                EdgeUpdate(0, 1, 9.0, 1.0),
                EdgeUpdate(0, 1, 1.0, 7.0),
            ]
        )
        net = batch.coalesce(graph)
        assert list(net) == [EdgeUpdate(0, 1, 2.0, 7.0)]
        assert net[0].kind is UpdateKind.INCREASE

    def test_net_kind_reclassifies_mixed_chain(self, graph):
        # An increase followed by a larger decrease nets to a DECREASE.
        batch = UpdateBatch([EdgeUpdate(1, 2, 4.0, 10.0), EdgeUpdate(1, 2, 10.0, 3.0)])
        net = batch.coalesce(graph)
        assert list(net) == [EdgeUpdate(1, 2, 4.0, 3.0)]
        assert net[0].kind is UpdateKind.DECREASE

    def test_cancelling_chain_nets_to_neutral(self, graph):
        batch = UpdateBatch([EdgeUpdate(2, 3, 6.0, 12.0), EdgeUpdate(2, 3, 12.0, 6.0)])
        net = batch.coalesce(graph)
        assert len(net) == 1
        assert net[0].kind is UpdateKind.NEUTRAL

    def test_first_touch_order_and_orientation_insensitivity(self, graph):
        # (1, 0) and (0, 1) are the same undirected edge; first touch wins
        # the output slot.
        batch = UpdateBatch(
            [
                EdgeUpdate(2, 3, 6.0, 8.0),
                EdgeUpdate(1, 0, 2.0, 5.0),
                EdgeUpdate(0, 1, 5.0, 3.0),
            ]
        )
        net = batch.coalesce(graph)
        assert [(u.u, u.v) for u in net] == [(2, 3), (1, 0)]
        assert net[1].new_weight == 3.0

    def test_first_old_weight_validated_against_graph(self, graph):
        batch = UpdateBatch([EdgeUpdate(0, 1, 3.0, 5.0)])
        with pytest.raises(UpdateError):
            batch.coalesce(graph)

    def test_broken_chain_rejected(self, graph):
        batch = UpdateBatch([EdgeUpdate(0, 1, 2.0, 5.0), EdgeUpdate(0, 1, 4.0, 6.0)])
        with pytest.raises(UpdateError):
            batch.coalesce(graph)

    def test_empty_batch(self, graph):
        assert len(UpdateBatch().coalesce(graph)) == 0

    def test_first_seen_order_is_deterministic(self, graph):
        """Coalescing preserves first-seen edge order, every time.

        Shard planning (repro.core.shard.ShardPlanner) splits the coalesced
        batch by iterating it in order; a coalesce that reordered edges (or
        ordered them differently between runs) would make shard sub-batches
        -- and with them the whole parallel schedule -- nondeterministic.
        """
        batch = UpdateBatch(
            [
                EdgeUpdate(1, 2, 4.0, 7.0),
                EdgeUpdate(0, 1, 2.0, 5.0),
                EdgeUpdate(2, 3, 6.0, 1.0),
                EdgeUpdate(1, 2, 7.0, 3.0),  # second touch must not move (1, 2)
                EdgeUpdate(0, 1, 5.0, 8.0),
            ]
        )
        first_seen = [(1, 2), (0, 1), (2, 3)]
        for _ in range(3):
            net = batch.coalesce(graph)
            assert [(u.u, u.v) for u in net] == first_seen
        assert [u.new_weight for u in batch.coalesce(graph)] == [3.0, 8.0, 1.0]
