"""Unit tests for DIMACS and edge-list I/O."""

import io

import pytest

from repro.graph.generators import grid_road_network
from repro.graph.graph import Graph
from repro.graph.io import (
    read_dimacs,
    read_edge_list,
    write_dimacs,
    write_dimacs_coordinates,
    write_edge_list,
)
from repro.utils.errors import GraphError


def test_dimacs_round_trip(tmp_path):
    graph = grid_road_network(5, 5, seed=1)
    gr_path = tmp_path / "graph.gr"
    co_path = tmp_path / "graph.co"
    write_dimacs(graph, str(gr_path))
    write_dimacs_coordinates(graph, str(co_path))

    loaded = read_dimacs(str(gr_path), str(co_path))
    assert loaded.num_vertices == graph.num_vertices
    assert loaded.num_edges == graph.num_edges
    for u, v, w in graph.edges():
        assert loaded.weight(u, v) == pytest.approx(w)
    assert loaded.coordinates is not None
    for (ax, ay), (bx, by) in zip(graph.coordinates, loaded.coordinates):
        assert ax == pytest.approx(bx, abs=1e-5)
        assert ay == pytest.approx(by, abs=1e-5)


def test_dimacs_reader_parses_hand_written_file(tmp_path):
    path = tmp_path / "tiny.gr"
    path.write_text(
        "c tiny example\n"
        "p sp 3 4\n"
        "a 1 2 5\n"
        "a 2 1 5\n"
        "a 2 3 7\n"
        "a 3 2 7\n"
    )
    graph = read_dimacs(str(path))
    assert graph.num_vertices == 3
    assert graph.num_edges == 2
    assert graph.weight(0, 1) == 5.0
    assert graph.weight(1, 2) == 7.0


def test_dimacs_reader_rejects_malformed(tmp_path):
    path = tmp_path / "bad.gr"
    path.write_text("p tsp 3 1\na 1 2 5\n")
    with pytest.raises(GraphError):
        read_dimacs(str(path))


def test_dimacs_coordinates_require_coordinates():
    graph = Graph.from_edges(2, [(0, 1, 1.0)])
    with pytest.raises(GraphError):
        write_dimacs_coordinates(graph, "/tmp/never-written.co")


def test_edge_list_round_trip_file(tmp_path):
    graph = Graph.from_edges(4, [(0, 1, 1.5), (1, 2, 2.5), (2, 3, 3.0)])
    path = tmp_path / "edges.txt"
    write_edge_list(graph, str(path))
    loaded = read_edge_list(str(path))
    assert sorted(loaded.edges()) == sorted(graph.edges())


def test_edge_list_round_trip_handle():
    graph = Graph.from_edges(3, [(0, 2, 4.0)])
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    buffer.seek(0)
    loaded = read_edge_list(buffer)
    assert loaded.num_vertices == 3
    assert loaded.weight(0, 2) == 4.0
