"""Unit tests for the core Graph data structure."""

import math

import pytest

from repro.graph.graph import Graph
from repro.utils.errors import (
    EdgeNotFoundError,
    GraphError,
    InvalidWeightError,
    VertexNotFoundError,
)


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_from_edges(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert graph.num_edges == 2
        assert graph.weight(0, 1) == 2.0
        assert graph.weight(2, 1) == 3.0

    def test_coordinates_length_must_match(self):
        with pytest.raises(GraphError):
            Graph(3, coordinates=[(0.0, 0.0)])

    def test_coordinates_stored(self):
        graph = Graph(2, coordinates=[(0, 0), (1, 2)])
        assert graph.coordinates == [(0.0, 0.0), (1.0, 2.0)]


class TestEdges:
    def test_add_and_query_edge(self):
        graph = Graph(4)
        graph.add_edge(0, 3, 5.5)
        assert graph.has_edge(0, 3)
        assert graph.has_edge(3, 0)
        assert graph.weight(3, 0) == 5.5
        assert graph.num_edges == 1

    def test_add_edge_both_adjacency_lists(self):
        graph = Graph(3)
        graph.add_edge(2, 1, 4.0)
        assert (1, 4.0) in graph.neighbors(2)
        assert (2, 4.0) in graph.neighbors(1)

    def test_readding_edge_overwrites_weight(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 0, 7.0)
        assert graph.num_edges == 1
        assert graph.weight(0, 1) == 7.0

    def test_self_loop_rejected(self):
        graph = Graph(3)
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, 1.0)

    def test_negative_weight_rejected(self):
        graph = Graph(3)
        with pytest.raises(InvalidWeightError):
            graph.add_edge(0, 1, -2.0)

    def test_nan_weight_rejected(self):
        graph = Graph(3)
        with pytest.raises(InvalidWeightError):
            graph.add_edge(0, 1, float("nan"))

    def test_unknown_vertex_rejected(self):
        graph = Graph(3)
        with pytest.raises(VertexNotFoundError):
            graph.add_edge(0, 7, 1.0)

    def test_missing_edge_weight_raises(self):
        graph = Graph(3)
        with pytest.raises(EdgeNotFoundError):
            graph.weight(0, 1)

    def test_has_edge_out_of_range(self):
        graph = Graph(3)
        assert not graph.has_edge(0, 9)
        assert not graph.has_edge(1, 1)

    def test_edges_iteration_is_canonical(self):
        graph = Graph.from_edges(4, [(3, 1, 2.0), (0, 2, 1.0)])
        edges = sorted(graph.edges())
        assert edges == [(0, 2, 1.0), (1, 3, 2.0)]

    def test_degree(self):
        graph = Graph.from_edges(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1


class TestWeightUpdates:
    def test_set_weight_returns_old(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0)])
        old = graph.set_weight(0, 1, 9.0)
        assert old == 2.0
        assert graph.weight(0, 1) == 9.0
        assert (1, 9.0) in graph.neighbors(0)
        assert (0, 9.0) in graph.neighbors(1)

    def test_set_weight_reverse_orientation(self):
        graph = Graph.from_edges(3, [(2, 1, 2.0)])
        graph.set_weight(1, 2, 4.0)
        assert graph.weight(2, 1) == 4.0

    def test_set_weight_infinite_models_deletion(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0)])
        graph.set_weight(0, 1, math.inf)
        assert math.isinf(graph.weight(0, 1))

    def test_set_weight_missing_edge(self):
        graph = Graph(3)
        with pytest.raises(EdgeNotFoundError):
            graph.set_weight(0, 1, 1.0)

    def test_set_weight_negative_rejected(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0)])
        with pytest.raises(InvalidWeightError):
            graph.set_weight(0, 1, -1.0)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0)])
        clone = graph.copy()
        clone.set_weight(0, 1, 5.0)
        assert graph.weight(0, 1) == 2.0
        assert clone.weight(0, 1) == 5.0

    def test_copy_preserves_coordinates(self):
        graph = Graph(2, coordinates=[(0, 0), (1, 1)])
        graph.add_edge(0, 1, 1.0)
        assert graph.copy().coordinates == graph.coordinates

    def test_induced_subgraph(self):
        graph = Graph.from_edges(5, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)])
        sub, mapping = graph.induced_subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.weight(mapping[1], mapping[2]) == 2.0
        assert sub.weight(mapping[2], mapping[3]) == 3.0

    def test_induced_subgraph_drops_external_edges(self):
        graph = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        sub, mapping = graph.induced_subgraph([0, 2])
        assert sub.num_edges == 0
        assert set(mapping) == {0, 2}

    def test_total_weight_skips_infinite(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        graph.set_weight(0, 1, math.inf)
        assert graph.total_weight() == 3.0

    def test_to_networkx_round_trip(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph[0][1]["weight"] == 2.0


class TestWeightLog:
    """The bounded write log the resident shard workers sync from."""

    def test_changes_since_capture(self):
        graph = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        position = graph.weight_log_position()
        graph.set_weight(1, 2, 5.0)
        graph.set_weight(2, 3, 7.0)
        assert graph.weight_changes_since(position) == [(1, 2, 5.0), (2, 3, 7.0)]
        # A later capture sees only later writes.
        position = graph.weight_log_position()
        assert graph.weight_changes_since(position) == []
        graph.set_weight(0, 1, 9.0)
        assert graph.weight_changes_since(position) == [(0, 1, 9.0)]

    def test_entries_are_normalized_and_absolute(self):
        graph = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
        position = graph.weight_log_position()
        graph.set_weight(2, 1, 4.0)  # reversed endpoints normalise to (1, 2)
        graph.add_edge(1, 0, 6.0)  # overwrite path of add_edge also logs
        assert graph.weight_changes_since(position) == [(1, 2, 4.0), (0, 1, 6.0)]

    def test_trimmed_log_signals_resync(self):
        graph = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
        position = graph.weight_log_position()
        # The log is bounded by max(256, 2 * num_edges); overflow it.
        for i in range(600):
            graph.set_weight(0, 1, 1.0 + i)
        assert graph.weight_changes_since(position) is None
        # A fresh capture works again after the trim.
        position = graph.weight_log_position()
        graph.set_weight(1, 2, 3.5)
        assert graph.weight_changes_since(position) == [(1, 2, 3.5)]

    def test_structure_version_tracks_new_edges_only(self):
        graph = Graph.from_edges(3, [(0, 1, 1.0)])
        version = graph.structure_version
        graph.set_weight(0, 1, 2.0)
        graph.add_edge(0, 1, 3.0)  # overwrite, not structural
        assert graph.structure_version == version
        graph.add_edge(1, 2, 1.0)
        assert graph.structure_version == version + 1
