"""Unit tests for the synthetic road-network generators."""

import pytest

from repro.graph.components import is_connected
from repro.graph.generators import (
    city_road_network,
    delaunay_road_network,
    grid_road_network,
    highway_grid_network,
    paper_example_graph,
    random_connected_graph,
)


class TestGridRoadNetwork:
    def test_is_connected_and_sized(self):
        graph = grid_road_network(10, 12, seed=1)
        assert is_connected(graph)
        assert 0 < graph.num_vertices <= 120
        assert graph.coordinates is not None
        assert len(graph.coordinates) == graph.num_vertices

    def test_deterministic_for_seed(self):
        a = grid_road_network(8, 8, seed=42)
        b = grid_road_network(8, 8, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = grid_road_network(8, 8, seed=1)
        b = grid_road_network(8, 8, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_weights_are_positive_integers(self):
        graph = grid_road_network(6, 6, seed=3)
        for _, _, w in graph.edges():
            assert w >= 1
            assert float(w).is_integer()

    def test_no_drop_gives_full_grid(self):
        graph = grid_road_network(5, 5, seed=0, drop_probability=0.0, diagonal_probability=0.0)
        assert graph.num_vertices == 25
        assert graph.num_edges == 2 * 5 * 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            grid_road_network(0, 5)
        with pytest.raises(ValueError):
            grid_road_network(5, 5, drop_probability=1.5)


class TestCityRoadNetwork:
    def test_connected_with_highways(self):
        graph = city_road_network(num_cities=3, city_rows=5, city_cols=5, seed=0)
        assert is_connected(graph)
        assert graph.num_vertices > 50
        assert graph.coordinates is not None

    def test_average_degree_is_road_like(self):
        graph = city_road_network(num_cities=3, city_rows=8, city_cols=8, seed=1)
        average_degree = 2 * graph.num_edges / graph.num_vertices
        assert 1.5 < average_degree < 4.5


class TestHighwayGridNetwork:
    def test_connected_and_roughly_sized(self):
        graph = highway_grid_network(2_000, seed=0)
        assert is_connected(graph)
        # Largest component of a near-square grid: close to the request.
        assert 0.9 * 2_000 <= graph.num_vertices <= 1.1 * 2_000
        assert graph.coordinates is not None

    def test_deterministic_for_seed(self):
        a = highway_grid_network(1_000, seed=42)
        b = highway_grid_network(1_000, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())
        assert sorted(highway_grid_network(1_000, seed=43).edges()) != sorted(a.edges())

    def test_average_degree_is_road_like(self):
        graph = highway_grid_network(5_000, seed=1)
        average_degree = 2 * graph.num_edges / graph.num_vertices
        assert 2.0 < average_degree < 4.5

    def test_highways_are_faster_per_unit_distance(self):
        # Without arterials every weight is >= ~7 per unit of distance
        # (10 / speed 1.0 with jitter 0.3); skip edges at speed 3 sit well
        # below that band, so their presence is visible in the weight/length
        # ratio distribution.
        graph = highway_grid_network(4_096, seed=2, drop_probability=0.0)
        assert graph.coordinates is not None
        ratios = []
        for u, v, w in graph.edges():
            ax, ay = graph.coordinates[u]
            bx, by = graph.coordinates[v]
            distance = ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5
            ratios.append(w / distance)
        assert min(ratios) < 5.0 < max(ratios)

    def test_weights_are_positive_integers(self):
        graph = highway_grid_network(500, seed=3)
        for _, _, w in graph.edges():
            assert w >= 1
            assert float(w).is_integer()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            highway_grid_network(0)
        with pytest.raises(ValueError):
            highway_grid_network(100, drop_probability=1.5)
        with pytest.raises(ValueError):
            highway_grid_network(100, highway_spacing=0)


class TestDelaunayRoadNetwork:
    def test_connected_and_planarish(self):
        graph = delaunay_road_network(150, seed=0)
        assert is_connected(graph)
        try:
            import scipy  # noqa: F401

            assert graph.num_vertices > 100
        except ImportError:
            # The documented k-nearest-neighbour fallback (no scipy) loses
            # more vertices to sparsification; it still must return a
            # usable largest component.
            assert graph.num_vertices > 50
        # Planar graphs have at most 3n - 6 edges.
        assert graph.num_edges <= 3 * graph.num_vertices


class TestRandomConnectedGraph:
    def test_connected(self):
        graph = random_connected_graph(30, 0.1, seed=0)
        assert is_connected(graph)
        assert graph.num_vertices == 30

    def test_integer_weights_by_default(self):
        graph = random_connected_graph(20, 0.1, seed=1)
        assert all(float(w).is_integer() for _, _, w in graph.edges())

    def test_fractional_weights_option(self):
        graph = random_connected_graph(20, 0.1, seed=1, integer_weights=False)
        assert any(not float(w).is_integer() for _, _, w in graph.edges())


def test_paper_example_graph_shape():
    graph = paper_example_graph()
    assert graph.num_vertices == 16
    assert graph.num_edges == 26
    assert is_connected(graph)
