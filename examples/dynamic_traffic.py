"""Rush hour over the wire: concurrent clients against the TCP front.

The scenario the paper's introduction motivates: travel times rise during
the morning peak and fall back at night, and the distance index must stay
exact the whole time without ever being rebuilt.  This example boots the
full serving stack -- :class:`repro.QueryService` behind the JSON-lines
TCP server (the same stack ``python -m repro.serve`` runs) -- then replays
a rush-hour day while N client connections stream distance queries.  A
sample of every client's answers is cross-checked against a Dijkstra
oracle of the exact graph generation that produced it, demonstrating the
RCU guarantee: answers are never torn between generations.

Run with::

    PYTHONPATH=src python examples/dynamic_traffic.py
"""

import asyncio
import json
import math
import random

from repro import QueryServer, QueryService, generators
from repro.algorithms.dijkstra import dijkstra_with_target
from repro.workloads.updates import rush_hour_stream


async def rpc(reader, writer, payload):
    """One JSON-lines request/response on a persistent connection."""
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


async def query_client(name, address, graph, oracle, num_queries, rng, tally):
    """Stream random s-t queries; verify a sample against the oracle."""
    reader, writer = await asyncio.open_connection(*address)
    n = graph.num_vertices
    states = oracle["states"]
    try:
        for i in range(num_queries):
            s, t = rng.randrange(n), rng.randrange(n)
            answer = await rpc(reader, writer, {"op": "query", "s": s, "t": t})
            assert answer["ok"], answer
            tally["answered"] += 1
            if i % 10 == 0:  # oracle-check every 10th answer
                version = max(v for v in states if v <= answer["version"])
                candidates = [states[version]]
                # A commit the updater has not mirrored yet may already be
                # answering; such answers must match its staged state.
                if oracle["pending"] is not None and answer["version"] > version:
                    candidates.append(oracle["pending"])
                got = math.inf if answer["distance"] is None else answer["distance"]
                expected = [dijkstra_with_target(g, s, t) for g in candidates]
                assert any(
                    e == got if math.isinf(got) else abs(e - got) < 1e-6
                    for e in expected
                ), (
                    f"{name}: ({s},{t}) tagged v{answer['version']} "
                    f"answered {got}, oracle says {expected}"
                )
                tally["checked"] += 1
    finally:
        writer.close()
        await writer.wait_closed()


async def rush_hour(address, graph, oracle, steps, tally):
    """Replay the congestion wave through the wire protocol, one batch per
    tick, recording each committed generation's graph for the oracle."""
    reader, writer = await asyncio.open_connection(*address)
    states = oracle["states"]
    try:
        for batch in rush_hour_stream(graph.copy(), num_steps=steps, seed=42):
            if not batch.updates:
                continue
            triples = [[u.u, u.v, u.new_weight] for u in batch.updates]
            mirrored = states[max(states)].copy()
            for u, v, w in triples:
                mirrored.set_weight(u, v, w)
            oracle["pending"] = mirrored
            answer = await rpc(reader, writer, {"op": "update", "updates": triples})
            assert answer["ok"], answer
            states[answer["version"]] = mirrored
            oracle["pending"] = None
            tally["updates"] += len(triples)
            await asyncio.sleep(0.01)
    finally:
        writer.close()
        await writer.wait_closed()


async def main() -> None:
    graph = generators.city_road_network(num_cities=3, city_rows=10, city_cols=10, seed=5)
    print(f"network: {graph.num_vertices} intersections across 3 cities")

    # One mirrored graph copy per committed generation: the clients'
    # ground truth for "what should version v have answered?".
    oracle = {"states": {0: graph.copy()}, "pending": None}
    tally = {"answered": 0, "checked": 0, "updates": 0}

    service = QueryService(graph)
    async with service, QueryServer(service) as server:
        await service.wait_ready()
        print(f"serving on {server.address[0]}:{server.address[1]}")

        clients = [
            query_client(f"client-{k}", server.address, graph, oracle, 40,
                         random.Random(7 + k), tally)
            for k in range(6)
        ]
        await asyncio.gather(*clients, rush_hour(server.address, graph, oracle, 12, tally))
        stats = service.stats()

    print(
        f"rush hour replayed: {tally['updates']} weight updates in "
        f"{stats['batches_committed']} batches, "
        f"{stats['version']} generations published"
    )
    print(
        f"6 concurrent clients answered {tally['answered']} queries during the wave; "
        f"{tally['checked']} verified against the per-generation Dijkstra oracle"
    )


if __name__ == "__main__":
    asyncio.run(main())
