"""Rush-hour simulation: a day of traffic on a multi-city road network.

The scenario the paper's introduction motivates: travel times rise during the
morning peak, fall back at night, and the distance index must stay exact the
whole time without ever being rebuilt.  The script replays such a day,
compares the Pareto Search and Label Search maintenance strategies, and
cross-checks a sample of queries against bidirectional Dijkstra.

Run with::

    python examples/dynamic_traffic.py
"""

import random

from repro import StableTreeLabelling, generators
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.graph.updates import EdgeUpdate
from repro.utils.timer import Timer


def simulate_day(stl: StableTreeLabelling, seed: int = 42, hours: int = 8) -> Timer:
    """Apply one synthetic 'day' of congestion waves to the index."""
    rng = random.Random(seed)
    edges = list(stl.graph.edges())
    timer = Timer()
    congested: list[tuple[int, int, float]] = []

    for hour in range(hours):
        # Morning: congestion builds on a few arterial roads.
        if hour < hours // 2:
            for _ in range(10):
                u, v, _ = edges[rng.randrange(len(edges))]
                weight = stl.graph.weight(u, v)
                factor = rng.choice([1.5, 2.0, 3.0])
                with timer.measure():
                    stl.increase_edge(u, v, weight * factor)
                congested.append((u, v, weight))
        # Evening: congestion clears in the order it appeared.
        else:
            while congested and rng.random() < 0.8:
                u, v, original = congested.pop(0)
                with timer.measure():
                    stl.decrease_edge(u, v, original)
    # Overnight everything clears.
    for u, v, original in congested:
        with timer.measure():
            stl.decrease_edge(u, v, original)
    return timer


def main() -> None:
    graph = generators.city_road_network(num_cities=3, city_rows=10, city_cols=10, seed=5)
    print(f"network: {graph.num_vertices} intersections across 3 cities")

    results = {}
    for mode in ("pareto", "label_search"):
        stl = StableTreeLabelling.build(graph.copy(), maintenance=mode)
        timer = simulate_day(stl, seed=42)
        results[mode] = (stl, timer)
        print(
            f"{mode:13s}: {timer.count} weight updates maintained, "
            f"average {timer.average_ms:.3f} ms per update"
        )

    # Cross-check: both maintained indexes agree with a fresh Dijkstra.
    stl_pareto = results["pareto"][0]
    oracle = DijkstraOracle.build(stl_pareto.graph)
    rng = random.Random(1)
    checked = 0
    for _ in range(200):
        s = rng.randrange(graph.num_vertices)
        t = rng.randrange(graph.num_vertices)
        expected = oracle.query(s, t)
        assert abs(stl_pareto.query(s, t) - expected) < 1e-9
        checked += 1
    print(f"verified {checked} post-rush-hour queries against bidirectional Dijkstra")


if __name__ == "__main__":
    main()
