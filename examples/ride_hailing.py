"""Ride-hailing dispatch against the always-on query service.

Ride-hailing platforms answer millions of distance queries to pick the best
driver for every request while traffic conditions shift underneath them --
the motivating workload of the paper.  This example runs the serving layer
the way a dispatch tier would: several concurrent dispatcher tasks stream
k-nearest-driver queries at a :class:`repro.QueryService` while a traffic
feed lands ``rush_hour_stream`` congestion batches through the same
service.  Readers never block on maintenance -- each commit is an atomic
snapshot swap, and every answer is tagged with the generation that
produced it.

Run with::

    PYTHONPATH=src python examples/ride_hailing.py
"""

import asyncio
import random

from repro import QueryService, STLConfig, generators
from repro.workloads.updates import rush_hour_stream


async def nearest_driver(service, drivers, pickup):
    """The driver with the smallest travel time to the pickup point."""
    distances, version = await service.batch_distance(
        [(driver, pickup) for driver in drivers]
    )
    eta, driver = min(zip(distances, drivers))
    return eta, driver, version


async def dispatcher(name, service, drivers, num_requests, rng, log):
    """One dispatch worker: serve ride requests as they arrive."""
    served = 0
    n = service.graph.num_vertices
    for _ in range(num_requests):
        pickup = rng.randrange(n)
        eta, driver, version = await nearest_driver(service, sorted(drivers), pickup)
        drivers.discard(driver)                      # driver takes the ride
        drivers.add(rng.randrange(n))                # another comes online
        served += 1
        if len(log) < 5:
            log.append(
                f"  {name}: pickup at {pickup}, driver {driver} dispatched "
                f"(cost {eta:.0f}, answered by generation v{version})"
            )
        await asyncio.sleep(0)                       # let traffic interleave
    return served


async def traffic_feed(service, graph, steps):
    """Land one rush-hour congestion batch per tick, while dispatch runs."""
    batches = rush_hour_stream(graph.copy(), num_steps=steps, num_hotspots=2, seed=9)
    committed = 0
    for batch in batches:
        if not batch.updates:
            continue
        await service.submit([(u.u, u.v, u.new_weight) for u in batch.updates])
        committed += len(batch.updates)
        await asyncio.sleep(0.01)
    return committed


async def main() -> None:
    rng = random.Random(2025)
    graph = generators.city_road_network(num_cities=2, city_rows=12, city_cols=12, seed=9)
    print(f"city network: {graph.num_vertices} intersections, {graph.num_edges} roads")

    drivers = set(rng.sample(range(graph.num_vertices), 40))
    print(f"fleet: {len(drivers)} drivers online")

    async with QueryService(graph, config=STLConfig()) as service:
        await service.wait_ready()  # labelling built in the background

        log: list[str] = []
        dispatchers = [
            dispatcher(f"dispatcher-{k}", service, drivers, 15,
                       random.Random(100 + k), log)
            for k in range(4)
        ]
        results = await asyncio.gather(*dispatchers, traffic_feed(service, graph, 12))
        print("\n".join(log))

        served, updates = sum(results[:-1]), results[-1]
        stats = service.stats()
        print(
            f"\nserved {served} requests across 4 concurrent dispatchers | "
            f"{updates} traffic updates landed in {stats['batches_committed']} batches | "
            f"{stats['version']} generations published"
        )
        print(
            f"queries: {stats['fast_queries']} fast-path, "
            f"{stats['fallback_queries']} fallback (pre-build tier)"
        )


if __name__ == "__main__":
    asyncio.run(main())
