"""Ride-hailing dispatch: match riders to the closest available drivers.

Ride-hailing platforms answer millions of distance queries to pick the best
driver for every request while traffic conditions shift underneath them --
the motivating workload of the paper.  This example keeps a fleet of drivers
on a road network, dispatches ride requests with k-nearest-driver queries
over STL, and keeps the index exact as congestion changes between requests.

Run with::

    python examples/ride_hailing.py
"""

import random

from repro import StableTreeLabelling, generators
from repro.utils.timer import Timer


def k_nearest_drivers(stl, drivers, pickup, k=3):
    """The k drivers with the smallest travel time to the pickup point."""
    ranked = sorted((stl.query(driver, pickup), driver) for driver in drivers)
    return ranked[:k]


def main() -> None:
    rng = random.Random(2025)
    graph = generators.city_road_network(num_cities=2, city_rows=12, city_cols=12, seed=9)
    stl = StableTreeLabelling.build(graph)
    print(f"city network: {graph.num_vertices} intersections, {graph.num_edges} roads")

    drivers = set(rng.sample(range(graph.num_vertices), 40))
    print(f"fleet: {len(drivers)} drivers online")

    edges = list(graph.edges())
    dispatch_timer = Timer()
    maintenance_timer = Timer()
    served = 0

    for request in range(50):
        # Traffic drifts between requests: one road gets slower or faster.
        u, v, _ = edges[rng.randrange(len(edges))]
        weight = stl.graph.weight(u, v)
        with maintenance_timer.measure():
            if rng.random() < 0.5:
                stl.increase_edge(u, v, weight * rng.choice([1.5, 2.0]))
            else:
                stl.decrease_edge(u, v, max(1.0, weight * 0.75))

        # A rider requests a pickup at a random intersection.
        pickup = rng.randrange(graph.num_vertices)
        with dispatch_timer.measure():
            best = k_nearest_drivers(stl, drivers, pickup, k=3)
        if not best:
            continue
        eta, driver = best[0]
        drivers.discard(driver)
        drivers.add(rng.randrange(graph.num_vertices))  # a new driver comes online
        served += 1
        if request < 5:
            print(f"request {request}: pickup at {pickup}, driver {driver} dispatched (cost {eta:.0f})")

    print(
        f"\nserved {served} requests | "
        f"dispatch (40 distance queries each): {dispatch_timer.average_ms:.2f} ms avg | "
        f"traffic update maintenance: {maintenance_timer.average_ms:.2f} ms avg"
    )


if __name__ == "__main__":
    main()
