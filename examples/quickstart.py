"""Quickstart: build a Stable Tree Labelling, query it, keep it fresh.

Run with::

    python examples/quickstart.py
"""

from repro import StableTreeLabelling, generators


def main() -> None:
    # 1. A synthetic road network: a 32x32 city grid with travel-time weights.
    graph = generators.grid_road_network(32, 32, seed=7)
    print(f"road network: {graph.num_vertices} intersections, {graph.num_edges} road segments")

    # 2. Build the index (stable tree hierarchy + subgraph-distance labels).
    stl = StableTreeLabelling.build(graph)
    stats = stl.stats()
    print(
        f"index built in {stats.construction_seconds:.2f}s: "
        f"{stats.num_label_entries} label entries, tree height {stats.tree_height}"
    )

    # 3. Distance queries are simple label scans.
    source, target = 0, graph.num_vertices - 1
    print(f"distance({source}, {target}) = {stl.query(source, target)}")
    distance, hub = stl.query_with_hub(source, target)
    print(f"  answered via common ancestor at label index {hub}")

    # 4. Traffic changes: congestion doubles a road's travel time...
    u, v, weight = next(iter(graph.edges()))
    stl.increase_edge(u, v, weight * 2)
    print(f"after congestion on ({u},{v}): distance = {stl.query(source, target)}")

    # ...and later clears again.
    stl.decrease_edge(u, v, weight)
    print(f"after it clears:              distance = {stl.query(source, target)}")

    # 5. Road closures are weight-infinity updates.
    stl.remove_edge(u, v)
    print(f"after closing ({u},{v}):       distance = {stl.query(source, target)}")


if __name__ == "__main__":
    main()
