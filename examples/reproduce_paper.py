"""Regenerate every table and figure of the paper's evaluation section.

Runs the experiment drivers for Tables 2-5 and Figures 8-10 on the scaled
synthetic dataset analogues and prints the resulting exhibits.  Use the
environment variables ``REPRO_FULL_DATASETS=1`` and ``REPRO_SCALE`` (see
DESIGN.md) to trade runtime for fidelity.

Run with::

    python examples/reproduce_paper.py            # quick pass (two datasets)
    python examples/reproduce_paper.py --full     # all configured datasets
"""

import argparse
import os

from repro.experiments.harness import ExperimentConfig, default_dataset_names
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.table5 import format_table5, run_table5
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.figure10 import format_figure10, run_figure10


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run every configured dataset")
    parser.add_argument("--scale", type=float, default=float(os.environ.get("REPRO_SCALE", 0.5)))
    args = parser.parse_args()

    datasets = default_dataset_names() if args.full else default_dataset_names()[:2]
    config = ExperimentConfig(
        datasets=datasets,
        scale=args.scale,
        num_update_batches=2,
        updates_per_batch=20,
        num_query_pairs=2_000,
        query_sets=10,
        pairs_per_query_set=40,
    )
    print(f"datasets: {', '.join(datasets)} (scale {args.scale})\n")

    print(format_table2(run_table2(config)), "\n")
    print(format_table4(run_table4(config)), "\n")
    print(format_table5(run_table5(config)), "\n")
    print(format_table3(run_table3(config)), "\n")
    print(format_figure8(run_figure8(config, num_factors=4)), "\n")
    print(format_figure9(run_figure9(config)), "\n")
    print(format_figure10(run_figure10(config, group_sizes=(25, 50, 100))), "\n")


if __name__ == "__main__":
    main()
