"""Query workloads: random pairs and distance-stratified sets Q1..Q10.

The paper evaluates query time on one million random pairs (Table 5) and on
ten distance-stratified sets (Figure 9): with ``l_min = 1000`` metres and
``l_max`` the network diameter, set ``Q_i`` contains pairs whose distance
falls in ``(l_min * x^(i-1), l_min * x^i]`` for ``x = (l_max / l_min)^(1/10)``.
We reproduce both generators, scaled down in count.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.algorithms.dijkstra import dijkstra
from repro.graph.graph import Graph
from repro.utils.errors import WorkloadError
from repro.utils.rng import make_rng


def random_query_pairs(
    graph: Graph,
    count: int,
    seed: int | random.Random | None = 0,
    distinct: bool = True,
) -> list[tuple[int, int]]:
    """Uniformly random source/target pairs (the Table 5 workload)."""
    if graph.num_vertices < 2:
        raise WorkloadError("graph must have at least two vertices")
    rng = make_rng(seed)
    pairs: list[tuple[int, int]] = []
    n = graph.num_vertices
    while len(pairs) < count:
        s = rng.randrange(n)
        t = rng.randrange(n)
        if distinct and s == t:
            continue
        pairs.append((s, t))
    return pairs


def estimate_max_distance(
    graph: Graph, samples: int = 8, seed: int | random.Random | None = 0
) -> float:
    """Approximate the weighted diameter by a few full Dijkstra sweeps."""
    rng = make_rng(seed)
    best = 0.0
    n = graph.num_vertices
    source = rng.randrange(n)
    for _ in range(max(1, samples)):
        distances = dijkstra(graph, source)
        finite = [(d, v) for v, d in enumerate(distances) if not math.isinf(d)]
        if not finite:
            break
        far_distance, far_vertex = max(finite)
        best = max(best, far_distance)
        source = far_vertex
    return best


def distance_stratified_query_sets(
    graph: Graph,
    num_sets: int = 10,
    pairs_per_set: int = 100,
    l_min: float | None = None,
    seed: int | random.Random | None = 0,
    max_attempts_factor: int = 400,
) -> list[list[tuple[int, int]]]:
    """Query sets ``Q_1 .. Q_{num_sets}`` stratified by geometric distance buckets.

    Mirrors the paper's generation: bucket ``i`` holds pairs whose distance
    lies in ``(l_min * x^(i-1), l_min * x^i]`` with ``x = (l_max/l_min)^(1/num_sets)``.
    ``l_min`` defaults to roughly 2% of the estimated diameter, which plays
    the role of the paper's 1 km on continental networks.

    Pairs are found by sampling sources, running a Dijkstra sweep from each
    source and binning the reachable targets.  Buckets that cannot be filled
    (tiny graphs) are padded with their closest available pairs.
    """
    if num_sets < 1:
        raise WorkloadError("num_sets must be at least 1")
    rng = make_rng(seed)
    l_max = estimate_max_distance(graph, seed=rng)
    if l_max <= 0:
        raise WorkloadError("graph diameter is zero; cannot stratify queries")
    if l_min is None:
        l_min = max(l_max * 0.02, 1.0)
    if l_min >= l_max:
        l_min = l_max / (num_sets + 1)
    growth = (l_max / l_min) ** (1.0 / num_sets)

    boundaries = [l_min * growth**i for i in range(num_sets + 1)]
    buckets: list[list[tuple[int, int]]] = [[] for _ in range(num_sets)]
    n = graph.num_vertices

    attempts = 0
    max_attempts = max_attempts_factor
    while attempts < max_attempts and any(len(b) < pairs_per_set for b in buckets):
        attempts += 1
        source = rng.randrange(n)
        distances = dijkstra(graph, source)
        candidates = list(range(n))
        rng.shuffle(candidates)
        for target in candidates:
            d = distances[target]
            if target == source or math.isinf(d) or d <= 0:
                continue
            index = _bucket_index(d, boundaries)
            if index is not None and len(buckets[index]) < pairs_per_set:
                buckets[index].append((source, target))

    for index, bucket in enumerate(buckets):
        if not bucket:
            # Tiny graphs may have empty extreme buckets; reuse neighbouring
            # buckets so every Q_i is non-empty for the harness.
            donor = next((b for b in reversed(buckets[:index]) if b), None) or next(
                (b for b in buckets[index + 1 :] if b), None
            )
            if donor:
                bucket.extend(donor[:pairs_per_set])
    return buckets


def _bucket_index(distance: float, boundaries: Sequence[float]) -> int | None:
    if distance <= boundaries[0]:
        return 0
    for i in range(len(boundaries) - 1):
        if boundaries[i] < distance <= boundaries[i + 1]:
            return i
    return len(boundaries) - 2 if distance > boundaries[-1] else None
