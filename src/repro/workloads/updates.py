"""Update workloads reproducing the paper's test-input generation (Section 7).

* :func:`random_update_batch` -- a batch of random edges whose weights are
  multiplied by a factor (2.0 in Table 3) and later restored,
* :func:`scaling_update_batches` -- the Figure 8 workload: batch ``t`` scales
  its edges by ``t + 1`` before restoring them,
* :func:`mixed_update_stream` -- the Figure 10 workload: a long stream of
  updates processed in groups of growing size (increases then decreases),
* :func:`rush_hour_stream` -- a time-varying congestion stream: spatially
  correlated weight bursts that swell toward a rush-hour peak and relax
  back, one batch per time step.
"""

from __future__ import annotations

import math
import random
from collections import deque

from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.utils.errors import WorkloadError
from repro.utils.rng import make_rng


def _sample_edges(graph: Graph, count: int, rng: random.Random) -> list[tuple[int, int, float]]:
    edges = list(graph.edges())
    if not edges:
        raise WorkloadError("graph has no edges to update")
    if count <= len(edges):
        return rng.sample(edges, count)
    # Small graphs: sample with replacement rather than fail.
    return [edges[rng.randrange(len(edges))] for _ in range(count)]


def random_update_batch(
    graph: Graph,
    batch_size: int,
    factor: float = 2.0,
    seed: int | random.Random | None = 0,
) -> tuple[UpdateBatch, UpdateBatch]:
    """One Table 3 batch: ``(increase_batch, restore_batch)``.

    The increase batch multiplies each sampled edge's weight by ``factor``;
    the restore batch brings the weights back to their original values (the
    paper's weight-decrease measurement).
    """
    if factor <= 1.0:
        raise WorkloadError(f"factor must exceed 1.0, got {factor}")
    rng = make_rng(seed)
    sampled = _sample_edges(graph, batch_size, rng)
    seen: set[tuple[int, int]] = set()
    increases = UpdateBatch()
    decreases = UpdateBatch()
    for u, v, w in sampled:
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        increased = w * factor
        increases.append(EdgeUpdate(u, v, w, increased))
        decreases.append(EdgeUpdate(u, v, increased, w))
    return increases, decreases


def scaling_update_batches(
    graph: Graph,
    num_batches: int = 9,
    batch_size: int = 100,
    seed: int | random.Random | None = 0,
) -> list[tuple[float, UpdateBatch, UpdateBatch]]:
    """The Figure 8 workload: batch ``t`` (1-based) scales weights by ``t + 1``.

    Returns a list of ``(factor, increase_batch, restore_batch)`` triples.
    """
    rng = make_rng(seed)
    batches = []
    for t in range(1, num_batches + 1):
        factor = float(t + 1)
        increases, decreases = random_update_batch(graph, batch_size, factor, seed=rng)
        batches.append((factor, increases, decreases))
    return batches


def _hotspot_edges(
    graph: Graph, centre: int, radius: int
) -> list[tuple[int, int, float]]:
    """All edges with both endpoints within ``radius`` hops of ``centre``.

    Hop-distance balls give the spatial correlation without requiring
    coordinates, so the workload runs on any connected graph.
    """
    ball = {centre}
    frontier = deque([(centre, 0)])
    while frontier:
        v, hops = frontier.popleft()
        if hops == radius:
            continue
        for u, _ in graph.neighbors(v):
            if u not in ball:
                ball.add(u)
                frontier.append((u, hops + 1))
    edges = []
    for u, v, w in graph.edges():
        if u in ball and v in ball:
            edges.append((u, v, w))
    return edges


def rush_hour_stream(
    graph: Graph,
    num_steps: int = 12,
    num_hotspots: int = 3,
    radius: int = 4,
    peak_factor: float = 3.0,
    seed: int | random.Random | None = 0,
) -> list[UpdateBatch]:
    """A rush-hour congestion stream: one coalescible batch per time step.

    ``num_hotspots`` congested regions (hop-distance balls of ``radius``
    around random centres) follow a shared bell-shaped intensity curve
    peaking at ``num_steps / 2``: travel times within a hotspot swell toward
    ``peak_factor`` x their free-flow value and relax back to exactly the
    original weights by the final step.  Each step's batch holds one update
    per edge whose (integer-valued) weight changed, with ``old_weight``
    tracking the previous step -- so the batches must be applied in order,
    and the full stream nets to zero.  This is the time-varying, spatially
    correlated pattern the paper's streaming scenario models: increases on
    the way into the peak, decreases on the way out, with heavy overlap
    between consecutive batches.
    """
    if num_steps < 2:
        raise WorkloadError(f"num_steps must be at least 2, got {num_steps}")
    if peak_factor <= 1.0:
        raise WorkloadError(f"peak_factor must exceed 1.0, got {peak_factor}")
    check = graph.num_vertices
    if check == 0:
        raise WorkloadError("graph has no vertices")
    rng = make_rng(seed)

    affected: dict[tuple[int, int], float] = {}
    for _ in range(num_hotspots):
        centre = rng.randrange(graph.num_vertices)
        for u, v, w in _hotspot_edges(graph, centre, radius):
            affected.setdefault((u, v) if u < v else (v, u), w)
    if not affected:
        raise WorkloadError("hotspots cover no edges; increase radius")

    # Bell curve over the step index, pinned to 0 at both ends so the final
    # step restores every weight exactly (max(round(w * 1.0), 1) == w for the
    # integer-valued weights the generators produce).
    peak = (num_steps - 1) / 2.0
    width = max(num_steps / 4.0, 1.0)

    batches: list[UpdateBatch] = []
    current = dict(affected)
    for step in range(num_steps):
        if step == num_steps - 1:
            intensity = 0.0
        else:
            intensity = math.exp(-(((step - peak) / width) ** 2))
            intensity -= math.exp(-((peak / width) ** 2))  # pin step 0 to ~0
            intensity = max(intensity, 0.0)
        batch = UpdateBatch()
        for key in sorted(affected):
            base = affected[key]
            target = float(max(round(base * (1.0 + (peak_factor - 1.0) * intensity)), 1))
            if target != current[key]:
                batch.append(EdgeUpdate(key[0], key[1], current[key], target))
                current[key] = target
        batches.append(batch)
    return batches


def mixed_update_stream(
    graph: Graph,
    total_updates: int,
    factor: float = 2.0,
    seed: int | random.Random | None = 0,
) -> UpdateBatch:
    """The Figure 10 stream: ``total_updates`` edges, increased then restored.

    The returned batch contains ``2 * total_updates`` updates: first every
    sampled edge's increase, then the corresponding decreases, matching the
    paper's "apply the weight increases, followed by weight decreases".
    """
    rng = make_rng(seed)
    sampled = _sample_edges(graph, total_updates, rng)
    seen: set[tuple[int, int]] = set()
    stream = UpdateBatch()
    restores: list[EdgeUpdate] = []
    for u, v, w in sampled:
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        increased = w * factor
        stream.append(EdgeUpdate(u, v, w, increased))
        restores.append(EdgeUpdate(u, v, increased, w))
    for update in restores:
        stream.append(update)
    return stream
