"""Update workloads reproducing the paper's test-input generation (Section 7).

* :func:`random_update_batch` -- a batch of random edges whose weights are
  multiplied by a factor (2.0 in Table 3) and later restored,
* :func:`scaling_update_batches` -- the Figure 8 workload: batch ``t`` scales
  its edges by ``t + 1`` before restoring them,
* :func:`mixed_update_stream` -- the Figure 10 workload: a long stream of
  updates processed in groups of growing size (increases then decreases).
"""

from __future__ import annotations

import random

from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.utils.errors import WorkloadError
from repro.utils.rng import make_rng


def _sample_edges(graph: Graph, count: int, rng: random.Random) -> list[tuple[int, int, float]]:
    edges = list(graph.edges())
    if not edges:
        raise WorkloadError("graph has no edges to update")
    if count <= len(edges):
        return rng.sample(edges, count)
    # Small graphs: sample with replacement rather than fail.
    return [edges[rng.randrange(len(edges))] for _ in range(count)]


def random_update_batch(
    graph: Graph,
    batch_size: int,
    factor: float = 2.0,
    seed: int | random.Random | None = 0,
) -> tuple[UpdateBatch, UpdateBatch]:
    """One Table 3 batch: ``(increase_batch, restore_batch)``.

    The increase batch multiplies each sampled edge's weight by ``factor``;
    the restore batch brings the weights back to their original values (the
    paper's weight-decrease measurement).
    """
    if factor <= 1.0:
        raise WorkloadError(f"factor must exceed 1.0, got {factor}")
    rng = make_rng(seed)
    sampled = _sample_edges(graph, batch_size, rng)
    seen: set[tuple[int, int]] = set()
    increases = UpdateBatch()
    decreases = UpdateBatch()
    for u, v, w in sampled:
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        increased = w * factor
        increases.append(EdgeUpdate(u, v, w, increased))
        decreases.append(EdgeUpdate(u, v, increased, w))
    return increases, decreases


def scaling_update_batches(
    graph: Graph,
    num_batches: int = 9,
    batch_size: int = 100,
    seed: int | random.Random | None = 0,
) -> list[tuple[float, UpdateBatch, UpdateBatch]]:
    """The Figure 8 workload: batch ``t`` (1-based) scales weights by ``t + 1``.

    Returns a list of ``(factor, increase_batch, restore_batch)`` triples.
    """
    rng = make_rng(seed)
    batches = []
    for t in range(1, num_batches + 1):
        factor = float(t + 1)
        increases, decreases = random_update_batch(graph, batch_size, factor, seed=rng)
        batches.append((factor, increases, decreases))
    return batches


def mixed_update_stream(
    graph: Graph,
    total_updates: int,
    factor: float = 2.0,
    seed: int | random.Random | None = 0,
) -> UpdateBatch:
    """The Figure 10 stream: ``total_updates`` edges, increased then restored.

    The returned batch contains ``2 * total_updates`` updates: first every
    sampled edge's increase, then the corresponding decreases, matching the
    paper's "apply the weight increases, followed by weight decreases".
    """
    rng = make_rng(seed)
    sampled = _sample_edges(graph, total_updates, rng)
    seen: set[tuple[int, int]] = set()
    stream = UpdateBatch()
    restores: list[EdgeUpdate] = []
    for u, v, w in sampled:
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        increased = w * factor
        stream.append(EdgeUpdate(u, v, w, increased))
        restores.append(EdgeUpdate(u, v, increased, w))
    for update in restores:
        stream.append(update)
    return stream
