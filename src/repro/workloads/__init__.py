"""Workload generation: datasets, query sets and update batches."""

from repro.workloads.datasets import DATASETS, DatasetSpec, build_dataset
from repro.workloads.queries import (
    random_query_pairs,
    distance_stratified_query_sets,
)
from repro.workloads.updates import (
    random_update_batch,
    rush_hour_stream,
    scaling_update_batches,
    mixed_update_stream,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "build_dataset",
    "random_query_pairs",
    "distance_stratified_query_sets",
    "random_update_batch",
    "rush_hour_stream",
    "scaling_update_batches",
    "mixed_update_stream",
]
