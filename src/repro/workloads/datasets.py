"""Dataset registry: scaled synthetic analogues of the paper's Table 2.

The paper evaluates on ten road networks from the 9th DIMACS Implementation
Challenge (NY ... USA) plus PTV Western Europe (EUR), ranging from 264 k to
24 M vertices.  Those graphs cannot be redistributed here and are far beyond
what a pure-Python labelling can process, so the registry maps each paper
dataset to a synthetic analogue whose *relative* size and structure mirror the
original (see DESIGN.md, "Scope and substitutions").  The ``scale`` argument
lets a user with more patience grow every dataset proportionally; users with
the real DIMACS files can load them through :func:`repro.graph.io.read_dimacs`
and feed them to the same experiment drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph import generators
from repro.graph.graph import Graph
from repro.utils.errors import WorkloadError


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset analogue.

    Attributes
    ----------
    name:
        The paper's dataset code (NY, BAY, ... USA, EUR).
    region:
        The region the original dataset covers (for reporting).
    paper_vertices, paper_edges:
        Size of the original road network (Table 2), for the report columns.
    kind:
        Which generator family produces the analogue: ``"grid"``,
        ``"city"`` or ``"delaunay"``.
    base_vertices:
        Target vertex count of the analogue at ``scale=1.0``.
    """

    name: str
    region: str
    paper_vertices: int
    paper_edges: int
    kind: str
    base_vertices: int


#: Registry in the paper's order.  Sizes grow monotonically like Table 2 while
#: staying within what pure-Python index construction can handle.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("NY", "New York City", 264_346, 733_846, "grid", 900),
        DatasetSpec("BAY", "San Francisco Bay", 321_270, 800_172, "grid", 1_100),
        DatasetSpec("COL", "Colorado", 435_666, 1_057_066, "delaunay", 1_400),
        DatasetSpec("FLA", "Florida", 1_070_376, 2_712_798, "city", 1_900),
        DatasetSpec("CAL", "California & Nevada", 1_890_815, 4_657_742, "city", 2_600),
        DatasetSpec("E", "Eastern USA", 3_598_623, 8_778_114, "city", 3_400),
        DatasetSpec("W", "Western USA", 6_262_104, 15_248_146, "city", 4_400),
        DatasetSpec("CTR", "Central USA", 14_081_816, 34_292_496, "city", 5_600),
        DatasetSpec("USA", "United States", 23_947_347, 58_333_344, "city", 7_000),
        DatasetSpec("EUR", "Western Europe", 18_010_173, 42_560_279, "delaunay", 6_200),
    ]
}

#: The subset of datasets the default benchmark run uses (kept small so the
#: whole benchmark suite finishes in minutes); set the environment variable
#: ``REPRO_FULL_DATASETS=1`` to run all ten.
DEFAULT_BENCH_DATASETS = ("NY", "BAY", "COL", "FLA")


def build_dataset(name: str, scale: float = 1.0, seed: int = 2025) -> Graph:
    """Build the synthetic analogue of the paper dataset ``name``.

    ``scale`` multiplies the analogue's vertex budget; the exact vertex count
    depends on the generator (grids round to full rows, the largest connected
    component is kept).
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise WorkloadError(f"unknown dataset {name!r}; known: {', '.join(DATASETS)}")
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    target = max(36, int(spec.base_vertices * scale))
    builder = _BUILDERS[spec.kind]
    return builder(target, seed + _dataset_index(name))


def _dataset_index(name: str) -> int:
    return list(DATASETS).index(name)


def _build_grid(target: int, seed: int) -> Graph:
    side = max(6, int(round(target ** 0.5)))
    return generators.grid_road_network(side, side, seed=seed, drop_probability=0.05)


def _build_city(target: int, seed: int) -> Graph:
    num_cities = 4
    city_side = max(5, int(round((target / num_cities) ** 0.5)))
    return generators.city_road_network(
        num_cities=num_cities, city_rows=city_side, city_cols=city_side, seed=seed
    )


def _build_delaunay(target: int, seed: int) -> Graph:
    return generators.delaunay_road_network(target, seed=seed, keep_probability=0.8)


_BUILDERS: dict[str, Callable[[int, int], Graph]] = {
    "grid": _build_grid,
    "city": _build_city,
    "delaunay": _build_delaunay,
}


def dataset_table_rows(scale: float = 1.0, seed: int = 2025, names: list[str] | None = None):
    """Rows of the Table 2 analogue: paper sizes next to the generated sizes."""
    rows = []
    for name in names or list(DATASETS):
        spec = DATASETS[name]
        graph = build_dataset(name, scale=scale, seed=seed)
        rows.append(
            {
                "network": spec.name,
                "region": spec.region,
                "paper |V|": f"{spec.paper_vertices:,}",
                "paper |E|": f"{spec.paper_edges:,}",
                "analogue |V|": f"{graph.num_vertices:,}",
                "analogue |E|": f"{graph.num_edges:,}",
            }
        )
    return rows
