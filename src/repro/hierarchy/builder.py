"""Construction of stable tree hierarchies (Definition 4.1, Remark 1).

The construction is the recursive bi-partitioning of HC2L *without* shortcut
insertion: each recursion step finds a balanced vertex separator of the
current subgraph, stores it in a tree node, and recurses into the two sides.
Because no shortcuts are added, the subgraphs stay sparse and the cuts at
lower levels stay small -- the paper's Remark 1 credits this for both the
smaller labelling and the cheaper maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.graph import Graph
from repro.hierarchy.tree import StableTreeHierarchy
from repro.partition.bisection import Bisection, Bisector, HybridBisector, enforce_balance
from repro.utils.errors import HierarchyError, PartitionError


@dataclass
class HierarchyOptions:
    """Tuning knobs for stable tree hierarchy construction.

    Attributes
    ----------
    beta:
        Balance parameter of Definition 4.1 (the paper uses 0.2: neither
        child subtree may exceed 80% of its parent's subtree).
    leaf_size:
        Vertex sets of at most this size stop recursing and become leaf
        nodes.  Smaller leaves give shorter labels for nearby pairs at the
        cost of a deeper tree.
    bisector:
        Partitioning strategy; defaults to :class:`HybridBisector`.
    order_within_node:
        How vertices are ordered inside a node: ``"degree"`` (descending
        degree, so well-connected separator vertices get small label indexes)
        or ``"id"`` (ascending vertex id, deterministic and order-independent).
    strict_balance:
        If True, a bisection violating the balance bound raises
        :class:`HierarchyError`; if False (default) it is accepted with a
        recorded violation count (real-world instances occasionally produce a
        slightly unbalanced cut at tiny subproblems, which is harmless).
    """

    beta: float = 0.2
    leaf_size: int = 16
    bisector: Bisector = field(default_factory=HybridBisector)
    order_within_node: str = "degree"
    strict_balance: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.beta <= 0.5:
            raise ValueError(f"beta must lie in (0, 0.5], got {self.beta}")
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.order_within_node not in ("degree", "id"):
            raise ValueError(
                f"order_within_node must be 'degree' or 'id', got {self.order_within_node!r}"
            )


@dataclass
class BuildReport:
    """Diagnostics collected while building a hierarchy."""

    num_nodes: int = 0
    num_leaves: int = 0
    max_separator: int = 0
    balance_violations: int = 0

    def record(self, bisection: Bisection, is_leaf: bool, balanced: bool) -> None:
        self.num_nodes += 1
        if is_leaf:
            self.num_leaves += 1
        self.max_separator = max(self.max_separator, len(bisection.separator))
        if not balanced:
            self.balance_violations += 1


def build_hierarchy(
    graph: Graph,
    options: HierarchyOptions | None = None,
) -> StableTreeHierarchy:
    """Build a stable tree hierarchy over every vertex of ``graph``."""
    hierarchy, _ = build_hierarchy_with_report(graph, options)
    return hierarchy


def build_hierarchy_with_report(
    graph: Graph,
    options: HierarchyOptions | None = None,
) -> tuple[StableTreeHierarchy, BuildReport]:
    """Build a hierarchy and return the :class:`BuildReport` diagnostics."""
    options = options or HierarchyOptions()
    hierarchy = StableTreeHierarchy(graph.num_vertices)
    report = BuildReport()
    if graph.num_vertices == 0:
        return hierarchy, report

    _build_recursive(
        graph,
        list(graph.vertices()),
        parent=-1,
        is_right=False,
        hierarchy=hierarchy,
        options=options,
        report=report,
    )
    hierarchy.finalize()
    return hierarchy, report


def _order_vertices(graph: Graph, vertices: Sequence[int], mode: str) -> list[int]:
    """Total order applied to the vertices stored inside one tree node."""
    if mode == "degree":
        return sorted(vertices, key=lambda v: (-graph.degree(v), v))
    return sorted(vertices)


def _build_recursive(
    graph: Graph,
    vertices: list[int],
    parent: int,
    is_right: bool,
    hierarchy: StableTreeHierarchy,
    options: HierarchyOptions,
    report: BuildReport,
) -> None:
    node = hierarchy.add_node(parent, is_right)

    if len(vertices) <= options.leaf_size:
        hierarchy.assign_vertices(node, _order_vertices(graph, vertices, options.order_within_node))
        report.record(Bisection([], list(vertices), []), is_leaf=True, balanced=True)
        return

    try:
        bisection = options.bisector.bisect(graph, vertices)
    except PartitionError as exc:
        raise HierarchyError(f"bisection failed on {len(vertices)} vertices: {exc}") from exc

    if not bisection.left or not bisection.right:
        # The partitioner could not split the set (e.g. a dense blob smaller
        # than any balanced cut); store everything in a single leaf node.
        hierarchy.assign_vertices(node, _order_vertices(graph, vertices, options.order_within_node))
        report.record(bisection, is_leaf=True, balanced=True)
        return

    balanced = enforce_balance(bisection, options.beta)
    if not balanced and options.strict_balance:
        raise HierarchyError(
            f"bisection of {len(vertices)} vertices violates the beta={options.beta} "
            f"balance bound: sides {len(bisection.left)}/{len(bisection.right)}"
        )
    report.record(bisection, is_leaf=False, balanced=balanced)

    hierarchy.assign_vertices(
        node, _order_vertices(graph, bisection.separator, options.order_within_node)
    )
    _build_recursive(graph, bisection.left, node.index, False, hierarchy, options, report)
    _build_recursive(graph, bisection.right, node.index, True, hierarchy, options, report)
