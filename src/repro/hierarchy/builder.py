"""Construction of stable tree hierarchies (Definition 4.1, Remark 1).

The construction is the recursive bi-partitioning of HC2L *without* shortcut
insertion: each recursion step finds a balanced vertex separator of the
current subgraph, stores it in a tree node, and recurses into the two sides.
Because no shortcuts are added, the subgraphs stay sparse and the cuts at
lower levels stay small -- the paper's Remark 1 credits this for both the
smaller labelling and the cheaper maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.graph import Graph
from repro.hierarchy.tree import StableTreeHierarchy
from repro.partition.bisection import Bisection, Bisector, HybridBisector, enforce_balance
from repro.utils.errors import HierarchyError, PartitionError


@dataclass
class HierarchyOptions:
    """Tuning knobs for stable tree hierarchy construction.

    Attributes
    ----------
    beta:
        Balance parameter of Definition 4.1 (the paper uses 0.2: neither
        child subtree may exceed 80% of its parent's subtree).
    leaf_size:
        Vertex sets of at most this size stop recursing and become leaf
        nodes.  Smaller leaves give shorter labels for nearby pairs at the
        cost of a deeper tree.
    bisector:
        Partitioning strategy; defaults to :class:`HybridBisector`.
    order_within_node:
        How vertices are ordered inside a node: ``"degree"`` (descending
        degree, so well-connected separator vertices get small label indexes)
        or ``"id"`` (ascending vertex id, deterministic and order-independent).
    strict_balance:
        If True, a bisection violating the balance bound raises
        :class:`HierarchyError`; if False (default) it is accepted with a
        recorded violation count (real-world instances occasionally produce a
        slightly unbalanced cut at tiny subproblems, which is harmless).
    """

    beta: float = 0.2
    leaf_size: int = 16
    bisector: Bisector = field(default_factory=HybridBisector)
    order_within_node: str = "degree"
    strict_balance: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.beta <= 0.5:
            raise ValueError(f"beta must lie in (0, 0.5], got {self.beta}")
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.order_within_node not in ("degree", "id"):
            raise ValueError(
                f"order_within_node must be 'degree' or 'id', got {self.order_within_node!r}"
            )


@dataclass
class BuildReport:
    """Diagnostics collected while building a hierarchy.

    The timing fields cover the whole index construction, not only the
    hierarchy phase: :func:`repro.core.construction.build_index` fills
    ``hierarchy_seconds`` / ``label_seconds`` with the measured wall-clock
    of the two phases, ``construction`` with the resolved mode
    (``"serial"`` or ``"parallel"``) and ``workers`` with the number of
    worker processes the parallel builder used (0 for serial builds).
    """

    num_nodes: int = 0
    num_leaves: int = 0
    max_separator: int = 0
    balance_violations: int = 0
    hierarchy_seconds: float = 0.0
    label_seconds: float = 0.0
    workers: int = 0
    construction: str = "serial"

    def record(self, bisection: Bisection, is_leaf: bool, balanced: bool) -> None:
        self.num_nodes += 1
        if is_leaf:
            self.num_leaves += 1
        self.max_separator = max(self.max_separator, len(bisection.separator))
        if not balanced:
            self.balance_violations += 1

    def merge(self, other: "BuildReport") -> None:
        """Fold a subtree build's counters into this report (timings untouched)."""
        self.num_nodes += other.num_nodes
        self.num_leaves += other.num_leaves
        self.max_separator = max(self.max_separator, other.max_separator)
        self.balance_violations += other.balance_violations


def build_hierarchy(
    graph: Graph,
    options: HierarchyOptions | None = None,
) -> StableTreeHierarchy:
    """Build a stable tree hierarchy over every vertex of ``graph``."""
    hierarchy, _ = build_hierarchy_with_report(graph, options)
    return hierarchy


def build_hierarchy_with_report(
    graph: Graph,
    options: HierarchyOptions | None = None,
) -> tuple[StableTreeHierarchy, BuildReport]:
    """Build a hierarchy and return the :class:`BuildReport` diagnostics."""
    options = options or HierarchyOptions()
    hierarchy = StableTreeHierarchy(graph.num_vertices)
    report = BuildReport()
    if graph.num_vertices == 0:
        return hierarchy, report

    nodes = build_subtree(graph, list(graph.vertices()), options, report)
    graft_subtree(hierarchy, nodes)
    hierarchy.finalize()
    return hierarchy, report


def _order_vertices(graph: Graph, vertices: Sequence[int], mode: str) -> list[int]:
    """Total order applied to the vertices stored inside one tree node."""
    if mode == "degree":
        return sorted(vertices, key=lambda v: (-graph.degree(v), v))
    return sorted(vertices)


#: One node of a detached subtree build: ``(parent_local, is_right,
#: ordered_vertices)`` where ``parent_local`` indexes the subtree's own node
#: list (-1 for the subtree root).  Nodes are listed in DFS preorder (node
#: before its children, left child's subtree before the right's) -- exactly
#: the order :meth:`StableTreeHierarchy.add_node` numbers nodes in, which is
#: what lets :func:`graft_subtree` replay a detached build with the same node
#: ids the attached recursion would have produced.
SubtreeNode = tuple[int, bool, list[int]]


def build_subtree(
    graph: Graph,
    vertices: list[int],
    options: HierarchyOptions,
    report: BuildReport | None = None,
) -> list[SubtreeNode]:
    """Build one hierarchy subtree over ``vertices``, detached from any tree.

    This is the whole recursive construction, expressed over local node
    records instead of a live :class:`StableTreeHierarchy`: the serial build
    runs it once over every vertex and grafts the result at the root, and
    the parallel builder (:mod:`repro.core.construction`) fans independent
    post-bisection vertex sets out to worker processes, each running this
    same function -- one code path, so the parallel build cannot drift from
    the serial numbering.  ``report`` collects the usual build diagnostics
    (workers pass a fresh one and ship it back for merging).
    """
    if report is None:
        report = BuildReport()
    nodes: list[SubtreeNode] = []
    _build_local(graph, vertices, -1, False, nodes, options, report)
    return nodes


def _build_local(
    graph: Graph,
    vertices: list[int],
    parent_local: int,
    is_right: bool,
    nodes: list[SubtreeNode],
    options: HierarchyOptions,
    report: BuildReport,
) -> None:
    local = len(nodes)

    if len(vertices) <= options.leaf_size:
        nodes.append(
            (parent_local, is_right, _order_vertices(graph, vertices, options.order_within_node))
        )
        report.record(Bisection([], list(vertices), []), is_leaf=True, balanced=True)
        return

    try:
        bisection = options.bisector.bisect(graph, vertices)
    except PartitionError as exc:
        raise HierarchyError(f"bisection failed on {len(vertices)} vertices: {exc}") from exc

    if not bisection.left or not bisection.right:
        # The partitioner could not split the set (e.g. a dense blob smaller
        # than any balanced cut); store everything in a single leaf node.
        nodes.append(
            (parent_local, is_right, _order_vertices(graph, vertices, options.order_within_node))
        )
        report.record(bisection, is_leaf=True, balanced=True)
        return

    balanced = enforce_balance(bisection, options.beta)
    if not balanced and options.strict_balance:
        raise HierarchyError(
            f"bisection of {len(vertices)} vertices violates the beta={options.beta} "
            f"balance bound: sides {len(bisection.left)}/{len(bisection.right)}"
        )
    report.record(bisection, is_leaf=False, balanced=balanced)

    separator = _order_vertices(graph, bisection.separator, options.order_within_node)
    nodes.append((parent_local, is_right, separator))
    _build_local(graph, bisection.left, local, False, nodes, options, report)
    _build_local(graph, bisection.right, local, True, nodes, options, report)


def graft_subtree(
    hierarchy: StableTreeHierarchy,
    nodes: Sequence[SubtreeNode],
    parent: int = -1,
    is_right: bool = False,
) -> None:
    """Graft a detached subtree build under ``parent`` of ``hierarchy``.

    Replays the subtree's preorder node list through
    :meth:`StableTreeHierarchy.add_node` / ``assign_vertices``; because the
    list is in preorder, every local parent has already been grafted (and
    assigned its vertices, so prefix counts cascade correctly) by the time
    its children arrive.  Called in serial DFS order over the subproblems,
    this reproduces the attached recursion's node ids and ``tau`` exactly.
    """
    real = [0] * len(nodes)
    for local, (parent_local, right, ordered) in enumerate(nodes):
        if parent_local < 0:
            node = hierarchy.add_node(parent, is_right)
        else:
            node = hierarchy.add_node(real[parent_local], right)
        real[local] = node.index
        hierarchy.assign_vertices(node, ordered)
