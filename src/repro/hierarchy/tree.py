"""The stable tree hierarchy data structure.

A stable tree hierarchy (Definition 4.1 of the paper) is a binary tree whose
nodes hold vertex separators; it is *structurally independent of edge
weights*, which is the property that makes efficient maintenance possible.
The hierarchy induces:

* the vertex partial order ⪯ (Definition 4.3) -- a vertex ``w`` precedes ``v``
  when ``w``'s tree node is a strict ancestor of ``v``'s, or they share a node
  and ``w`` comes earlier in the node's internal order;
* the *label index* τ(v) (Definition 4.4) -- the number of strict ancestors of
  ``v``, i.e. the position of ``v`` inside its own ancestor chain.  Because a
  vertex's ancestors form a chain, the label of ``v`` can be stored as a flat
  array indexed by label index, which is what makes queries cache-friendly and
  label lookups during maintenance O(1);
* partition *bitstrings* per node, giving the level of the lowest common
  ancestor of two vertices in O(1) (Section 4, "Distance Queries").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.utils.errors import HierarchyError


@dataclass
class TreeNode:
    """One node of a stable tree hierarchy.

    Attributes
    ----------
    index:
        Dense node id (position in :attr:`StableTreeHierarchy.nodes`).
    parent:
        Parent node id or ``-1`` for the root.
    left, right:
        Child node ids or ``-1`` (leaves have no children).
    depth:
        Distance from the root (root has depth 0).
    bits:
        Partition bitstring packed into an int; bit ``depth-1`` downto bit 0
        record the left/right decisions from the root (0 = left, 1 = right).
    vertices:
        The separator (or leaf) vertices stored at this node, in the node's
        internal total order.
    prefix_count:
        Number of vertices stored in strict ancestor nodes of this node.
    path:
        Node ids from the root down to (and including) this node.
    """

    index: int
    parent: int = -1
    left: int = -1
    right: int = -1
    depth: int = 0
    bits: int = 0
    vertices: list[int] = field(default_factory=list)
    prefix_count: int = 0
    path: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return self.left == -1 and self.right == -1

    @property
    def cumulative_count(self) -> int:
        """Number of vertices in this node and all its ancestors."""
        return self.prefix_count + len(self.vertices)


class StableTreeHierarchy:
    """A fully built stable tree hierarchy over a graph's vertex set.

    Instances are produced by :func:`repro.hierarchy.builder.build_hierarchy`
    and are immutable from the caller's point of view; the structure never
    changes under edge-weight updates (that is the point of *stability*).
    """

    #: Cache slot for :func:`repro.core.kernels.hierarchy_arrays` (flat
    #: ndarray mirrors of the LCA machinery).  Declared here so the typed
    #: core package can assign it; the hierarchy is immutable after
    #: construction, so the cache never invalidates.
    _kernel_arrays: object

    def __init__(self, num_vertices: int):
        self.nodes: list[TreeNode] = []
        #: node id of each vertex
        self.node_of: list[int] = [-1] * num_vertices
        #: label index tau(v) = number of strict ancestors of v
        self.tau: list[int] = [-1] * num_vertices
        #: vertices sorted by label order within their ancestor chains;
        #: rank_order[i] lists every vertex whose label index equals i -- used
        #: only for statistics, the algorithms index by tau directly.
        self._num_vertices = num_vertices

    # ------------------------------------------------------------------ #
    # Construction API (used by the builder)
    # ------------------------------------------------------------------ #

    def add_node(self, parent: int, is_right_child: bool) -> TreeNode:
        """Append a new (empty) tree node under ``parent`` and return it."""
        index = len(self.nodes)
        if parent == -1:
            node = TreeNode(index=index, parent=-1, depth=0, bits=0, path=[index])
        else:
            parent_node = self.nodes[parent]
            node = TreeNode(
                index=index,
                parent=parent,
                depth=parent_node.depth + 1,
                bits=(parent_node.bits << 1) | (1 if is_right_child else 0),
                path=parent_node.path + [index],
            )
            if is_right_child:
                if parent_node.right != -1:
                    raise HierarchyError(f"node {parent} already has a right child")
                parent_node.right = index
            else:
                if parent_node.left != -1:
                    raise HierarchyError(f"node {parent} already has a left child")
                parent_node.left = index
        self.nodes.append(node)
        return node

    def assign_vertices(self, node: TreeNode, vertices: Sequence[int]) -> None:
        """Store ``vertices`` (in order) at ``node`` and assign their label indexes."""
        parent = self.nodes[node.parent] if node.parent != -1 else None
        node.prefix_count = parent.cumulative_count if parent is not None else 0
        node.vertices = list(vertices)
        for offset, v in enumerate(node.vertices):
            if self.node_of[v] != -1:
                raise HierarchyError(f"vertex {v} assigned to two tree nodes")
            self.node_of[v] = node.index
            self.tau[v] = node.prefix_count + offset

    def finalize(self) -> None:
        """Validate that every vertex has been assigned to exactly one node."""
        missing = [v for v in range(self._num_vertices) if self.node_of[v] == -1]
        if missing:
            raise HierarchyError(
                f"{len(missing)} vertices were never assigned to a tree node "
                f"(first few: {missing[:5]})"
            )

    # ------------------------------------------------------------------ #
    # Read API
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the hierarchy."""
        return self._num_vertices

    @property
    def num_nodes(self) -> int:
        """Number of tree nodes."""
        return len(self.nodes)

    @property
    def root(self) -> TreeNode:
        """The root node."""
        if not self.nodes:
            raise HierarchyError("hierarchy has no nodes")
        return self.nodes[0]

    @property
    def height(self) -> int:
        """Maximum label-index depth, i.e. the longest ancestor chain.

        This is the quantity reported as "Tree Height" in Table 4 (h in the
        complexity bounds of Section 6): the maximum number of ancestors of
        any vertex.
        """
        if not self.nodes:
            return 0
        return max(self.tau[v] for v in range(self._num_vertices)) + 1

    @property
    def node_depth(self) -> int:
        """Maximum tree-node depth (number of levels of the binary tree)."""
        if not self.nodes:
            return 0
        return max(node.depth for node in self.nodes) + 1

    def label_length(self, v: int) -> int:
        """Length of the label of ``v`` (``tau(v) + 1``)."""
        return self.tau[v] + 1

    def node(self, v: int) -> TreeNode:
        """The tree node holding vertex ``v``."""
        return self.nodes[self.node_of[v]]

    def ancestors(self, v: int) -> list[int]:
        """The ancestor chain of ``v`` (inclusive), ordered by label index.

        This is ``Anc(v)`` from the paper.  It is O(tau(v)) and used by tests
        and statistics; the query/maintenance algorithms never materialise it.
        """
        node = self.node(v)
        chain: list[int] = []
        for node_id in node.path[:-1]:
            chain.extend(self.nodes[node_id].vertices)
        for u in node.vertices:
            chain.append(u)
            if u == v:
                break
        return chain

    def ancestor_at(self, v: int, label_index: int) -> int:
        """The unique ancestor of ``v`` with the given label index."""
        if label_index > self.tau[v] or label_index < 0:
            raise HierarchyError(f"vertex {v} has no ancestor with label index {label_index}")
        node = self.node(v)
        for node_id in node.path:
            candidate = self.nodes[node_id]
            if label_index < candidate.cumulative_count:
                return candidate.vertices[label_index - candidate.prefix_count]
        raise AssertionError("label index not found on ancestor path")

    def precedes(self, w: int, v: int) -> bool:
        """The vertex partial order ⪯ of Definition 4.3 (w ⪯ v)."""
        if w == v:
            return True
        node_w = self.node(w)
        node_v = self.node(v)
        if node_w.index == node_v.index:
            return self.tau[w] <= self.tau[v]
        # w precedes v iff w's node is a strict ancestor of v's node.
        depth = node_w.depth
        if depth >= node_v.depth:
            return False
        return node_v.path[depth] == node_w.index

    def descendants(self, r: int) -> list[int]:
        """``Desc(r)`` -- every vertex ``x`` with ``r ⪯ x`` (O(n), test helper)."""
        return [x for x in range(self._num_vertices) if self.precedes(r, x)]

    # ------------------------------------------------------------------ #
    # LCA machinery (bitstrings)
    # ------------------------------------------------------------------ #

    def lca_node_depth(self, s: int, t: int) -> int:
        """Depth of the lowest common ancestor node of ℓ(s) and ℓ(t).

        Computed in O(1) from the partition bitstrings, as in HC2L: the depth
        equals the length of the common prefix of the two bitstrings.
        """
        node_s = self.node(s)
        node_t = self.node(t)
        depth = min(node_s.depth, node_t.depth)
        bits_s = node_s.bits >> (node_s.depth - depth)
        bits_t = node_t.bits >> (node_t.depth - depth)
        xor = bits_s ^ bits_t
        if xor == 0:
            return depth
        return depth - xor.bit_length()

    def num_common_ancestors(self, s: int, t: int) -> int:
        """``|Anc(s) ∩ Anc(t)|`` -- the number of label entries a query scans.

        The common ancestors of ``s`` and ``t`` are always a prefix of both
        ancestor chains, so their count is the minimum of three quantities:
        the two chain lengths and the cumulative vertex count of the LCA node.
        """
        depth = self.lca_node_depth(s, t)
        node_s = self.node(s)
        lca_node = self.nodes[node_s.path[depth]]
        return min(self.tau[s] + 1, self.tau[t] + 1, lca_node.cumulative_count)

    def common_ancestors(self, s: int, t: int) -> list[int]:
        """The common ancestor vertices ``Ca(s, t)`` (test helper, O(h))."""
        count = self.num_common_ancestors(s, t)
        return self.ancestors(s)[:count]

    # ------------------------------------------------------------------ #
    # Statistics / iteration
    # ------------------------------------------------------------------ #

    def iter_nodes_topdown(self) -> Iterator[TreeNode]:
        """Iterate nodes parents-first (construction order guarantees this)."""
        return iter(self.nodes)

    def vertices_in_label_order(self) -> list[int]:
        """All vertices ordered by (node depth, node id, in-node position).

        Any linear extension of ⪯ works for label construction; this one
        processes high-level separators first, which mirrors how the paper
        describes the construction (top-down over cuts).
        """
        ordered: list[int] = []
        for node in self.nodes:
            ordered.extend(node.vertices)
        return ordered

    def separator_sizes_by_depth(self) -> dict[int, list[int]]:
        """Map from node depth to the list of separator sizes at that depth."""
        result: dict[int, list[int]] = {}
        for node in self.nodes:
            result.setdefault(node.depth, []).append(len(node.vertices))
        return result
