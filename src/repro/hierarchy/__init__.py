"""Stable tree hierarchy (Definition 4.1) and the vertex order it induces."""

from repro.hierarchy.tree import StableTreeHierarchy, TreeNode
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy

__all__ = [
    "StableTreeHierarchy",
    "TreeNode",
    "HierarchyOptions",
    "build_hierarchy",
]
