"""H2H-Index (Ouyang et al., SIGMOD 2018) -- construction and queries.

H2H builds a tree decomposition from a CH-W contraction order and stores, for
every vertex, three arrays (Section 3.1 of the STL paper):

* ``anc(v)`` -- the ancestor path from the root of the decomposition to ``v``,
* ``dist(v)`` -- the distances from ``v`` to each of those ancestors **in the
  whole graph**, and
* ``pos(v)`` -- the depths of the vertices of ``v``'s bag inside ``anc(v)``.

A query finds the lowest common ancestor of the two tree nodes and combines
the distance arrays at the positions stored for the LCA (Equation 1).

This module provides the static index; :mod:`repro.baselines.dynamic_h2h`
adds the maintenance machinery shared by IncH2H and DTDHL.
"""

from __future__ import annotations

import math

from repro.baselines.contraction import ContractionHierarchy
from repro.baselines.tree_decomposition import TreeDecomposition
from repro.core.stats import IndexStats
from repro.graph.graph import Graph
from repro.utils.memory import MemoryEstimate
from repro.utils.timer import Timer

UNREACHABLE = math.inf


class H2HIndex:
    """Static H2H-Index over a road network."""

    method_name = "H2H"

    def __init__(self, graph: Graph, ch: ContractionHierarchy, td: TreeDecomposition):
        self.graph = graph
        self.ch = ch
        self.td = td
        n = graph.num_vertices
        #: ancestor path (vertex ids, root first, v last) per vertex
        self.anc: list[list[int]] = [[] for _ in range(n)]
        #: distances from v to each ancestor in anc(v)
        self.dist: list[list[float]] = [[] for _ in range(n)]
        #: depths of the bag vertices of v (including v itself) inside anc(v)
        self.pos: list[list[int]] = [[] for _ in range(n)]
        #: binary-lifting table for LCA queries
        self._up: list[list[int]] = []
        self.construction_seconds = 0.0
        self._build_labels()
        self._build_lca_table()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, graph: Graph) -> "H2HIndex":
        """Contract, decompose and label ``graph``."""
        timer = Timer()
        with timer.measure():
            ch = ContractionHierarchy(graph, witness_search=False)
            td = TreeDecomposition(ch)
            index = cls(graph, ch, td)
        index.construction_seconds = timer.elapsed
        return index

    def _bag_with_weights(self, v: int) -> list[tuple[int, float]]:
        """Bag neighbours of ``v`` with their *current* shortcut weights."""
        shortcuts_v = self.ch.shortcuts[v]
        return [(u, shortcuts_v[u]) for u, _ in self.td.bag[v]]

    def _build_labels(self) -> None:
        td = self.td
        depth = td.depth
        for v in td.topdown_order:
            parent = td.parent[v]
            if parent == -1:
                self.anc[v] = [v]
                self.dist[v] = [0.0]
                self.pos[v] = [0]
                continue
            self.anc[v] = self.anc[parent] + [v]
            self.dist[v] = self._compute_distance_array(v)
            bag_depths = sorted({depth[u] for u, _ in td.bag[v]} | {depth[v]})
            self.pos[v] = bag_depths

    def _compute_distance_array(self, v: int) -> list[float]:
        """Top-down dynamic program for ``dist(v)`` (all ancestors processed)."""
        depth = self.td.depth
        anc_v = self.anc[v]
        depth_v = len(anc_v) - 1
        result = [UNREACHABLE] * (depth_v + 1)
        result[depth_v] = 0.0
        bag = self._bag_with_weights(v)
        for j in range(depth_v):
            best = UNREACHABLE
            ancestor_j = anc_v[j]
            for u, w in bag:
                if math.isinf(w):
                    continue
                du = depth[u]
                if du == j:
                    candidate = w
                elif du > j:
                    candidate = w + self.dist[u][j]
                else:
                    candidate = w + self.dist[ancestor_j][du]
                if candidate < best:
                    best = candidate
            result[j] = best
        return result

    def _build_lca_table(self) -> None:
        n = self.graph.num_vertices
        if n == 0:
            self._up = []
            return
        max_log = max(1, (max(self.td.depth) + 1).bit_length())
        up = [[-1] * n for _ in range(max_log)]
        up[0] = list(self.td.parent)
        for k in range(1, max_log):
            previous = up[k - 1]
            current = up[k]
            for v in range(n):
                mid = previous[v]
                current[v] = previous[mid] if mid != -1 else -1
        self._up = up

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def lca(self, s: int, t: int) -> int:
        """Lowest common ancestor of ``s`` and ``t`` in the decomposition."""
        depth = self.td.depth
        if depth[s] < depth[t]:
            s, t = t, s
        diff = depth[s] - depth[t]
        k = 0
        while diff:
            if diff & 1:
                s = self._up[k][s]
            diff >>= 1
            k += 1
        if s == t:
            return s
        for k in range(len(self._up) - 1, -1, -1):
            if self._up[k][s] != self._up[k][t]:
                s = self._up[k][s]
                t = self._up[k][t]
        return self._up[0][s]

    def query(self, s: int, t: int) -> float:
        """Distance query via the LCA's position array (Equation 1)."""
        if s == t:
            return 0.0
        ancestor = self.lca(s, t)
        if ancestor == s or ancestor == t:
            shallow, deep = (s, t) if ancestor == s else (t, s)
            return self.dist[deep][self.td.depth[shallow]]
        dist_s = self.dist[s]
        dist_t = self.dist[t]
        best = UNREACHABLE
        for i in self.pos[ancestor]:
            candidate = dist_s[i] + dist_t[i]
            if candidate < best:
                best = candidate
        return best

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def num_label_entries(self) -> int:
        """Number of stored distance entries."""
        return sum(len(d) for d in self.dist)

    def _auxiliary_bytes(self) -> int:
        """Aux data beyond the distance arrays: ancestor/position arrays + LCA table."""
        id_entries = sum(len(a) for a in self.anc) + sum(len(p) for p in self.pos)
        lca_entries = sum(len(row) for row in self._up)
        return 4 * (id_entries + lca_entries)

    def stats(self) -> IndexStats:
        """Table 4 row for this index."""
        shortcut_entries = self.ch.num_shortcut_edges() * 3  # (u, v, w) per edge
        memory = MemoryEstimate(
            distance_entries=self.num_label_entries(),
            id_entries=0,
            auxiliary_bytes=self._auxiliary_bytes() + 4 * shortcut_entries,
        )
        return IndexStats(
            method=self.method_name,
            num_vertices=self.graph.num_vertices,
            num_label_entries=self.num_label_entries(),
            memory=memory,
            tree_height=self.td.height,
            construction_seconds=self.construction_seconds,
        )
