"""HC2L (Farhan et al., SIGMOD 2024) -- hierarchical cut 2-hop labelling.

HC2L builds a balanced tree hierarchy by recursive bi-partitioning like STL,
but it *adds distance-preserving shortcuts* when a separator is removed: for
each side of the cut, a clique is inserted among the side's boundary vertices
whose weights capture the shortest detours through the removed separator.
This keeps the distances inside every partition equal to the distances in the
full graph, so labels store **global** distances -- at the price of denser
subgraphs (larger cuts at lower levels, larger labels) and of a structure
that cannot be maintained incrementally (the motivation for STL, Section 3.2
of the paper).

The query is identical in shape to STL's (scan the common-ancestor prefix of
two flat label arrays); HC2L is static, so no maintenance API is offered.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Sequence

from repro.core.stats import IndexStats
from repro.graph.graph import Graph
from repro.hierarchy.tree import StableTreeHierarchy
from repro.partition.bisection import Bisector, HybridBisector
from repro.utils.memory import MemoryEstimate
from repro.utils.timer import Timer

UNREACHABLE = math.inf


class HC2L:
    """Static hierarchical cut 2-hop labelling with distance-preserving shortcuts."""

    method_name = "HC2L"

    def __init__(
        self,
        graph: Graph,
        hierarchy: StableTreeHierarchy,
        labels: list[list[float]],
        construction_seconds: float = 0.0,
        num_shortcut_edges: int = 0,
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels
        self.construction_seconds = construction_seconds
        self.num_shortcut_edges = num_shortcut_edges

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        graph: Graph,
        bisector: Bisector | None = None,
        leaf_size: int = 16,
    ) -> "HC2L":
        """Build the HC2L hierarchy and labels for ``graph``."""
        timer = Timer()
        with timer.measure():
            builder = _HC2LBuilder(graph, bisector or HybridBisector(), leaf_size)
            hierarchy, labels, shortcut_edges = builder.run()
        return cls(graph, hierarchy, labels, timer.elapsed, shortcut_edges)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, s: int, t: int) -> float:
        """Distance query over the common-ancestor prefix (global distances)."""
        if s == t:
            return 0.0
        prefix = self.hierarchy.num_common_ancestors(s, t)
        label_s = self.labels[s]
        label_t = self.labels[t]
        best = UNREACHABLE
        for i in range(prefix):
            candidate = label_s[i] + label_t[i]
            if candidate < best:
                best = candidate
        return best

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def num_label_entries(self) -> int:
        """Number of stored distance entries."""
        return sum(len(label) for label in self.labels)

    def stats(self) -> IndexStats:
        """Table 4 row: labels plus the shortcut edges kept by the hierarchy."""
        entries = self.num_label_entries()
        return IndexStats(
            method=self.method_name,
            num_vertices=self.graph.num_vertices,
            num_label_entries=entries,
            memory=MemoryEstimate(
                distance_entries=entries,
                auxiliary_bytes=12 * self.num_shortcut_edges,
            ),
            tree_height=self.hierarchy.height,
            construction_seconds=self.construction_seconds,
        )


class _HC2LBuilder:
    """Recursive construction working on explicit (augmented) subgraphs."""

    def __init__(self, graph: Graph, bisector: Bisector, leaf_size: int):
        self.graph = graph
        self.bisector = bisector
        self.leaf_size = leaf_size
        self.hierarchy = StableTreeHierarchy(graph.num_vertices)
        self.labels: list[list[float]] = [[] for _ in range(graph.num_vertices)]
        self.num_shortcut_edges = 0

    def run(self) -> tuple[StableTreeHierarchy, list[list[float]], int]:
        adjacency: dict[int, dict[int, float]] = {v: dict() for v in self.graph.vertices()}
        for u, v, w in self.graph.edges():
            if math.isinf(w):
                continue
            adjacency[u][v] = min(w, adjacency[u].get(v, UNREACHABLE))
            adjacency[v][u] = min(w, adjacency[v].get(u, UNREACHABLE))
        self._build(sorted(adjacency), adjacency, parent=-1, is_right=False)
        self.hierarchy.finalize()
        # Every label ends with the vertex's distance to itself; pad any
        # ancestor the vertex could not reach with inf first.
        tau = self.hierarchy.tau
        for v in self.graph.vertices():
            label = self.labels[v]
            while len(label) < tau[v]:
                label.append(UNREACHABLE)
            label.append(0.0)
        return self.hierarchy, self.labels, self.num_shortcut_edges

    # ------------------------------------------------------------------ #

    def _build(
        self,
        vertices: list[int],
        adjacency: dict[int, dict[int, float]],
        parent: int,
        is_right: bool,
    ) -> None:
        node = self.hierarchy.add_node(parent, is_right)

        if len(vertices) <= self.leaf_size:
            ordered = sorted(vertices, key=lambda v: (-len(adjacency[v]), v))
            self.hierarchy.assign_vertices(node, ordered)
            self._label_cut(ordered, vertices, adjacency)
            return

        view = _SubgraphView(self.graph, vertices, adjacency)
        bisection = self.bisector.bisect(view, vertices)
        if not bisection.left or not bisection.right:
            ordered = sorted(vertices, key=lambda v: (-len(adjacency[v]), v))
            self.hierarchy.assign_vertices(node, ordered)
            self._label_cut(ordered, vertices, adjacency)
            return

        separator = sorted(bisection.separator, key=lambda v: (-len(adjacency[v]), v))
        self.hierarchy.assign_vertices(node, separator)
        separator_distances = self._label_cut(separator, vertices, adjacency)

        # Distance preservation: on each side, connect the boundary vertices
        # (those adjacent to the separator) by clique edges whose weight is
        # the shortest detour through the separator.  Paths that leave a side
        # always cross the separator, so these shortcuts make the side's
        # internal distances equal to the distances in the full graph -- and
        # they are what makes HC2L's lower-level subgraphs denser than STL's.
        for side in (bisection.left, bisection.right):
            self._add_boundary_clique(side, separator, separator_distances, adjacency)

        # Remove the separator from the working adjacency before recursing.
        for s in separator:
            for u in list(adjacency[s]):
                adjacency[u].pop(s, None)
            adjacency[s] = {}

        self._build(sorted(bisection.left), adjacency, node.index, False)
        self._build(sorted(bisection.right), adjacency, node.index, True)

    def _add_boundary_clique(
        self,
        side: Sequence[int],
        separator: Sequence[int],
        separator_distances: dict[int, dict[int, float]],
        adjacency: dict[int, dict[int, float]],
    ) -> None:
        separator_set = set(separator)
        boundary = [v for v in side if any(u in separator_set for u in adjacency[v])]
        for i, x in enumerate(boundary):
            for y in boundary[i + 1 :]:
                detour = UNREACHABLE
                for dist in separator_distances.values():
                    dx = dist.get(x)
                    dy = dist.get(y)
                    if dx is not None and dy is not None and dx + dy < detour:
                        detour = dx + dy
                if math.isinf(detour):
                    continue
                if detour < adjacency[x].get(y, UNREACHABLE):
                    if y not in adjacency[x]:
                        self.num_shortcut_edges += 1
                    adjacency[x][y] = detour
                    adjacency[y][x] = detour

    def _label_cut(
        self,
        cut_vertices: Sequence[int],
        subgraph_vertices: Sequence[int],
        adjacency: dict[int, dict[int, float]],
    ) -> dict[int, dict[int, float]]:
        """Label subgraph vertices with their distance to each cut vertex.

        Distances are computed inside the current augmented subgraph, which by
        the distance-preserving shortcuts equal the distances in the full
        graph.  Returns the per-cut-vertex distance maps (reused for the
        boundary cliques).
        """
        tau = self.hierarchy.tau
        allowed = set(subgraph_vertices)
        distance_maps: dict[int, dict[int, float]] = {}
        for r in cut_vertices:
            index = tau[r]
            dist = self._dijkstra(r, allowed, adjacency)
            distance_maps[r] = dist
            for v in subgraph_vertices:
                # Descendants of this node have not been assigned yet and
                # still carry tau == -1; the only vertices to skip are the cut
                # vertices that precede r (or r itself) inside this node.
                if v == r or (tau[v] != -1 and tau[v] <= index):
                    continue
                label = self.labels[v]
                while len(label) <= index:
                    label.append(UNREACHABLE)
                label[index] = dist.get(v, UNREACHABLE)
        return distance_maps

    @staticmethod
    def _dijkstra(
        source: int, allowed: set[int], adjacency: dict[int, dict[int, float]]
    ) -> dict[int, float]:
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            d, v = heappop(heap)
            if d > dist.get(v, UNREACHABLE):
                continue
            for nbr, w in adjacency[v].items():
                if nbr not in allowed:
                    continue
                nd = d + w
                if nd < dist.get(nbr, UNREACHABLE):
                    dist[nbr] = nd
                    heappush(heap, (nd, nbr))
        return dist


class _SubgraphView:
    """Adapter exposing an augmented adjacency dict through the Graph API.

    The bisectors only call ``neighbors``, ``coordinates``, ``num_vertices``
    and ``degree``; this view forwards those to the HC2L builder's working
    adjacency so separators account for the added shortcut edges.
    """

    def __init__(
        self,
        graph: Graph,
        vertices: Sequence[int],
        adjacency: dict[int, dict[int, float]],
    ):
        self._graph = graph
        self._adjacency = adjacency
        self._vertex_set = set(vertices)

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def coordinates(self):
        return self._graph.coordinates

    def neighbors(self, v: int) -> list[tuple[int, float]]:
        return [(u, w) for u, w in self._adjacency[v].items() if u in self._vertex_set]

    def degree(self, v: int) -> int:
        return len(self.neighbors(v))
