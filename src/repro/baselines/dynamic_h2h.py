"""Shared maintenance machinery for IncH2H and DTDHL.

Both competitors maintain an H2H index in two phases (Section 3.1 of the STL
paper):

1. **Shortcut maintenance** -- the CH-W shortcut graph ``G_S`` satisfies the
   recurrence ``w_S(u, v) = min(phi(u, v), min_x w_S(x, u) + w_S(x, v))`` over
   common lower-ranked neighbours ``x``.  After an edge-weight change the
   affected shortcuts are recomputed bottom-up (in increasing rank of the
   lower endpoint), exactly as in DCH.

2. **Label maintenance** -- the distance arrays of the tree decomposition are
   recomputed top-down inside the region of the tree that can be affected
   (the union of the subtrees rooted at the bags owning a changed shortcut).

The difference between the two methods is how aggressively phase 2 prunes:

* :class:`repro.baselines.dtdhl.DTDHL` recomputes the *complete* distance
  array of *every* vertex in the affected region (the DynH2H behaviour the
  DTDHL paper optimises only mildly), while
* :class:`repro.baselines.inch2h.IncH2H` tracks which array positions can
  actually change (from the changed positions of ancestors and bag members)
  and recomputes only those, skipping whole subtrees whose relevant
  dependencies did not change.

Both variants are exact; the tests verify them against Dijkstra after every
update.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Iterable

from repro.baselines.h2h import H2HIndex, UNREACHABLE
from repro.core.label_search import MaintenanceStats
from repro.graph.updates import EdgeUpdate


class DynamicH2H(H2HIndex):
    """H2H index with DCH-style shortcut maintenance and top-down label repair."""

    method_name = "DynamicH2H"
    #: Subclasses set this to enable the position-restricted pruning (IncH2H).
    prune_positions = False

    def __init__(self, graph, ch, td):
        super().__init__(graph, ch, td)
        # Static adjacency of G_S split by rank; the topology never changes
        # under weight updates, only the weights do.
        rank = ch.rank
        n = graph.num_vertices
        self._lower_adj: list[list[int]] = [[] for _ in range(n)]
        self._higher_adj: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            for u in ch.shortcuts[v]:
                if rank[u] < rank[v]:
                    self._lower_adj[v].append(u)
                else:
                    self._higher_adj[v].append(u)

    # ------------------------------------------------------------------ #
    # Public maintenance API
    # ------------------------------------------------------------------ #

    def apply_update(self, update: EdgeUpdate) -> MaintenanceStats:
        """Apply one edge-weight update (increase or decrease)."""
        return self.apply_batch([update])

    def apply_batch(self, updates: Iterable[EdgeUpdate]) -> MaintenanceStats:
        """Apply a batch of edge-weight updates."""
        updates = list(updates)
        stats = MaintenanceStats(updates_processed=len(updates))
        for update in updates:
            self.graph.set_weight(update.u, update.v, update.new_weight)
        changed_bags = self._maintain_shortcuts(updates, stats)
        if changed_bags:
            self._maintain_labels(changed_bags, stats)
        return stats

    # ------------------------------------------------------------------ #
    # Phase 1: shortcut maintenance (DCH-style)
    # ------------------------------------------------------------------ #

    def _original_weight(self, u: int, v: int) -> float:
        if self.graph.has_edge(u, v):
            return self.graph.weight(u, v)
        return UNREACHABLE

    def _recompute_shortcut(self, lower: int, upper: int) -> float:
        """Recompute ``w_S(lower, upper)`` from original weight + lower detours."""
        shortcuts = self.ch.shortcuts
        best = self._original_weight(lower, upper)
        for x in self._lower_adj[lower]:
            to_upper = shortcuts[x].get(upper)
            if to_upper is None:
                continue
            candidate = shortcuts[x][lower] + to_upper
            if candidate < best:
                best = candidate
        return best

    def _maintain_shortcuts(self, updates: list[EdgeUpdate], stats: MaintenanceStats) -> set[int]:
        """Propagate shortcut-weight changes bottom-up; return owning bags."""
        rank = self.ch.rank
        shortcuts = self.ch.shortcuts
        changed_bags: set[int] = set()

        heap: list[tuple[int, int, int]] = []
        seen: set[tuple[int, int]] = set()

        def push(u: int, v: int) -> None:
            lower, upper = (u, v) if rank[u] < rank[v] else (v, u)
            key = (lower, upper)
            if key not in seen:
                seen.add(key)
                heappush(heap, (rank[lower], lower, upper))

        for update in updates:
            push(update.u, update.v)

        while heap:
            _, lower, upper = heappop(heap)
            seen.discard((lower, upper))
            new_weight = self._recompute_shortcut(lower, upper)
            if new_weight == shortcuts[lower][upper]:
                continue
            shortcuts[lower][upper] = new_weight
            shortcuts[upper][lower] = new_weight
            stats.extra["shortcuts_changed"] = stats.extra.get("shortcuts_changed", 0) + 1
            changed_bags.add(lower)
            # (lower, upper) participates in the recurrence of every pair of
            # higher neighbours of ``lower`` that includes ``upper``.
            for other in self._higher_adj[lower]:
                if other != upper and upper in shortcuts[other]:
                    push(upper, other)
        return changed_bags

    # ------------------------------------------------------------------ #
    # Phase 2: label maintenance (top-down over the affected region)
    # ------------------------------------------------------------------ #

    def _maintain_labels(self, changed_bags: set[int], stats: MaintenanceStats) -> None:
        if self.prune_positions:
            self._maintain_labels_pruned(changed_bags, stats)
        else:
            self._maintain_labels_full(changed_bags, stats)

    def _affected_region_roots(self, changed_bags: set[int]) -> list[int]:
        """Minimal set of region roots: changed bags with no changed ancestor."""
        roots = []
        for v in sorted(changed_bags, key=lambda v: self.td.depth[v]):
            if not any(self.td.is_ancestor(c, v) for c in roots):
                roots.append(v)
        return roots

    def _maintain_labels_full(self, changed_bags: set[int], stats: MaintenanceStats) -> None:
        """DTDHL / DynH2H behaviour: rebuild every array in the affected region."""
        visited: set[int] = set()
        for root in self._affected_region_roots(changed_bags):
            for v in self.td.subtree(root):
                if v in visited:
                    continue
                visited.add(v)
                new_array = self._compute_distance_array(v)
                if new_array != self.dist[v]:
                    stats.labels_changed += 1
                self.dist[v] = new_array
        stats.vertices_affected += len(visited)

    def _maintain_labels_pruned(self, changed_bags: set[int], stats: MaintenanceStats) -> None:
        """IncH2H behaviour: recompute only the positions that can change."""
        depth = self.td.depth
        children = self.td.children
        bag = self.td.bag
        shortcuts = self.ch.shortcuts

        #: vertices whose subtrees must still be entered because they lead to
        #: another changed bag (even if nothing changed on the way).
        on_path: set[int] = set()
        for c in changed_bags:
            v = c
            while v != -1 and v not in on_path:
                on_path.add(v)
                v = self.td.parent[v]

        changed_positions: dict[int, set[int]] = {}
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        for c in changed_bags:
            heappush(heap, (depth[c], c))
            queued.add(c)

        while heap:
            _, v = heappop(heap)
            anc_v = self.anc[v]
            depth_v = len(anc_v) - 1

            if v in changed_bags:
                positions = set(range(depth_v))
            else:
                positions = set()
                for u, _ in bag[v]:
                    positions.update(changed_positions.get(u, ()))
                for j in range(depth_v):
                    if anc_v[j] in changed_positions:
                        positions.add(j)
                positions = {j for j in positions if j < depth_v}

            changed_here: set[int] = set()
            if positions:
                dist_v = self.dist[v]
                bag_weights = [(u, shortcuts[v][u]) for u, _ in bag[v]]
                for j in positions:
                    best = UNREACHABLE
                    ancestor_j = anc_v[j]
                    for u, w in bag_weights:
                        if math.isinf(w):
                            continue
                        du = depth[u]
                        if du == j:
                            candidate = w
                        elif du > j:
                            candidate = w + self.dist[u][j]
                        else:
                            candidate = w + self.dist[ancestor_j][du]
                        if candidate < best:
                            best = candidate
                    if best != dist_v[j]:
                        dist_v[j] = best
                        changed_here.add(j)
                stats.vertices_affected += 1

            if changed_here:
                changed_positions[v] = changed_here
                stats.labels_changed += 1

            # Descend where further changes are possible: always below a
            # vertex whose relevant positions were recomputed or changed, and
            # along paths leading to other changed bags.
            descend_all = bool(changed_here) or bool(positions)
            for child in children[v]:
                if child in queued:
                    continue
                if descend_all or child in on_path:
                    heappush(heap, (depth[child], child))
                    queued.add(child)
