"""DTDHL (Zhang et al., ICDE 2021) -- dynamic tree-decomposition hub labelling.

DTDHL is the optimised DynH2H: it first updates shortcuts like DCH and then
repairs labels via the tree decomposition top-down.  Compared to IncH2H it
keeps far less auxiliary data (smaller index) but repairs whole distance
arrays for every vertex in the affected region, which makes its updates much
slower -- the ordering the paper's Table 3 and Table 4 report.
"""

from __future__ import annotations

from repro.baselines.contraction import ContractionHierarchy
from repro.baselines.dynamic_h2h import DynamicH2H
from repro.baselines.tree_decomposition import TreeDecomposition
from repro.core.stats import IndexStats
from repro.graph.graph import Graph
from repro.utils.memory import MemoryEstimate
from repro.utils.timer import Timer


class DTDHL(DynamicH2H):
    """Dynamic H2H with whole-subtree (unpruned) label maintenance."""

    method_name = "DTDHL"
    prune_positions = False

    @classmethod
    def build(cls, graph: Graph) -> "DTDHL":
        """Contract, decompose and label ``graph``."""
        timer = Timer()
        with timer.measure():
            ch = ContractionHierarchy(graph, witness_search=False)
            td = TreeDecomposition(ch)
            index = cls(graph, ch, td)
        index.construction_seconds = timer.elapsed
        return index

    def stats(self) -> IndexStats:
        """Table 4 row: the H2H arrays plus the shortcut graph, no extra aux."""
        base = super().stats()
        memory = MemoryEstimate(
            distance_entries=base.memory.distance_entries,
            id_entries=base.memory.id_entries,
            auxiliary_bytes=base.memory.auxiliary_bytes,
        )
        return IndexStats(
            method=self.method_name,
            num_vertices=base.num_vertices,
            num_label_entries=base.num_label_entries,
            memory=memory,
            tree_height=base.tree_height,
            construction_seconds=base.construction_seconds,
        )
