"""Index-free distance oracle based on (bidirectional) Dijkstra.

This is the classical baseline from the paper's introduction: no
pre-computation, instant updates, but queries that are orders of magnitude
slower than any labelling.  It doubles as the ground-truth oracle for the
test suite.
"""

from __future__ import annotations

from repro.algorithms.bidirectional import bidirectional_dijkstra
from repro.algorithms.dijkstra import dijkstra_with_target
from repro.core.label_search import MaintenanceStats
from repro.core.stats import IndexStats
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate
from repro.utils.memory import MemoryEstimate


class DijkstraOracle:
    """Answer queries by searching the graph directly."""

    def __init__(self, graph: Graph, bidirectional: bool = True):
        self.graph = graph
        self.bidirectional = bidirectional
        self.construction_seconds = 0.0

    @classmethod
    def build(cls, graph: Graph, bidirectional: bool = True) -> "DijkstraOracle":
        """Match the ``build`` signature of the labelling methods."""
        return cls(graph, bidirectional)

    def query(self, s: int, t: int) -> float:
        """Shortest-path distance via a fresh search."""
        if self.bidirectional:
            return bidirectional_dijkstra(self.graph, s, t)
        return dijkstra_with_target(self.graph, s, t)

    def apply_update(self, update: EdgeUpdate) -> MaintenanceStats:
        """Apply an edge-weight update (O(1): only the graph changes)."""
        self.graph.set_weight(update.u, update.v, update.new_weight)
        return MaintenanceStats(updates_processed=1)

    def apply_batch(self, updates) -> MaintenanceStats:
        """Apply a batch of updates."""
        stats = MaintenanceStats()
        for update in updates:
            stats.merge(self.apply_update(update))
        return stats

    def stats(self) -> IndexStats:
        """No index is stored; size is zero."""
        return IndexStats(
            method="Dijkstra",
            num_vertices=self.graph.num_vertices,
            num_label_entries=0,
            memory=MemoryEstimate(distance_entries=0),
            tree_height=0,
            construction_seconds=self.construction_seconds,
        )
