"""Tree decomposition induced by a CH-W contraction order.

Every contracted vertex ``v`` forms a bag ``X(v) = {v} ∪ N_S⁺(v)`` where
``N_S⁺(v)`` are ``v``'s higher-ranked neighbours in the shortcut graph.  The
parent of ``X(v)`` is ``X(u)`` for the lowest-ranked vertex ``u`` of
``N_S⁺(v)``.  Two classical properties make this the backbone of H2H:

* every vertex in ``X(v)`` is an ancestor of ``v`` in the tree, and
* every shortest path between ``s`` and ``t`` passes through a vertex of the
  bag of their lowest common ancestor.
"""

from __future__ import annotations

from repro.baselines.contraction import ContractionHierarchy
from repro.utils.errors import GraphError


class TreeDecomposition:
    """Tree decomposition of a graph derived from a contraction hierarchy."""

    def __init__(self, hierarchy: ContractionHierarchy):
        self.ch = hierarchy
        n = hierarchy.graph.num_vertices
        self.parent: list[int] = [-1] * n
        self.children: list[list[int]] = [[] for _ in range(n)]
        self.depth: list[int] = [0] * n
        #: bag(v): list of (ancestor_vertex, shortcut_weight) pairs, i.e. the
        #: higher neighbours of v in G_S.
        self.bag: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        #: root -> path ordering of vertices (each vertex owns one tree node)
        self.topdown_order: list[int] = []
        self.root: int = -1
        self._build()

    def _build(self) -> None:
        ch = self.ch
        n = ch.graph.num_vertices
        rank = ch.rank
        roots: list[int] = []
        for v in range(n):
            higher = sorted(ch.higher_neighbors(v), key=lambda item: rank[item[0]])
            self.bag[v] = higher
            if higher:
                self.parent[v] = higher[0][0]
                self.children[higher[0][0]].append(v)
            else:
                roots.append(v)

        if not roots:
            raise GraphError("tree decomposition has no root")
        # A connected graph yields exactly one root (the last contracted
        # vertex); disconnected inputs yield one root per component -- we link
        # the extra roots below the main root so that a single tree remains.
        self.root = max(roots, key=lambda v: rank[v])
        for extra in roots:
            if extra != self.root:
                self.parent[extra] = self.root
                self.children[self.root].append(extra)

        # Depths + top-down order via BFS from the root.
        order: list[int] = [self.root]
        self.depth[self.root] = 0
        index = 0
        while index < len(order):
            v = order[index]
            index += 1
            for child in self.children[v]:
                self.depth[child] = self.depth[v] + 1
                order.append(child)
        if len(order) != n:
            raise GraphError("tree decomposition is not connected")
        self.topdown_order = order

    # ------------------------------------------------------------------ #
    # Queries on the tree structure
    # ------------------------------------------------------------------ #

    @property
    def height(self) -> int:
        """Number of levels of the decomposition (max depth + 1)."""
        return max(self.depth) + 1 if self.depth else 0

    @property
    def width(self) -> int:
        """Maximum bag size (treewidth upper bound + 1)."""
        return max((len(b) + 1 for b in self.bag), default=0)

    def ancestors(self, v: int) -> list[int]:
        """Vertices on the path from the root down to ``v`` (inclusive)."""
        chain = []
        while v != -1:
            chain.append(v)
            v = self.parent[v]
        chain.reverse()
        return chain

    def subtree(self, v: int) -> list[int]:
        """All vertices in the subtree rooted at ``v`` (pre-order)."""
        result = [v]
        stack = [v]
        while stack:
            u = stack.pop()
            for child in self.children[u]:
                result.append(child)
                stack.append(child)
        return result

    def is_ancestor(self, a: int, v: int) -> bool:
        """Whether ``a`` lies on the root path of ``v`` (inclusive)."""
        while v != -1:
            if v == a:
                return True
            if self.depth[v] < self.depth[a]:
                return False
            v = self.parent[v]
        return False
