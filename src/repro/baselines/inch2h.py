"""IncH2H (Zhang & Yu, SIGMOD 2022) -- dynamic H2H with fine-grained pruning.

IncH2H maintains the H2H index under edge-weight increases and decreases.  Its
label phase tracks which positions of each distance array can actually change
and only recomputes those, at the cost of extra auxiliary bookkeeping -- which
is why the paper reports IncH2H's memory footprint to be several times the
size of its distance entries alone.
"""

from __future__ import annotations

from repro.baselines.contraction import ContractionHierarchy
from repro.baselines.dynamic_h2h import DynamicH2H
from repro.baselines.tree_decomposition import TreeDecomposition
from repro.core.stats import IndexStats
from repro.graph.graph import Graph
from repro.utils.memory import MemoryEstimate
from repro.utils.timer import Timer


class IncH2H(DynamicH2H):
    """Dynamic H2H with position-restricted label maintenance."""

    method_name = "IncH2H"
    prune_positions = True

    @classmethod
    def build(cls, graph: Graph) -> "IncH2H":
        """Contract, decompose and label ``graph``; keep maintenance aux data."""
        timer = Timer()
        with timer.measure():
            ch = ContractionHierarchy(graph, witness_search=False)
            td = TreeDecomposition(ch)
            index = cls(graph, ch, td)
        index.construction_seconds = timer.elapsed
        return index

    def stats(self) -> IndexStats:
        """Table 4 row.

        Beyond the H2H arrays, IncH2H keeps the shortcut graph with split
        lower/higher adjacency and per-position change-tracking buffers used
        to speed up maintenance; they are accounted as auxiliary bytes, which
        reproduces the paper's observation that IncH2H's index is several
        times larger than its raw label-entry count suggests.
        """
        base = super().stats()
        shortcut_edges = self.ch.num_shortcut_edges()
        maintenance_aux = 4 * (
            2 * shortcut_edges              # lower/higher adjacency ids
            + 2 * shortcut_edges            # per-edge support bookkeeping
            + 2 * self.num_label_entries()  # per-position change tracking
        )
        memory = MemoryEstimate(
            distance_entries=base.memory.distance_entries,
            id_entries=base.memory.id_entries,
            auxiliary_bytes=base.memory.auxiliary_bytes + maintenance_aux,
        )
        return IndexStats(
            method=self.method_name,
            num_vertices=base.num_vertices,
            num_label_entries=base.num_label_entries,
            memory=memory,
            tree_height=base.tree_height,
            construction_seconds=base.construction_seconds,
        )
