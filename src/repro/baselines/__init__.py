"""Competitor methods reimplemented from their published descriptions.

* :mod:`repro.baselines.dijkstra_oracle` -- index-free bidirectional Dijkstra,
* :mod:`repro.baselines.contraction` -- CH / CH-W contraction hierarchies,
* :mod:`repro.baselines.tree_decomposition` -- the tree decomposition induced
  by a CH-W contraction order,
* :mod:`repro.baselines.h2h` -- H2H-Index (Ouyang et al., SIGMOD 2018),
* :mod:`repro.baselines.inch2h` -- IncH2H dynamic maintenance (Zhang & Yu,
  SIGMOD 2022),
* :mod:`repro.baselines.dtdhl` -- DTDHL dynamic maintenance (Zhang et al.,
  ICDE 2021),
* :mod:`repro.baselines.hc2l` -- HC2L static labelling (Farhan et al.,
  SIGMOD 2024).
"""

from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.contraction import ContractionHierarchy
from repro.baselines.tree_decomposition import TreeDecomposition
from repro.baselines.h2h import H2HIndex
from repro.baselines.inch2h import IncH2H
from repro.baselines.dtdhl import DTDHL
from repro.baselines.hc2l import HC2L

__all__ = [
    "DijkstraOracle",
    "ContractionHierarchy",
    "TreeDecomposition",
    "H2HIndex",
    "IncH2H",
    "DTDHL",
    "HC2L",
]
