"""Contraction hierarchies: CH (with witness search) and CH-W (without).

CH-W is the shortcut structure underlying H2H / IncH2H / DTDHL: vertices are
contracted in a total order (lowest first) and, when a vertex is contracted,
a shortcut is inserted between **every** pair of its not-yet-contracted
neighbours -- no witness search.  The resulting "shortcut graph" ``G_S``
together with the contraction order induces the tree decomposition those
methods label over.

The classic CH (Geisberger et al.) adds a local witness search so that only
necessary shortcuts are kept; it is provided for the search-based comparison
and the examples, and is not used by the labelling baselines.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush

from repro.algorithms.dijkstra import UNREACHABLE
from repro.graph.graph import Graph
from repro.utils.errors import GraphError


class ContractionHierarchy:
    """A contraction hierarchy over a road network.

    Attributes
    ----------
    order:
        ``order[i]`` is the i-th contracted vertex (lowest first).
    rank:
        ``rank[v]`` is the contraction position of ``v``.
    shortcuts:
        ``shortcuts[u][v]`` is the weight of the (original or shortcut) edge
        between ``u`` and ``v`` in the shortcut graph ``G_S``; symmetric.
    higher_neighbors:
        For each vertex, its neighbours in ``G_S`` with larger rank -- these
        form the bag of the vertex in the induced tree decomposition.
    """

    def __init__(self, graph: Graph, witness_search: bool = False, hop_limit: int = 16):
        self.graph = graph
        self.witness_search = witness_search
        self.hop_limit = hop_limit
        self.order: list[int] = []
        self.rank: list[int] = [-1] * graph.num_vertices
        self.shortcuts: list[dict[int, float]] = [dict() for _ in range(graph.num_vertices)]
        self.num_added_shortcuts = 0
        self._contract_all()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _contract_all(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        # Working adjacency: starts as the original graph and accumulates
        # shortcuts among not-yet-contracted vertices.
        work: list[dict[int, float]] = [dict() for _ in range(n)]
        for u, v, w in graph.edges():
            if math.isinf(w):
                continue
            work[u][v] = min(w, work[u].get(v, UNREACHABLE))
            work[v][u] = min(w, work[v].get(u, UNREACHABLE))
            self.shortcuts[u][v] = work[u][v]
            self.shortcuts[v][u] = work[v][u]

        contracted = [False] * n

        def priority(v: int) -> tuple[int, int, int]:
            degree = len(work[v])
            # Edge-difference heuristic: shortcuts added minus edges removed.
            added = degree * (degree - 1) // 2
            return (added - degree, degree, v)

        heap: list[tuple[tuple[int, int, int], int]] = [(priority(v), v) for v in range(n)]
        heap.sort()
        import heapq

        heapq.heapify(heap)

        while heap:
            prio, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            # Lazy priority update: re-push if the stored priority is stale.
            current = priority(v)
            if current != prio:
                heapq.heappush(heap, (current, v))
                continue
            self._contract_vertex(v, work, contracted)

        if len(self.order) != n:
            raise GraphError("contraction did not cover every vertex")

    def _contract_vertex(
        self, v: int, work: list[dict[int, float]], contracted: list[bool]
    ) -> None:
        self.rank[v] = len(self.order)
        self.order.append(v)
        contracted[v] = True
        neighbors = [(u, w) for u, w in work[v].items() if not contracted[u]]

        for i, (u, wu) in enumerate(neighbors):
            for x, wx in neighbors[i + 1 :]:
                shortcut_weight = wu + wx
                if self.witness_search and self._has_witness(
                    work, contracted, u, x, v, shortcut_weight
                ):
                    continue
                existing = work[u].get(x, UNREACHABLE)
                new_weight = min(existing, shortcut_weight)
                if new_weight < existing:
                    self.num_added_shortcuts += 1
                work[u][x] = new_weight
                work[x][u] = new_weight
                previous = self.shortcuts[u].get(x, UNREACHABLE)
                if new_weight < previous:
                    self.shortcuts[u][x] = new_weight
                    self.shortcuts[x][u] = new_weight

        for u, _ in neighbors:
            work[u].pop(v, None)
        work[v].clear()

    def _has_witness(
        self,
        work: list[dict[int, float]],
        contracted: list[bool],
        source: int,
        target: int,
        skip: int,
        limit: float,
    ) -> bool:
        """Local Dijkstra proving a path <= ``limit`` avoiding ``skip`` exists."""
        dist = {source: 0.0}
        heap = [(0.0, source)]
        hops = {source: 0}
        while heap:
            d, x = heappop(heap)
            if d > limit:
                return False
            if x == target:
                return d <= limit
            if d > dist.get(x, UNREACHABLE):
                continue
            if hops[x] >= self.hop_limit:
                continue
            for nbr, w in work[x].items():
                if nbr == skip or contracted[nbr]:
                    continue
                nd = d + w
                if nd <= limit and nd < dist.get(nbr, UNREACHABLE):
                    dist[nbr] = nd
                    hops[nbr] = hops[x] + 1
                    heappush(heap, (nd, nbr))
        return False

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #

    def higher_neighbors(self, v: int) -> list[tuple[int, float]]:
        """Neighbours of ``v`` in ``G_S`` with larger contraction rank."""
        rank = self.rank
        return [(u, w) for u, w in self.shortcuts[v].items() if rank[u] > rank[v]]

    def lower_neighbors(self, v: int) -> list[tuple[int, float]]:
        """Neighbours of ``v`` in ``G_S`` with smaller contraction rank."""
        rank = self.rank
        return [(u, w) for u, w in self.shortcuts[v].items() if rank[u] < rank[v]]

    def num_shortcut_edges(self) -> int:
        """Number of edges in ``G_S`` (original + shortcut)."""
        return sum(len(adj) for adj in self.shortcuts) // 2

    def max_bag_size(self) -> int:
        """Size of the largest bag (treewidth + 1 upper bound)."""
        best = 0
        for v in range(self.graph.num_vertices):
            best = max(best, len(self.higher_neighbors(v)) + 1)
        return best

    # ------------------------------------------------------------------ #
    # CH query (bidirectional upward search)
    # ------------------------------------------------------------------ #

    def query(self, s: int, t: int) -> float:
        """Distance query via bidirectional upward search over ``G_S``.

        Correct for CH-W as well (redundant shortcuts never hurt correctness,
        only query speed).
        """
        if s == t:
            return 0.0
        dist_f = self._upward_search(s)
        dist_b = self._upward_search(t)
        best = UNREACHABLE
        small, large = (dist_f, dist_b) if len(dist_f) <= len(dist_b) else (dist_b, dist_f)
        for v, df in small.items():
            db = large.get(v)
            if db is not None and df + db < best:
                best = df + db
        return best

    def _upward_search(self, source: int) -> dict[int, float]:
        rank = self.rank
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            d, v = heappop(heap)
            if d > dist.get(v, UNREACHABLE):
                continue
            for u, w in self.shortcuts[v].items():
                if rank[u] <= rank[v]:
                    continue
                nd = d + w
                if nd < dist.get(u, UNREACHABLE):
                    dist[u] = nd
                    heappush(heap, (nd, u))
        return dist
