"""Process-pool shard backend with partitioned label ownership.

PR 2's :class:`repro.core.shard.ShardedBatchEngine` fans only the *read-only*
increase mark phases out to a thread pool; every label-writing phase stays
serial, so under the GIL the sharded path is bounded by single-core repair
speed.  This module is the ROADMAP's next step: a backend that runs whole
shard sub-batches -- decreases included -- in true parallel on worker
*processes*, without changing the planner or the policy.

**Ownership model.**  Each worker process owns the label entries of the
:class:`repro.core.shard.ShardPlanner` regions assigned to it:

* the coordinator ships, once per batch, the worker's owned label rows
  (copied via :func:`repro.core.serialization.slice_labels`), the adjacency
  rows of its owned vertices, and its shard sub-batches;
* the worker mutates its private copies only -- there is no shared label
  state, so the PR 2 unsoundness argument against *concurrent in-place*
  decrease repairs simply does not apply: nothing a worker writes is
  observable (or corruptible) mid-flight, and the coordinator merges whole
  rows back *by ownership* (:func:`repro.core.serialization.merge_label_slices`);
* searches a worker runs are **confined** to its owned vertices.  By the
  planner's separator property no edge joins two regions, so the only way a
  search frontier can leave the owned set is through a separator vertex.
  Such a crossing is not followed -- it is captured as an *escape record*
  ``(distance, interval_min, target, interval_max)``, the exact heap entry
  the unconfined search would have pushed.

**Why owned-region decrease repairs are sound.**  The shared-frontier
decrease proof needs every relaxation chain of the serial execution to be
replayed from the same starting state with no chain silently dropped.  The
thread-pool design could not guarantee that with in-place writes (a lost
update strands an entry behind already-exact neighbours).  Here:

* every worker starts from the same post-increase label state the serial
  engine would see (owned rows are patched with the coordinator's combined
  increase repair before the decrease round);
* chains that stay inside a region are replayed verbatim by its owner;
* chains that cross the separator are truncated at the crossing and the
  in-flight heap entry -- which carries the genuine path length, not a label
  value -- is handed to the coordinator, which *settles* all escapes in one
  serial unconfined shared-frontier pass on the merged labels.  A chain is
  only ever pruned when some label entry already beats it, and the write
  that beat it pushed its own continuations (worker-side or as escapes), so
  the inductive coverage argument of the serial proof carries over;
* label writes are always of the form ``path length + root label entry``
  with both terms upper bounds of their true post-decrease values, so no
  write can undershoot -- exactness follows from coverage plus soundness.

Separator-touching and region-crossing updates never reach a worker at all:
the planner routes them to the residual sub-batch, which runs through the
serial :class:`repro.core.batch.BatchedParetoEngine` last, against the merged
state -- serial composition of exact engines is exact.

**Phase structure per batch** (coordinator = the calling process):

====  =======================================================  ===========
 #    phase                                                    where
====  =======================================================  ===========
 1    plan batch into per-region sub-batches + residual        coordinator
 2    confined increase mark searches                          workers
 3    settle mark escapes, merge marks in batch order,         coordinator
      apply increase weights, one combined bump-and-repair
 4    patch owned rows changed by 3, confined shared-frontier  workers
      decrease over each worker's sub-batch
 5    merge owned rows back, settle decrease escapes           coordinator
 6    residual sub-batch through the serial engine             coordinator
====  =======================================================  ===========

Phases 2 and 4 are the parallel ones and carry the bulk of the search work;
3 and 5 are the serial separator-coupling passes the partition cannot avoid.
The protocol is two request/reply messages per worker per batch over a
:func:`multiprocessing.Pipe`; payloads are plain tuples/dicts of ints and
floats, so they pickle under any start method.  Workers are persistent
daemon processes bound to their regions for the backend's lifetime --
region ownership is stable across batches.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Any, Sequence

from repro.core.batch import (
    BatchedParetoEngine,
    shared_frontier_relax,
    validate_coalesced,
)
from repro.core.label_search import MaintenanceStats
from repro.core.labelling import STLLabels
from repro.core.pareto_search import ParetoSearchIncrease, interval_mark_search
from repro.core.serialization import merge_label_slices, slice_labels
from repro.core.shard import ShardPlan, ShardPlanner, default_num_shards
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateKind
from repro.hierarchy.tree import StableTreeHierarchy

#: Seconds the coordinator waits for a worker reply before declaring the
#: pool wedged.  Generous for real batches, small enough that a deadlocked
#: worker fails a CI job instead of eating its whole time budget.
DEFAULT_REPLY_TIMEOUT = 120.0

# Escape record: the heap entry an unconfined search would have pushed at a
# separator crossing -- (distance, interval_min, target_vertex, interval_max).
_Escape = tuple[float, int, int, int]


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #

def _oriented(tau: Sequence[int], u: int, v: int) -> tuple[int, int]:
    """``(a, b)`` with ``tau[a] < tau[b]`` (Lemma 5.3 guarantees inequality)."""
    return (u, v) if tau[u] < tau[v] else (v, u)


def _set_row_weight(
    adjacency: dict[int, list[tuple[int, float]]], u: int, v: int, weight: float
) -> None:
    """Overwrite the (u, v) weight in both private adjacency rows."""
    for a, b in ((u, v), (v, u)):
        row = adjacency[a]
        for pos, (nbr, _) in enumerate(row):
            if nbr == b:
                row[pos] = (b, weight)
                break


def _worker_mark_phase(state: dict[str, Any]) -> dict[str, Any]:
    """Confined mark searches for the worker's shard increases (read-only)."""
    owned = state["owned_set"]
    tau = state["tau"]
    adjacency = state["adjacency"]
    labels = state["labels"]
    counters = [0, 0, 0]
    marks: dict[tuple[int, int], dict[int, set[int]]] = {}
    escapes: list[tuple[tuple[int, int], int, float, int, int, int]] = []
    for u, v, old, _new in state["increases"]:
        a, b = _oriented(tau, u, v)
        rmin = min(tau[a], tau[b])
        key = (u, v) if u < v else (v, u)
        hits: dict[int, set[int]] = {}
        for root, start in ((a, b), (b, a)):
            out: list[_Escape] = []
            interval_mark_search(
                adjacency,
                tau,
                labels,
                labels[root],
                [(old, 0, start, rmin)],
                hits,
                counters,
                owned=owned,
                escapes=out,
            )
            escapes.extend((key, root, d, mn, v2, mx) for d, mn, v2, mx in out)
        marks[key] = hits
    return {"marks": marks, "escapes": escapes, "counters": counters}


def _worker_decrease_phase(
    state: dict[str, Any], patches: list[tuple[int, int, float]]
) -> dict[str, Any]:
    """Confined shared-frontier pass over the worker's shard decreases.

    ``patches`` carries the owned entries the coordinator's combined
    increase repair changed, so the pass starts from the same post-increase
    label state the serial engine's decrease half would see.
    """
    owned = state["owned_set"]
    tau = state["tau"]
    adjacency = state["adjacency"]
    labels = state["labels"]
    for v, i, value in patches:
        labels[v][i] = value
    for u, v, _old, new in state["increases"]:
        _set_row_weight(adjacency, u, v, new)
    for u, v, _old, new in state["decreases"]:
        _set_row_weight(adjacency, u, v, new)

    contexts: list[tuple[int, list[float], list[_Escape]]] = []
    by_root: dict[int, int] = {}
    for u, v, _old, new in state["decreases"]:
        a, b = _oriented(tau, u, v)
        rmin = min(tau[a], tau[b])
        for root, start in ((a, b), (b, a)):
            ctx = by_root.get(root)
            if ctx is None:
                ctx = len(contexts)
                by_root[root] = ctx
                contexts.append((root, labels[root], []))
            contexts[ctx][2].append((new, 0, start, rmin))

    counters = [0, 0, 0]
    escapes: list[tuple[int, float, int, int, int]] = []
    shared_frontier_relax(adjacency, tau, labels, contexts, counters, owned=owned, escapes=escapes)
    return {"labels": labels, "escapes": escapes, "counters": counters}


def _region_worker_main(conn: Any) -> None:
    """Worker process main loop: two request/reply rounds per batch.

    Messages: ``("batch", state)`` loads a batch's owned slices and runs the
    mark phase; ``("decreases", patches)`` runs the decrease phase on the
    previously loaded state; ``("exit",)`` terminates.  Any exception is
    reported back as ``("error", traceback)`` so the coordinator can raise
    instead of hanging.
    """
    state: dict[str, Any] | None = None
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "exit":
            break
        try:
            if kind == "batch":
                state = message[1]
                state["owned_set"] = set(state["owned"])
                conn.send(("ok", _worker_mark_phase(state)))
            elif kind == "decreases":
                if state is None:
                    raise RuntimeError("decrease round received before batch state")
                conn.send(("ok", _worker_decrease_phase(state, message[1])))
            else:
                raise RuntimeError(f"unknown worker message {kind!r}")
        except BaseException:
            conn.send(("error", traceback.format_exc()))
    conn.close()


# --------------------------------------------------------------------------- #
# Coordinator side
# --------------------------------------------------------------------------- #

class _RegionWorker:
    """A persistent worker process plus the coordinator's pipe end."""

    def __init__(self, context: Any, index: int):
        self.index = index
        parent_conn, child_conn = context.Pipe()
        self.conn = parent_conn
        self.process = context.Process(
            target=_region_worker_main,
            args=(child_conn,),
            name=f"repro-shard-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def send(self, message: tuple[Any, ...]) -> None:
        self.conn.send(message)

    def recv(self, timeout: float) -> Any:
        if not self.conn.poll(timeout):
            raise RuntimeError(
                f"shard worker {self.index} gave no reply within {timeout:.0f}s "
                "(deadlocked or killed); closing the pool"
            )
        try:
            status, payload = self.conn.recv()
        except EOFError as exc:
            raise RuntimeError(f"shard worker {self.index} died mid-batch") from exc
        if status != "ok":
            raise RuntimeError(f"shard worker {self.index} failed:\n{payload}")
        return payload

    def close(self) -> None:
        try:
            if self.process.is_alive():
                self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=2.0)


def _pick_start_method(requested: str | None) -> str:
    """``fork`` where available (cheap, Linux), else the platform default."""
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ValueError(f"start method {requested!r} not available; choose from {available}")
        return requested
    return "fork" if "fork" in available else available[0]


class ProcessShardBackend:
    """Worker-process batch maintenance with partitioned label ownership.

    Implements the same backend surface as
    :class:`repro.core.shard.ShardedBatchEngine` (``apply`` /
    ``planner`` / ``close``) and the same guarantees: labels entry-wise
    equal to the serial :class:`BatchedParetoEngine`, degenerate plans
    (fewer than two populated shards) handed wholesale to the serial
    engine before any worker is spawned.

    Workers are created lazily on the first non-degenerate batch and stay
    bound to their planner regions until :meth:`close` (regions are
    topology-only, so the assignment never goes stale).  ``max_workers``
    caps the pool; with fewer workers than regions, a worker owns several
    regions -- sound, because regions only touch through the separator, so
    confinement over the union behaves exactly like per-region confinement.
    """

    name = "process"

    def __init__(
        self,
        graph: Graph,
        hierarchy: StableTreeHierarchy,
        labels: STLLabels,
        planner: ShardPlanner | None = None,
        max_workers: int | None = None,
        start_method: str | None = None,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels
        self.planner = planner or ShardPlanner(graph)
        self.max_workers = max_workers
        self.reply_timeout = reply_timeout
        self._context = multiprocessing.get_context(_pick_start_method(start_method))
        self._serial = BatchedParetoEngine(graph, hierarchy, labels)
        self._increase = ParetoSearchIncrease(graph, hierarchy, labels)
        self._workers: list[_RegionWorker] | None = None
        self._worker_of_region: list[int] = []

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_workers(self, max_workers: int | None) -> list[_RegionWorker]:
        regions, _ = self.planner.regions()
        requested = max_workers or self.max_workers
        if requested is None:
            # Default sizing never oversubscribes the machine; an explicit
            # max_workers is honoured as given (tests use it to exercise
            # multi-worker ownership on small boxes).
            requested = min(default_num_shards(), os.cpu_count() or 1)
        count = max(1, min(len(regions), requested))
        if self._workers is not None and len(self._workers) != count:
            # A conflicting explicit request resizes the pool rather than
            # being silently ignored; region ownership is re-derived from
            # the new count, so the next batch ships consistent slices.
            self.close()
        if self._workers is None:
            self._workers = [_RegionWorker(self._context, k) for k in range(count)]
            self._worker_of_region = [rid % count for rid in range(len(regions))]
        return self._workers

    def close(self) -> None:
        """Shut the worker pool down (idempotent; workers are daemonic)."""
        if self._workers is not None:
            for worker in self._workers:
                worker.close()
            self._workers = None
            self._worker_of_region = []

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Batch application
    # ------------------------------------------------------------------ #

    def apply(
        self,
        updates: Sequence[EdgeUpdate],
        plan: ShardPlan | None = None,
        max_workers: int | None = None,
    ) -> MaintenanceStats:
        """Apply one coalesced batch through the process-pool phases."""
        validate_coalesced(self.graph, updates)
        if plan is None:
            plan = self.planner.plan(updates)
        stats = MaintenanceStats(updates_processed=len(updates))
        stats.extra["shards"] = plan.populated_shards
        stats.extra["sharded_updates"] = plan.sharded_updates
        stats.extra["residual_updates"] = len(plan.residual)

        if plan.populated_shards < 2:
            serial_stats = self._serial.apply(updates)
            serial_stats.updates_processed = 0  # already counted above
            stats.merge(serial_stats)
            return stats

        workers = self._ensure_workers(max_workers)
        tasks = self._build_tasks(plan, workers)
        stats.extra["process_workers"] = len(tasks)

        try:
            # Round 1 (parallel): confined increase marks on the pre-batch
            # state.
            for widx, task in tasks.items():
                workers[widx].send(("batch", task))
            mark_replies = {widx: workers[widx].recv(self.reply_timeout) for widx in tasks}

            sharded_increases = [
                u
                for shard in plan.shards
                for u in shard
                if u.kind is UpdateKind.INCREASE
            ]
            if sharded_increases:
                stats.merge(self._finish_increases(updates, plan, tasks, mark_replies))
            for widx, reply in mark_replies.items():
                self._merge_counters(stats, reply["counters"])
                stats.extra["mark_escapes"] = stats.extra.get("mark_escapes", 0) + len(
                    reply["escapes"]
                )

            # Round 2 (parallel): confined decrease frontiers on the
            # post-increase state, then ownership merge + escape settlement.
            decrease_tasks = {widx: task for widx, task in tasks.items() if task["decreases"]}
            if decrease_tasks:
                stats.merge(self._run_decreases(tasks, decrease_tasks, workers))
        except BaseException:
            # A failed or timed-out round leaves replies of this batch
            # buffered in the pipes; a retry against the same pool would
            # consume them as the *next* batch's replies and silently
            # corrupt labels.  Tear the pool down so the next apply() starts
            # from freshly spawned workers.
            self.close()
            raise

        if len(plan.residual):
            residual_stats = self._serial.apply(plan.residual.updates)
            residual_stats.updates_processed = 0  # already counted above
            stats.merge(residual_stats)
        return stats

    # ------------------------------------------------------------------ #
    # Task construction
    # ------------------------------------------------------------------ #

    def _build_tasks(
        self, plan: ShardPlan, workers: list[_RegionWorker]
    ) -> dict[int, dict[str, Any]]:
        """One shipping payload per worker that has a populated region."""
        adjacency = self.graph.adjacency()
        tau = self.hierarchy.tau
        tasks: dict[int, dict[str, Any]] = {}
        for rid, shard in enumerate(plan.shards):
            if not len(shard):
                continue
            widx = self._worker_of_region[rid]
            task = tasks.get(widx)
            if task is None:
                task = tasks[widx] = {
                    "owned": [],
                    "tau": tau,
                    "adjacency": {},
                    "labels": {},
                    "increases": [],
                    "decreases": [],
                }
            region = plan.regions[rid]
            task["owned"].extend(region)
            for v in region:
                task["adjacency"][v] = list(adjacency[v])
            task["labels"].update(slice_labels(self.labels, region))
            for u in shard:
                record = (u.u, u.v, u.old_weight, u.new_weight)
                if u.kind is UpdateKind.INCREASE:
                    task["increases"].append(record)
                elif u.kind is UpdateKind.DECREASE:
                    task["decreases"].append(record)
        return tasks

    # ------------------------------------------------------------------ #
    # Increase half: settle mark escapes, merge in batch order, repair
    # ------------------------------------------------------------------ #

    def _finish_increases(
        self,
        updates: Sequence[EdgeUpdate],
        plan: ShardPlan,
        tasks: dict[int, dict[str, Any]],
        mark_replies: dict[int, Any],
    ) -> MaintenanceStats:
        stats = MaintenanceStats()
        adjacency = self.graph.adjacency()
        tau = self.hierarchy.tau
        counters = [0, 0, 0]

        # Collect worker marks and continue every escaped mark search
        # serially on the (still unmodified) global state.  Escapes are
        # grouped per (update, root) so each continuation relaxes against
        # the correct root label with a fresh pruning map; re-examining
        # vertices a worker already examined is harmless -- the tolerant
        # mark test is value-based and over-marking is repair-safe.
        marks_by_edge: dict[tuple[int, int], dict[int, set[int]]] = {}
        continuations: dict[tuple[tuple[int, int], int], list[_Escape]] = {}
        for widx in sorted(mark_replies):
            reply = mark_replies[widx]
            for key, hits in reply["marks"].items():
                merged = marks_by_edge.setdefault(key, {})
                for v, levels in hits.items():
                    merged.setdefault(v, set()).update(levels)
            for key, root, d, mn, v, mx in reply["escapes"]:
                continuations.setdefault((key, root), []).append((d, mn, v, mx))
        for (key, root), seeds in continuations.items():
            interval_mark_search(
                adjacency,
                tau,
                self.labels,
                self.labels[root],
                sorted(seeds),
                marks_by_edge.setdefault(key, {}),
                counters,
            )

        # Merge the per-update marks into one bump map in the original
        # coalesced batch order -- the same accumulation the serial engine
        # performs, so per-entry bump sums are added in the same order.
        sharded_edges = {
            (u.u, u.v) if u.u < u.v else (u.v, u.u)
            for shard in plan.shards
            for u in shard
        }
        increase_order = [
            u
            for u in updates
            if u.kind is UpdateKind.INCREASE
            and ((u.u, u.v) if u.u < u.v else (u.v, u.u)) in sharded_edges
        ]
        affected: dict[int, dict[int, float]] = {}
        for update in increase_order:
            key = (update.u, update.v) if update.u < update.v else (update.v, update.u)
            delta = update.new_weight - update.old_weight
            for v, levels in marks_by_edge.get(key, {}).items():
                row = affected.setdefault(v, {})
                for i in levels:
                    row[i] = row.get(i, 0.0) + delta
        stats.vertices_affected += len(affected)

        for update in increase_order:
            self.graph.set_weight(update.u, update.v, update.new_weight)
        if affected:
            stats.merge(self._increase.bump_and_repair(affected))

        # Record the owned entries the combined repair may have changed, so
        # the decrease round starts from the post-increase state.  The
        # repair only ever writes entries present in the bump map, so the
        # patch set is exactly the affected owned entries.
        owner_of: dict[int, int] = {}
        for widx, task in tasks.items():
            for v in task["owned"]:
                owner_of[v] = widx
        for v, levels in affected.items():
            widx = owner_of.get(v)
            if widx is None:
                continue
            patches = tasks[widx].setdefault("patches", [])
            label_v = self.labels[v]
            patches.extend((v, i, label_v[i]) for i in levels)

        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        return stats

    # ------------------------------------------------------------------ #
    # Decrease half: parallel confined frontiers + serial settlement
    # ------------------------------------------------------------------ #

    def _run_decreases(
        self,
        tasks: dict[int, dict[str, Any]],
        decrease_tasks: dict[int, dict[str, Any]],
        workers: list[_RegionWorker],
    ) -> MaintenanceStats:
        stats = MaintenanceStats()
        for widx, task in decrease_tasks.items():
            workers[widx].send(("decreases", task.get("patches", [])))
        # All sharded decrease weights go into the master graph while the
        # workers run; the settlement pass and the residual engine then see
        # the same graph the workers' private rows describe.
        for task in decrease_tasks.values():
            for u, v, _old, new in task["decreases"]:
                self.graph.set_weight(u, v, new)

        escape_seeds: dict[int, list[_Escape]] = {}
        for widx in sorted(decrease_tasks):
            reply = workers[widx].recv(self.reply_timeout)
            merge_label_slices(self.labels, reply["labels"], owned=tasks[widx]["owned"])
            for root, d, mn, v, mx in reply["escapes"]:
                escape_seeds.setdefault(root, []).append((d, mn, v, mx))
            self._merge_counters(stats, reply["counters"])
            stats.extra["decrease_escapes"] = stats.extra.get(
                "decrease_escapes", 0
            ) + len(reply["escapes"])

        if escape_seeds:
            contexts = [
                (root, self.labels[root], sorted(seeds))
                for root, seeds in sorted(escape_seeds.items())
            ]
            counters = [0, 0, 0]
            shared_frontier_relax(
                self.graph.adjacency(), self.hierarchy.tau, self.labels,
                contexts, counters,
            )
            self._merge_counters(stats, counters)
        return stats

    @staticmethod
    def _merge_counters(stats: MaintenanceStats, counters: list[int]) -> None:
        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        stats.vertices_affected += counters[2]
