"""Process-pool shard backend: resident workers on shared label memory.

PR 2's :class:`repro.core.shard.ShardedBatchEngine` fans only the *read-only*
increase mark phases out to a thread pool; every label-writing phase stays
serial, so under the GIL the sharded path is bounded by single-core repair
speed.  This backend runs whole shard sub-batches -- decreases included -- in
true parallel on worker *processes*, without changing the planner or the
policy.

**Residency model.**  Label entries live in one flat CSR buffer
(:class:`repro.core.labelling.STLLabels`), which the coordinator moves into a
``multiprocessing.shared_memory`` segment when the pool starts
(:meth:`STLLabels.share_into`).  Each worker process maps the segment once,
at startup, and builds its own ``STLLabels`` facade over the mapping -- the
same bytes the coordinator sees.  From then on **no label data is ever
shipped in either direction**; per batch the coordinator ships only

* the worker's shard sub-batches (the update records themselves), and
* *weight deltas*: the ``(u, v, new_weight)`` triples written to the master
  graph since the worker's adjacency mirror was last synced, filtered to
  edges incident to its owned vertices (the graph keeps a bounded write log,
  :meth:`repro.graph.graph.Graph.weight_changes_since`; if the log was
  trimmed past a worker's cursor, or the topology changed, the coordinator
  falls back to re-shipping that worker's owned adjacency rows wholesale).

Deltas carry absolute weights, so replaying one twice is idempotent -- a
worker that sat out several batches catches up from its cursor without
ordering hazards.

**Ownership and race freedom.**  Each worker owns the
:class:`repro.core.shard.ShardPlanner` regions assigned to it (``region_id %
worker_count``).  Shared-memory writes are race-free *by phase discipline*,
not by locking:

* workers write label rows only during their two phases, and only rows of
  vertices they own -- ownership sets are disjoint by construction;
* the coordinator writes labels only *between* worker phases (escape
  settlement, the combined increase repair, the residual engine), while
  every worker is blocked on its pipe waiting for the next message.

The strict request/reply alternation over each worker's pipe is the
synchronisation point: a worker cannot observe a coordinator write while the
coordinator is mutating, and vice versa.

**Confinement and escapes.**  Searches a worker runs are confined to its
owned vertices.  By the planner's separator property no edge joins two
regions, so the only way a search frontier can leave the owned set is
through a separator vertex.  Such a crossing is not followed -- it is
captured as an *escape record* ``(distance, interval_min, target,
interval_max)``, the exact heap entry the unconfined search would have
pushed, and settled serially by the coordinator.

**Why owned-region decrease repairs are sound.**  The shared-frontier
decrease proof needs every relaxation chain of the serial execution to be
replayed from the same starting state with no chain silently dropped:

* every worker starts its decrease phase from the same post-increase label
  state the serial engine would see -- trivially so, because the combined
  increase repair wrote *through the shared mapping* before the decrease
  round began;
* chains that stay inside a region are replayed verbatim by its owner;
* chains that cross the separator are truncated at the crossing and the
  in-flight heap entry -- which carries the genuine path length, not a label
  value -- is handed to the coordinator, which settles all escapes in one
  serial unconfined shared-frontier pass over the (shared) labels.  A chain
  is only ever pruned when some label entry already beats it, and the write
  that beat it pushed its own continuations (worker-side or as escapes), so
  the inductive coverage argument of the serial proof carries over;
* label writes are always of the form ``path length + root label entry``
  with both terms upper bounds of their true post-decrease values, so no
  write can undershoot -- exactness follows from coverage plus soundness.

Separator-touching and region-crossing updates never reach a worker at all:
the planner routes them to the residual sub-batch, which runs through the
serial :class:`repro.core.batch.BatchedParetoEngine` last, against the shared
state -- serial composition of exact engines is exact.

**Phase structure per batch** (coordinator = the calling process):

====  =======================================================  ===========
 #    phase                                                    where
====  =======================================================  ===========
 1    plan batch into per-region sub-batches + residual        coordinator
 2    sync adjacency deltas, confined increase mark searches   workers
 3    settle mark escapes, merge marks in batch order,         coordinator
      apply increase weights, one combined bump-and-repair
      (writes land in the shared mapping)
 4    sync this batch's weight deltas, confined                workers
      shared-frontier decrease writing owned rows in place
 5    settle decrease escapes                                  coordinator
 6    residual sub-batch through the serial engine             coordinator
====  =======================================================  ===========

Phases 2 and 4 are the parallel ones and carry the bulk of the search work;
3 and 5 are the serial separator-coupling passes the partition cannot avoid.
The same six phases run for either batch engine: with ``engine=
"label_search"`` the workers execute the confined per-label-index queue
drains of :mod:`repro.core.label_search` instead of the Pareto searches --
escape records become ``(index, distance, vertex)`` heap entries
(:data:`repro.core.label_search.LabelSearchEscape`), phase 3 unions the
workers' affected sets (no ordering discipline needed -- phase 1 marks
vertices, not value bumps) and repairs through the shared mapping, phase 5
drains the crossing entries unconfined.  Residency and shipping are
engine-independent.
The protocol is two request/reply messages per worker per batch over a
:func:`multiprocessing.Pipe`; payloads are plain tuples/dicts of ints and
floats, so they pickle under any start method.  Workers are persistent
daemon processes bound to their regions -- and to the one shared segment --
for the backend's lifetime; :meth:`ProcessShardBackend.close` detaches the
labels and unlinks the segment.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import traceback
from array import array
from multiprocessing import shared_memory
from typing import Any, Sequence

from repro.core.batch import (
    BatchedParetoEngine,
    shared_frontier_relax,
    validate_coalesced,
)
from repro.core.batch_label_search import BatchedLabelSearchEngine, merge_affected_sets
from repro.core.label_search import (
    LabelSearchEscape,
    MaintenanceStats,
    drain_affected_queues,
    drain_decrease_queues,
    queues_from_escapes,
    repair_affected_entries,
    seed_affected_queues,
    seed_decrease_queues,
)
from repro.core.labelling import ENTRY_BYTES, STLLabels
from repro.core.pareto_search import ParetoSearchIncrease, interval_mark_search
from repro.core.shard import ShardPlan, ShardPlanner, default_num_shards
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateKind
from repro.hierarchy.tree import StableTreeHierarchy

#: Seconds the coordinator waits for a worker reply before declaring the
#: pool wedged.  Generous for real batches, small enough that a deadlocked
#: worker fails a CI job instead of eating its whole time budget.
DEFAULT_REPLY_TIMEOUT = 120.0

# Escape record: the heap entry an unconfined search would have pushed at a
# separator crossing -- (distance, interval_min, target_vertex, interval_max).
_Escape = tuple[float, int, int, int]


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #

def _oriented(tau: Sequence[int], u: int, v: int) -> tuple[int, int]:
    """``(a, b)`` with ``tau[a] < tau[b]`` (Lemma 5.3 guarantees inequality)."""
    return (u, v) if tau[u] < tau[v] else (v, u)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    The coordinator owns the segment and unlinks it at close; the worker
    must *not* let the resource tracker adopt it too (Python registers
    every attach until 3.13's ``track=False``).  Under the ``fork`` start
    method the tracker process is even *shared* with the coordinator, so a
    worker registration (or a compensating unregister) would corrupt the
    coordinator's own bookkeeping.  On older Pythons the registration is
    suppressed by masking ``resource_tracker.register`` for the duration of
    the attach -- safe here because the worker is single-threaded.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track flag
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _worker_init(payload: dict[str, Any]) -> dict[str, Any]:
    """Map the shared label segment and mirror the owned adjacency rows."""
    segment = _attach_segment(payload["segment"])
    nbytes = payload["num_entries"] * ENTRY_BYTES
    entries = segment.buf[:nbytes].cast("d")
    offsets = array("q")
    offsets.frombytes(payload["offsets"])
    labels = STLLabels.from_flat(entries, offsets)
    return {
        "segment": segment,
        "labels": labels,
        "tau": payload["tau"],
        "owned": payload["owned"],
        "owned_set": set(payload["owned"]),
        "adjacency": payload["adjacency"],
    }


def _worker_teardown(state: dict[str, Any]) -> None:
    """Release every view over the mapping, then close it."""
    state["labels"].release_views()
    try:
        state["segment"].close()
    except BufferError:  # pragma: no cover - stray export; mapping dies with us
        pass


def _apply_weight_deltas(
    adjacency: dict[int, list[tuple[int, float]]],
    deltas: Sequence[tuple[int, int, float]],
) -> None:
    """Replay absolute-weight writes into the owned adjacency mirror.

    Rows for unowned endpoints are simply absent from the mirror and
    skipped; replaying a delta twice is a no-op by construction.
    """
    for a, b, weight in deltas:
        for x, y in ((a, b), (b, a)):
            row = adjacency.get(x)
            if row is None:
                continue
            for pos, (nbr, _) in enumerate(row):
                if nbr == y:
                    row[pos] = (y, weight)
                    break


def _worker_sync(state: dict[str, Any], task: dict[str, Any]) -> None:
    """Bring the adjacency mirror up to date from a sync payload."""
    rows = task.get("adjacency")
    if rows is not None:
        state["adjacency"] = rows
    else:
        _apply_weight_deltas(state["adjacency"], task["weight_deltas"])


def _worker_mark_phase(state: dict[str, Any]) -> dict[str, Any]:
    """Confined mark searches for the worker's shard increases (read-only)."""
    owned = state["owned_set"]
    tau = state["tau"]
    adjacency = state["adjacency"]
    labels = state["labels"]
    counters = [0, 0, 0]
    marks: dict[tuple[int, int], dict[int, set[int]]] = {}
    escapes: list[tuple[tuple[int, int], int, float, int, int, int]] = []
    for u, v, old, _new in state["increases"]:
        a, b = _oriented(tau, u, v)
        rmin = min(tau[a], tau[b])
        key = (u, v) if u < v else (v, u)
        hits: dict[int, set[int]] = {}
        for root, start in ((a, b), (b, a)):
            out: list[_Escape] = []
            interval_mark_search(
                adjacency,
                tau,
                labels,
                labels[root],
                [(old, 0, start, rmin)],
                hits,
                counters,
                owned=owned,
                escapes=out,
            )
            escapes.extend((key, root, d, mn, v2, mx) for d, mn, v2, mx in out)
        marks[key] = hits
    return {"marks": marks, "escapes": escapes, "counters": counters}


def _worker_decrease_phase(state: dict[str, Any]) -> dict[str, Any]:
    """Confined shared-frontier pass over the worker's shard decreases.

    Label writes go straight into the shared mapping -- only rows of owned
    vertices, which no other process touches during this phase.  The
    starting state is the coordinator's post-increase repair, already
    visible through the mapping; the adjacency mirror was synced with this
    batch's weight writes by the accompanying sync payload.
    """
    owned = state["owned_set"]
    tau = state["tau"]
    adjacency = state["adjacency"]
    labels = state["labels"]

    contexts: list[tuple[int, Any, list[_Escape]]] = []
    by_root: dict[int, int] = {}
    for u, v, _old, new in state["decreases"]:
        a, b = _oriented(tau, u, v)
        rmin = min(tau[a], tau[b])
        for root, start in ((a, b), (b, a)):
            ctx = by_root.get(root)
            if ctx is None:
                ctx = len(contexts)
                by_root[root] = ctx
                contexts.append((root, labels[root], []))
            contexts[ctx][2].append((new, 0, start, rmin))

    counters = [0, 0, 0]
    escapes: list[tuple[int, float, int, int, int]] = []
    shared_frontier_relax(adjacency, tau, labels, contexts, counters, owned=owned, escapes=escapes)
    return {"escapes": escapes, "counters": counters}


def _worker_ls_mark_phase(state: dict[str, Any]) -> dict[str, Any]:
    """Confined Label Search phase 1 for the worker's shard increases.

    Read-only on the labels (the whole shared mapping is safely readable --
    nobody writes during round 1), adjacency reads confined to the owned
    mirror.  Escapes stay gated on the old-shortest-path predicate, exactly
    like the unconfined drain; affected sets ship back as sorted lists so
    the reply pickles deterministically.
    """
    tau = state["tau"]
    counters = [0, 0, 0]
    queues: dict[int, list[tuple[float, int]]] = {}
    increases = [EdgeUpdate(*record) for record in state["increases"]]
    seed_affected_queues(tau, state["labels"], increases, queues, counters)
    affected: dict[int, set[int]] = {}
    escapes: list[LabelSearchEscape] = []
    drain_affected_queues(
        state["adjacency"],
        tau,
        state["labels"],
        queues,
        affected,
        counters,
        owned=state["owned_set"],
        escapes=escapes,
    )
    return {
        "affected": {index: sorted(vertices) for index, vertices in affected.items()},
        "escapes": escapes,
        "counters": counters,
    }


def _worker_ls_decrease_phase(state: dict[str, Any]) -> dict[str, Any]:
    """Confined per-index decrease drains over the worker's shard decreases.

    Label writes go straight into the shared mapping -- only rows of owned
    vertices (seeds have both endpoints owned; confined pushes never leave
    the region).  A push toward an unowned vertex is escaped without the
    usual improvement read: the unowned row may be mid-rewrite by its owner,
    and the settle drain's pop gate re-applies the test on merged state.
    """
    tau = state["tau"]
    counters = [0, 0, 0]
    queues: dict[int, list[tuple[float, int]]] = {}
    decreases = [EdgeUpdate(*record) for record in state["decreases"]]
    seed_decrease_queues(tau, state["labels"], decreases, queues, counters)
    escapes: list[LabelSearchEscape] = []
    drain_decrease_queues(
        state["adjacency"],
        tau,
        state["labels"],
        queues,
        counters,
        owned=state["owned_set"],
        escapes=escapes,
    )
    return {"escapes": escapes, "counters": counters}


def _region_worker_main(conn: Any) -> None:
    """Worker process main loop: two request/reply rounds per batch.

    Messages: ``("init", payload)`` maps the shared label segment and the
    owned adjacency mirror once, at pool startup; ``("batch", task)`` syncs
    weight deltas and runs the mark phase of the task's engine (Pareto
    interval marks or Label Search phase 1); ``("decreases", sync)`` applies
    this batch's weight writes and runs the same engine's decrease phase;
    ``("exit",)`` unmaps and terminates.  Any exception is reported back as
    ``("error", traceback)`` so the coordinator can raise instead of hanging.
    """
    state: dict[str, Any] | None = None
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "exit":
            if state is not None:
                _worker_teardown(state)
            break
        try:
            if kind == "init":
                state = _worker_init(message[1])
                conn.send(("ok", None))
            elif kind == "batch":
                if state is None:
                    raise RuntimeError("batch received before init")
                task = message[1]
                _worker_sync(state, task)
                state["increases"] = task["increases"]
                state["decreases"] = task["decreases"]
                state["engine"] = task.get("engine", "pareto")
                if state["engine"] == "label_search":
                    conn.send(("ok", _worker_ls_mark_phase(state)))
                else:
                    conn.send(("ok", _worker_mark_phase(state)))
            elif kind == "decreases":
                if state is None:
                    raise RuntimeError("decrease round received before init")
                _worker_sync(state, message[1])
                if state.get("engine") == "label_search":
                    conn.send(("ok", _worker_ls_decrease_phase(state)))
                else:
                    conn.send(("ok", _worker_decrease_phase(state)))
            else:
                raise RuntimeError(f"unknown worker message {kind!r}")
        except BaseException:
            conn.send(("error", traceback.format_exc()))
    conn.close()


# --------------------------------------------------------------------------- #
# Coordinator side
# --------------------------------------------------------------------------- #

class _RegionWorker:
    """A persistent worker process plus the coordinator's pipe end."""

    def __init__(self, context: Any, index: int):
        self.index = index
        parent_conn, child_conn = context.Pipe()
        self.conn = parent_conn
        self.process = context.Process(
            target=_region_worker_main,
            args=(child_conn,),
            name=f"repro-shard-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def send(self, message: tuple[Any, ...]) -> None:
        self.conn.send(message)

    def recv(self, timeout: float) -> Any:
        if not self.conn.poll(timeout):
            raise RuntimeError(
                f"shard worker {self.index} gave no reply within {timeout:.0f}s "
                "(deadlocked or killed); closing the pool"
            )
        try:
            status, payload = self.conn.recv()
        except EOFError as exc:
            raise RuntimeError(f"shard worker {self.index} died mid-batch") from exc
        if status != "ok":
            raise RuntimeError(f"shard worker {self.index} failed:\n{payload}")
        return payload

    def close(self) -> None:
        try:
            if self.process.is_alive():
                self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=2.0)


def _pick_start_method(requested: str | None) -> str:
    """``fork`` where available (cheap, Linux), else the platform default."""
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ValueError(f"start method {requested!r} not available; choose from {available}")
        return requested
    return "fork" if "fork" in available else available[0]


class ProcessShardBackend:
    """Worker-process batch maintenance on a shared label mapping.

    Implements the same backend surface as
    :class:`repro.core.shard.ShardedBatchEngine` (``apply`` /
    ``planner`` / ``close``) and the same guarantees: labels entry-wise
    equal to the serial :class:`BatchedParetoEngine`, degenerate plans
    (fewer than two populated shards) handed wholesale to the serial
    engine before any worker is spawned.

    Workers are created lazily on the first non-degenerate batch; pool
    startup moves the labels into one shared-memory segment
    (``segment_name``) that every worker maps, and ships each worker its
    owned adjacency rows once.  After that, batches ship only update
    records and weight deltas.  Workers stay bound to their planner
    regions until :meth:`close` (regions are topology-only, so the
    assignment never goes stale); ``close`` detaches the labels back onto
    private memory and unlinks the segment.  ``max_workers`` caps the
    pool; with fewer workers than regions, a worker owns several regions
    -- sound, because regions only touch through the separator, so
    confinement over the union behaves exactly like per-region
    confinement.
    """

    name = "process"

    #: Distinguishes segments of multiple live backends in one process.
    _segment_counter = itertools.count()

    def __init__(
        self,
        graph: Graph,
        hierarchy: StableTreeHierarchy,
        labels: STLLabels,
        planner: ShardPlanner | None = None,
        max_workers: int | None = None,
        start_method: str | None = None,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels
        self.planner = planner or ShardPlanner(graph)
        self.max_workers = max_workers
        self.reply_timeout = reply_timeout
        self._context = multiprocessing.get_context(_pick_start_method(start_method))
        self._serial = BatchedParetoEngine(graph, hierarchy, labels)
        self._serial_ls = BatchedLabelSearchEngine(graph, hierarchy, labels)
        self._increase = ParetoSearchIncrease(graph, hierarchy, labels)
        self._workers: list[_RegionWorker] | None = None
        self._worker_of_region: list[int] = []
        self._owned_sets: list[set[int]] = []
        self._shm: shared_memory.SharedMemory | None = None
        self._segment_name: str | None = None
        # Per-worker adjacency-mirror cursors into the graph's write log.
        self._sync_positions: list[int] = []
        self._sync_structures: list[int] = []

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    @property
    def segment_name(self) -> str | None:
        """Name of the live shared-memory segment (``None`` when closed)."""
        return self._segment_name if self._shm is not None else None

    def _ensure_workers(self, max_workers: int | None) -> list[_RegionWorker]:
        regions, _ = self.planner.regions()
        requested = max_workers or self.max_workers
        if requested is None:
            # Default sizing never oversubscribes the machine; an explicit
            # max_workers is honoured as given (tests use it to exercise
            # multi-worker ownership on small boxes).
            requested = min(default_num_shards(), os.cpu_count() or 1)
        count = max(1, min(len(regions), requested))
        if self._workers is not None and len(self._workers) != count:
            # A conflicting explicit request resizes the pool rather than
            # being silently ignored; region ownership and the shared
            # segment are rebuilt from scratch for the new count.
            self.close()
        if self._workers is None:
            self._start_pool(regions, count)
        assert self._workers is not None
        return self._workers

    def _start_pool(self, regions: Sequence[Sequence[int]], count: int) -> None:
        """Create the shared segment, spawn workers, ship residency state."""
        num_entries = self.labels.num_entries()
        name = f"repro-stl-{os.getpid()}-{next(self._segment_counter)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, num_entries * ENTRY_BYTES)
        )
        try:
            self.labels.share_into(shm.buf[: num_entries * ENTRY_BYTES].cast("d"))
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        self._shm = shm
        self._segment_name = name

        self._worker_of_region = [rid % count for rid in range(len(regions))]
        owned_lists: list[list[int]] = [[] for _ in range(count)]
        for rid, region in enumerate(regions):
            owned_lists[rid % count].extend(region)
        self._owned_sets = [set(owned) for owned in owned_lists]

        adjacency = self.graph.adjacency()
        offsets_bytes = self.labels.offsets.tobytes()
        tau = list(self.hierarchy.tau)
        position = self.graph.weight_log_position()
        structure = self.graph.structure_version
        self._workers = [_RegionWorker(self._context, k) for k in range(count)]
        try:
            for k, worker in enumerate(self._workers):
                worker.send(
                    (
                        "init",
                        {
                            "segment": name,
                            "num_entries": num_entries,
                            "offsets": offsets_bytes,
                            "tau": tau,
                            "owned": owned_lists[k],
                            "adjacency": {v: list(adjacency[v]) for v in owned_lists[k]},
                        },
                    )
                )
            for worker in self._workers:
                worker.recv(self.reply_timeout)
        except BaseException:
            self.close()
            raise
        self._sync_positions = [position] * count
        self._sync_structures = [structure] * count

    def rebind(self, labels: STLLabels) -> None:
        """Re-point the backend at a different label store (snapshot swap).

        The serving layer's shadow-copy step replaces the writer's store
        wholesale, and the resident workers' state maps the *old* store's
        shared segment -- so the pool is shut down and every serial engine
        is rebuilt over ``labels``; the next batch lazily respawns the pool
        over a fresh segment carved from the new store.  A swap therefore
        costs one pool restart, paid by the first batch after the swap, not
        by queries.  Unsharing the old store is value-preserving (entries
        move to a private buffer byte-for-byte and its ``buffer_epoch``
        advances, invalidating cached kernel views), so snapshot readers
        still pinning it keep reading correct data.
        """
        self.close()
        self.labels = labels
        self._serial = BatchedParetoEngine(self.graph, self.hierarchy, labels)
        self._serial_ls = BatchedLabelSearchEngine(self.graph, self.hierarchy, labels)
        self._increase = ParetoSearchIncrease(self.graph, self.hierarchy, labels)

    def close(self) -> None:
        """Shut the pool down and unlink the shared segment (idempotent)."""
        if self._workers is not None:
            for worker in self._workers:
                worker.close()
            self._workers = None
            self._worker_of_region = []
            self._owned_sets = []
            self._sync_positions = []
            self._sync_structures = []
        if self._shm is not None:
            self.labels.unshare()
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - foreign export still live
                pass
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Delta shipping
    # ------------------------------------------------------------------ #

    def _sync_payload(self, widx: int, stats: MaintenanceStats) -> dict[str, Any]:
        """Weight deltas (or a full row resync) for one worker's mirror.

        Advances the worker's cursor to the present; absolute weights make
        re-shipping across overlapping payloads harmless.
        """
        graph = self.graph
        changes: list[tuple[int, int, float]] | None
        if self._sync_structures[widx] != graph.structure_version:
            changes = None  # topology changed; the delta log cannot express it
        else:
            changes = graph.weight_changes_since(self._sync_positions[widx])
        owned = self._owned_sets[widx]
        payload: dict[str, Any]
        if changes is None:
            adjacency = graph.adjacency()
            payload = {
                "adjacency": {v: list(adjacency[v]) for v in sorted(owned)},
                "weight_deltas": [],
            }
            stats.extra["adjacency_resyncs"] = stats.extra.get("adjacency_resyncs", 0) + 1
        else:
            merged: dict[tuple[int, int], float] = {}
            for a, b, weight in changes:
                if a in owned or b in owned:
                    merged[(a, b)] = weight
            deltas = [(a, b, weight) for (a, b), weight in merged.items()]
            payload = {"weight_deltas": deltas}
            stats.extra["shipped_weight_deltas"] = (
                stats.extra.get("shipped_weight_deltas", 0) + len(deltas)
            )
        self._sync_positions[widx] = graph.weight_log_position()
        self._sync_structures[widx] = graph.structure_version
        return payload

    # ------------------------------------------------------------------ #
    # Batch application
    # ------------------------------------------------------------------ #

    def apply(
        self,
        updates: Sequence[EdgeUpdate],
        plan: ShardPlan | None = None,
        max_workers: int | None = None,
        engine: str = "pareto",
    ) -> MaintenanceStats:
        """Apply one coalesced batch through the process-pool phases.

        ``engine`` selects the batch engine family the confined worker
        phases decompose: the Pareto mark/frontier searches, or Label
        Search's per-index queue drains (``"label_search"``) -- same
        residency, shipping and settle discipline either way, because the
        Label Search repairs also write through the shared mapping.
        """
        validate_coalesced(self.graph, updates)
        if plan is None:
            plan = self.planner.plan(updates)
        stats = MaintenanceStats(updates_processed=len(updates))
        stats.extra["shards"] = plan.populated_shards
        stats.extra["sharded_updates"] = plan.sharded_updates
        stats.extra["residual_updates"] = len(plan.residual)
        serial = self._serial_ls if engine == "label_search" else self._serial

        if plan.populated_shards < 2:
            serial_stats = serial.apply(updates)
            serial_stats.updates_processed = 0  # already counted above
            stats.merge(serial_stats)
            return stats

        workers = self._ensure_workers(max_workers)
        tasks = self._build_tasks(plan)
        for task in tasks.values():
            task["engine"] = engine
        stats.extra["process_workers"] = len(tasks)

        try:
            # Round 1 (parallel): sync mirrors to the pre-batch state, then
            # confined increase marks.
            for widx, task in tasks.items():
                task.update(self._sync_payload(widx, stats))
                workers[widx].send(("batch", task))
            mark_replies = {widx: workers[widx].recv(self.reply_timeout) for widx in tasks}

            sharded_increases = [
                u
                for shard in plan.shards
                for u in shard
                if u.kind is UpdateKind.INCREASE
            ]
            if sharded_increases:
                if engine == "label_search":
                    stats.merge(self._finish_ls_increases(plan, mark_replies))
                else:
                    stats.merge(self._finish_increases(updates, plan, mark_replies))
            for widx, reply in mark_replies.items():
                self._merge_counters(stats, reply["counters"])
                stats.extra["mark_escapes"] = stats.extra.get("mark_escapes", 0) + len(
                    reply["escapes"]
                )

            # Round 2 (parallel): confined decrease frontiers writing owned
            # rows into the shared mapping, then escape settlement.
            decrease_tasks = {widx: task for widx, task in tasks.items() if task["decreases"]}
            if decrease_tasks:
                stats.merge(self._run_decreases(decrease_tasks, workers, stats, engine))
        except BaseException:
            # A failed or timed-out round leaves replies of this batch
            # buffered in the pipes; a retry against the same pool would
            # consume them as the *next* batch's replies and silently
            # corrupt labels.  Tear the pool down so the next apply() starts
            # from freshly spawned workers (and a fresh segment).
            self.close()
            raise

        if len(plan.residual):
            residual_stats = serial.apply(plan.residual.updates)
            residual_stats.updates_processed = 0  # already counted above
            stats.merge(residual_stats)
        return stats

    # ------------------------------------------------------------------ #
    # Task construction
    # ------------------------------------------------------------------ #

    def _build_tasks(self, plan: ShardPlan) -> dict[int, dict[str, Any]]:
        """Per-worker update records; labels and adjacency are resident."""
        tasks: dict[int, dict[str, Any]] = {}
        for rid, shard in enumerate(plan.shards):
            if not len(shard):
                continue
            widx = self._worker_of_region[rid]
            task = tasks.get(widx)
            if task is None:
                task = tasks[widx] = {"increases": [], "decreases": []}
            for u in shard:
                record = (u.u, u.v, u.old_weight, u.new_weight)
                if u.kind is UpdateKind.INCREASE:
                    task["increases"].append(record)
                elif u.kind is UpdateKind.DECREASE:
                    task["decreases"].append(record)
        return tasks

    # ------------------------------------------------------------------ #
    # Increase half: settle mark escapes, merge in batch order, repair
    # ------------------------------------------------------------------ #

    def _finish_increases(
        self,
        updates: Sequence[EdgeUpdate],
        plan: ShardPlan,
        mark_replies: dict[int, Any],
    ) -> MaintenanceStats:
        stats = MaintenanceStats()
        adjacency = self.graph.adjacency()
        tau = self.hierarchy.tau
        counters = [0, 0, 0]

        # Collect worker marks and continue every escaped mark search
        # serially on the (still unmodified) global state.  Escapes are
        # grouped per (update, root) so each continuation relaxes against
        # the correct root label with a fresh pruning map; re-examining
        # vertices a worker already examined is harmless -- the tolerant
        # mark test is value-based and over-marking is repair-safe.
        marks_by_edge: dict[tuple[int, int], dict[int, set[int]]] = {}
        continuations: dict[tuple[tuple[int, int], int], list[_Escape]] = {}
        for widx in sorted(mark_replies):
            reply = mark_replies[widx]
            for key, hits in reply["marks"].items():
                merged = marks_by_edge.setdefault(key, {})
                for v, levels in hits.items():
                    merged.setdefault(v, set()).update(levels)
            for key, root, d, mn, v, mx in reply["escapes"]:
                continuations.setdefault((key, root), []).append((d, mn, v, mx))
        for (key, root), seeds in continuations.items():
            interval_mark_search(
                adjacency,
                tau,
                self.labels,
                self.labels[root],
                sorted(seeds),
                marks_by_edge.setdefault(key, {}),
                counters,
            )

        # Merge the per-update marks into one bump map in the original
        # coalesced batch order -- the same accumulation the serial engine
        # performs, so per-entry bump sums are added in the same order.
        sharded_edges = {
            (u.u, u.v) if u.u < u.v else (u.v, u.u)
            for shard in plan.shards
            for u in shard
        }
        increase_order = [
            u
            for u in updates
            if u.kind is UpdateKind.INCREASE
            and ((u.u, u.v) if u.u < u.v else (u.v, u.u)) in sharded_edges
        ]
        affected: dict[int, dict[int, float]] = {}
        for update in increase_order:
            key = (update.u, update.v) if update.u < update.v else (update.v, update.u)
            delta = update.new_weight - update.old_weight
            for v, levels in marks_by_edge.get(key, {}).items():
                row = affected.setdefault(v, {})
                for i in levels:
                    row[i] = row.get(i, 0.0) + delta
        stats.vertices_affected += len(affected)

        for update in increase_order:
            self.graph.set_weight(update.u, update.v, update.new_weight)
        if affected:
            # The repair writes through the shared mapping, so workers start
            # their decrease phase from the post-increase state without any
            # entries being shipped.
            stats.merge(self._increase.bump_and_repair(affected))

        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        return stats

    def _finish_ls_increases(
        self, plan: ShardPlan, mark_replies: dict[int, Any]
    ) -> MaintenanceStats:
        """Label Search increase half: merge affected sets, settle, repair.

        The workers' per-index affected sets union cleanly (phase 1 marks
        vertices, not value bumps, so no ordering discipline is needed --
        contrast :meth:`_finish_increases`); escaped chains are drained
        unconfined on the still-unmodified graph against the merged sets,
        then the new weights land and one combined per-index repair writes
        through the shared mapping, so workers start their decrease phase
        from the post-increase state without any entries being shipped.
        """
        stats = MaintenanceStats()
        tau = self.hierarchy.tau
        counters = [0, 0, 0]

        affected_by_index: dict[int, set[int]] = {}
        escapes: list[LabelSearchEscape] = []
        for widx in sorted(mark_replies):
            reply = mark_replies[widx]
            merge_affected_sets(affected_by_index, reply["affected"])
            escapes.extend(reply["escapes"])
        if escapes:
            drain_affected_queues(
                self.graph.adjacency(),
                tau,
                self.labels,
                queues_from_escapes(escapes),
                affected_by_index,
                counters,
            )
        stats.ancestors_touched += len(affected_by_index)
        for affected in affected_by_index.values():
            stats.vertices_affected += len(affected)

        for shard in plan.shards:
            for update in shard:
                if update.kind is UpdateKind.INCREASE:
                    self.graph.set_weight(update.u, update.v, update.new_weight)
        adjacency = self.graph.adjacency()
        for index in sorted(affected_by_index):
            affected = affected_by_index[index]
            if affected:
                repair_affected_entries(
                    adjacency, tau, self.labels, index, affected, counters
                )
        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        return stats

    # ------------------------------------------------------------------ #
    # Decrease half: parallel confined frontiers + serial settlement
    # ------------------------------------------------------------------ #

    def _run_decreases(
        self,
        decrease_tasks: dict[int, dict[str, Any]],
        workers: list[_RegionWorker],
        batch_stats: MaintenanceStats,
        engine: str = "pareto",
    ) -> MaintenanceStats:
        stats = MaintenanceStats()
        # All sharded decrease weights go into the master graph first, so
        # the sync payloads below carry them to the workers that relax them
        # (and, via later syncs, to everyone else).
        for task in decrease_tasks.values():
            for u, v, _old, new in task["decreases"]:
                self.graph.set_weight(u, v, new)
        for widx in decrease_tasks:
            workers[widx].send(("decreases", self._sync_payload(widx, batch_stats)))

        if engine == "label_search":
            ls_escapes: list[LabelSearchEscape] = []
            for widx in sorted(decrease_tasks):
                reply = workers[widx].recv(self.reply_timeout)
                ls_escapes.extend(reply["escapes"])
                self._merge_counters(stats, reply["counters"])
            stats.extra["decrease_escapes"] = (
                stats.extra.get("decrease_escapes", 0) + len(ls_escapes)
            )
            if ls_escapes:
                # Settle: drain the crossing heap entries unconfined on the
                # merged shared state; the pop gate re-checks improvement, so
                # unconditionally-escaped candidates that lost their race are
                # simply dropped here.
                counters = [0, 0, 0]
                drain_decrease_queues(
                    self.graph.adjacency(),
                    self.hierarchy.tau,
                    self.labels,
                    queues_from_escapes(ls_escapes),
                    counters,
                )
                self._merge_counters(stats, counters)
            return stats

        escape_seeds: dict[int, list[_Escape]] = {}
        for widx in sorted(decrease_tasks):
            reply = workers[widx].recv(self.reply_timeout)
            for root, d, mn, v, mx in reply["escapes"]:
                escape_seeds.setdefault(root, []).append((d, mn, v, mx))
            self._merge_counters(stats, reply["counters"])
            stats.extra["decrease_escapes"] = stats.extra.get(
                "decrease_escapes", 0
            ) + len(reply["escapes"])

        if escape_seeds:
            contexts = [
                (root, self.labels[root], sorted(seeds))
                for root, seeds in sorted(escape_seeds.items())
            ]
            counters = [0, 0, 0]
            shared_frontier_relax(
                self.graph.adjacency(), self.hierarchy.tau, self.labels,
                contexts, counters,
            )
            self._merge_counters(stats, counters)
        return stats

    @staticmethod
    def _merge_counters(stats: MaintenanceStats, counters: list[int]) -> None:
        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        stats.vertices_affected += counters[2]
