"""Stable Tree Labelling construction (Definition 4.6, Remark 1).

The label of a vertex ``v`` is a flat array ``L(v)`` of length ``tau(v) + 1``
whose entry ``L(v)[i]`` is the distance from ``v`` to its unique ancestor
``r`` with label index ``i``, measured **within the subgraph**
``G[Desc(r)]`` -- not within the whole graph.  Storing subgraph distances is
the paper's crucial design choice: an edge update can only affect ``L(v)[i]``
when the updated edge lies inside ``G[Desc(r)]``, which drastically limits
the number of labels any update touches.

Construction runs one rank-restricted Dijkstra per vertex ``r`` (in label
order): the search only expands vertices whose label index is larger than
``tau(r)``, which -- by the separator property of the stable tree hierarchy --
is exactly ``G[Desc(r)]``.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.algorithms.dijkstra import dijkstra_rank_restricted
from repro.graph.graph import Graph
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import LabellingError
from repro.utils.memory import MemoryEstimate

#: Sentinel for "ancestor unreachable inside its subgraph".
UNREACHABLE = math.inf


class STLLabels:
    """The distance arrays of a Stable Tree Labelling.

    ``labels[v][i]`` is the subgraph distance from ``v`` to its ancestor with
    label index ``i`` (``math.inf`` when that ancestor cannot be reached
    inside its own subgraph -- possible only on disconnected inputs).
    """

    __slots__ = ("labels",)

    def __init__(self, labels: list[list[float]]):
        self.labels = labels

    def __getitem__(self, vertex: int) -> list[float]:
        return self.labels[vertex]

    def __len__(self) -> int:
        return len(self.labels)

    def label_of(self, vertex: int) -> list[float]:
        """The distance array of ``vertex`` (alias of ``self[vertex]``)."""
        return self.labels[vertex]

    def entry(self, vertex: int, label_index: int) -> float:
        """``L(v)[i]`` with bounds checking (used by tests and tools)."""
        label = self.labels[vertex]
        if not 0 <= label_index < len(label):
            raise LabellingError(f"vertex {vertex} has no label entry for index {label_index}")
        return label[label_index]

    def num_entries(self) -> int:
        """Total number of stored distance entries (Table 4, '# Label Entries')."""
        return sum(len(label) for label in self.labels)

    def memory_estimate(self) -> MemoryEstimate:
        """Size estimate in the compact layout used for Table 4."""
        return MemoryEstimate(distance_entries=self.num_entries())

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(vertex, label_index, distance)`` over every entry."""
        for v, label in enumerate(self.labels):
            for i, d in enumerate(label):
                yield v, i, d

    def copy(self) -> "STLLabels":
        """Deep copy (used by tests that compare maintained vs rebuilt labels)."""
        return STLLabels([list(label) for label in self.labels])

    def equals(self, other: "STLLabels", tolerance: float = 1e-9) -> bool:
        """Entry-wise equality within ``tolerance`` (inf entries must match exactly)."""
        if len(self.labels) != len(other.labels):
            return False
        for mine, theirs in zip(self.labels, other.labels):
            if len(mine) != len(theirs):
                return False
            for a, b in zip(mine, theirs):
                if math.isinf(a) or math.isinf(b):
                    if a != b:
                        return False
                elif abs(a - b) > tolerance:
                    return False
        return True

    def differences(
        self, other: "STLLabels", tolerance: float = 1e-9
    ) -> list[tuple[int, int, float, float]]:
        """List of ``(vertex, index, mine, theirs)`` entries that differ (debug helper)."""
        diffs = []
        for v, (mine, theirs) in enumerate(zip(self.labels, other.labels)):
            for i, (a, b) in enumerate(zip(mine, theirs)):
                different = (a != b) if (math.isinf(a) or math.isinf(b)) else abs(a - b) > tolerance
                if different:
                    diffs.append((v, i, a, b))
        return diffs


def build_labels(graph: Graph, hierarchy: StableTreeHierarchy) -> STLLabels:
    """Construct STL labels for ``graph`` over ``hierarchy``.

    For each vertex ``r`` (processed in label order, high-level separators
    first) a rank-restricted Dijkstra computes the distances from ``r`` to
    every vertex of ``G[Desc(r)]``; those distances become the entries at
    label index ``tau(r)`` in the labels of the reached vertices.
    """
    if hierarchy.num_vertices != graph.num_vertices:
        raise LabellingError(
            f"hierarchy covers {hierarchy.num_vertices} vertices, "
            f"graph has {graph.num_vertices}"
        )
    tau = hierarchy.tau
    labels: list[list[float]] = [[UNREACHABLE] * (tau[v] + 1) for v in range(graph.num_vertices)]
    for r in hierarchy.vertices_in_label_order():
        index = tau[r]
        distances = dijkstra_rank_restricted(graph, r, tau)
        for x, d in distances.items():
            labels[x][index] = d
    return STLLabels(labels)


def rebuild_labels_for_vertex(
    graph: Graph, hierarchy: StableTreeHierarchy, labels: STLLabels, r: int
) -> None:
    """Recompute every label entry associated with ancestor ``r`` in place.

    Used by the structural-update extension (Section 8) after a sub-hierarchy
    has been repartitioned, and by tests as a trusted repair oracle.
    """
    index = hierarchy.tau[r]
    for x in hierarchy.descendants(r):
        labels[x][index] = UNREACHABLE
    for x, d in dijkstra_rank_restricted(graph, r, hierarchy.tau).items():
        labels[x][index] = d


def verify_labels(graph: Graph, hierarchy: StableTreeHierarchy, labels: STLLabels) -> list[str]:
    """Exhaustively verify labels against rank-restricted Dijkstra.

    Returns a list of human-readable problems (empty when the labelling is
    correct).  O(n * h * search) -- strictly a test/debug utility.
    """
    problems: list[str] = []
    tau = hierarchy.tau
    for r in hierarchy.vertices_in_label_order():
        index = tau[r]
        expected = dijkstra_rank_restricted(graph, r, tau)
        for x in hierarchy.descendants(r):
            want = expected.get(x, UNREACHABLE)
            got = labels[x][index]
            matches = (
                (want == got)
                if (math.isinf(want) or math.isinf(got))
                else abs(want - got) < 1e-9
            )
            if not matches:
                problems.append(f"L({x})[{index}] = {got}, expected {want} (ancestor {r})")
    return problems
