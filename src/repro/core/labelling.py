"""Stable Tree Labelling construction (Definition 4.6, Remark 1).

The label of a vertex ``v`` is a flat array ``L(v)`` of length ``tau(v) + 1``
whose entry ``L(v)[i]`` is the distance from ``v`` to its unique ancestor
``r`` with label index ``i``, measured **within the subgraph**
``G[Desc(r)]`` -- not within the whole graph.  Storing subgraph distances is
the paper's crucial design choice: an edge update can only affect ``L(v)[i]``
when the updated edge lies inside ``G[Desc(r)]``, which drastically limits
the number of labels any update touches.

Construction runs one rank-restricted Dijkstra per vertex ``r`` (in label
order): the search only expands vertices whose label index is larger than
``tau(r)``, which -- by the separator property of the stable tree hierarchy --
is exactly ``G[Desc(r)]``.

Storage layout
--------------
Entries live in **one flat buffer** laid out CSR-style: an ``array('d')`` of
C doubles (or a ``memoryview`` over a ``multiprocessing.shared_memory``
segment) plus an offsets array of ``n + 1`` positions, so row ``v`` is
``entries[offsets[v]:offsets[v + 1]]``.  ``labels[v]`` returns a cached
zero-copy ``memoryview`` over that range -- reads and writes through a row go
straight to the flat buffer, slicing any row is O(1) pointer arithmetic, and
the whole store is numpy-compatible via the buffer protocol
(``numpy.frombuffer(labels.view)`` gives a float64 array over the entries).
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Iterable, Iterator, Sequence

from repro.algorithms.dijkstra import (
    dijkstra_rank_restricted,
    dijkstra_rank_restricted_into,
)
from repro.graph.graph import Graph
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import LabellingError
from repro.utils.memory import MemoryEstimate

#: Sentinel for "ancestor unreachable inside its subgraph".
UNREACHABLE = math.inf

#: Bytes per entry in the flat store (C double).
ENTRY_BYTES = 8
#: Bytes per position in the offsets array (C signed 64-bit).
OFFSET_BYTES = 8

#: The mutable row view ``STLLabels.__getitem__`` returns.  At runtime it is
#: a ``memoryview`` over the flat entries buffer; the alias is ``Any`` because
#: typeshed models ``memoryview`` as a byte container, not a float one.
LabelRow = Any


class STLLabels:
    """The distance arrays of a Stable Tree Labelling (CSR layout).

    ``labels[v][i]`` is the subgraph distance from ``v`` to its ancestor with
    label index ``i`` (``math.inf`` when that ancestor cannot be reached
    inside its own subgraph -- possible only on disconnected inputs).

    The public surface is row-oriented and unchanged from the nested-list
    era: ``labels[v]`` / ``label_of(v)`` return the same mutable row object
    on every call (identity-stable, write-through), and ``labels.labels[v]``
    still works as the legacy accessor.  Internally all entries share one
    flat buffer indexed by a per-vertex offsets array -- see the module
    docstring for the layout, and :meth:`share_into` / :meth:`unshare` for
    moving the buffer into and out of shared memory.
    """

    __slots__ = (
        "_entries",
        "_offsets",
        "_view",
        "_rows",
        "_np_cache",
        "_epoch",
        "_pins",
        "_drained_callbacks",
    )

    def __init__(self, labels: Iterable[Iterable[float]]):
        entries = array("d")
        offsets = array("q", [0])
        for row in labels:
            entries.extend(row)
            offsets.append(len(entries))
        self._adopt(entries, offsets)

    @classmethod
    def from_flat(cls, entries: Any, offsets: Any) -> "STLLabels":
        """Adopt a flat entries buffer and its offsets array directly.

        ``entries`` may be an ``array('d')`` or a ``'d'``-format
        ``memoryview`` (e.g. over a shared-memory segment); either is adopted
        without copying.  Any other iterable is materialised into a fresh
        ``array('d')``.  Raises :class:`LabellingError` when the offsets are
        not a valid CSR index over the entries.
        """
        if not isinstance(entries, (array, memoryview)):
            entries = array("d", entries)
        if not isinstance(offsets, array) or offsets.typecode != "q":
            offsets = array("q", offsets)
        if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(entries):
            raise LabellingError(
                f"offsets must run from 0 to len(entries)={len(entries)}, "
                f"got {offsets[:1]}..{offsets[-1:]}"
            )
        if any(offsets[i] > offsets[i + 1] for i in range(len(offsets) - 1)):
            raise LabellingError("offsets must be non-decreasing")
        self = object.__new__(cls)
        self._adopt(entries, offsets)
        return self

    def _adopt(self, entries: Any, offsets: Any) -> None:
        """Point the store at ``entries``/``offsets`` and rebuild row views.

        Adopting a buffer invalidates the cached numpy views (see
        :func:`repro.core.kernels.label_arrays`) and bumps
        :attr:`buffer_epoch`: a cached ``frombuffer`` view shares memory
        with the *old* buffer, so it stays coherent under in-place entry
        writes but must never survive the buffer being replaced -- a
        resident worker reading a stale view would read an unmapped (or
        foreign) segment.
        """
        self._entries = entries
        self._offsets = offsets
        view = entries if isinstance(entries, memoryview) else memoryview(entries)
        if view.format != "d":
            raise LabellingError(f"entries buffer must hold C doubles, got format {view.format!r}")
        self._view = view
        self._rows = [view[offsets[v] : offsets[v + 1]] for v in range(len(offsets) - 1)]
        self._np_cache: Any = None
        self._epoch = getattr(self, "_epoch", -1) + 1
        self._pins: int = getattr(self, "_pins", 0)
        self._drained_callbacks: list[Any] = getattr(self, "_drained_callbacks", [])

    def _release_views(self) -> None:
        """Release every exported view over the current entries buffer."""
        # The numpy cache holds a buffer export over ``_view``; drop it
        # first or ``_view.release()`` raises BufferError.
        self._np_cache = None
        for row in self._rows:
            row.release()
        self._rows = []
        self._view.release()

    # ------------------------------------------------------------------ #
    # Row access (the surface every kernel and caller uses)
    # ------------------------------------------------------------------ #

    @property
    def labels(self) -> list[LabelRow]:
        """Per-vertex row views (legacy accessor: ``labels.labels[v][i]``)."""
        return self._rows

    def __getitem__(self, vertex: int) -> LabelRow:
        return self._rows[vertex]

    def __len__(self) -> int:
        return len(self._rows)

    def label_of(self, vertex: int) -> LabelRow:
        """The distance array of ``vertex`` (alias of ``self[vertex]``)."""
        return self._rows[vertex]

    def entry(self, vertex: int, label_index: int) -> float:
        """``L(v)[i]`` with bounds checking (used by tests and tools)."""
        label = self._rows[vertex]
        if not 0 <= label_index < len(label):
            raise LabellingError(f"vertex {vertex} has no label entry for index {label_index}")
        return label[label_index]

    def set_row(self, vertex: int, values: Sequence[float]) -> None:
        """Overwrite row ``vertex`` in place; length must match exactly."""
        row = self._rows[vertex]
        if len(values) != len(row):
            raise LabellingError(
                f"row {vertex} holds {len(row)} entries, cannot assign {len(values)}"
            )
        row[:] = array("d", values)

    # ------------------------------------------------------------------ #
    # Flat-buffer access
    # ------------------------------------------------------------------ #

    @property
    def view(self) -> memoryview:
        """``'d'``-format view over the flat entries buffer (all rows)."""
        return self._view

    @property
    def offsets(self) -> Any:
        """CSR offsets: row ``v`` is ``view[offsets[v]:offsets[v + 1]]``."""
        return self._offsets

    @property
    def is_shared(self) -> bool:
        """Whether the entries live in an adopted external buffer (e.g. shm)."""
        return isinstance(self._entries, memoryview)

    @property
    def buffer_epoch(self) -> int:
        """Generation counter of the underlying entries buffer.

        Bumped every time the store adopts a new buffer (construction,
        :meth:`share_into`, :meth:`unshare`) -- in-place entry writes do
        *not* bump it, because views over the buffer stay coherent through
        them.  :func:`repro.core.kernels.label_arrays` keys its cached
        ndarray views on this: any adoption drops the cache, so a stale view
        over a replaced (possibly unmapped shared-memory) buffer can never
        be served.
        """
        return self._epoch

    def num_entries(self) -> int:
        """Total number of stored distance entries (Table 4, '# Label Entries')."""
        return self._offsets[-1]

    def memory_estimate(self) -> MemoryEstimate:
        """Size estimate in the compact layout used for Table 4."""
        return MemoryEstimate(distance_entries=self.num_entries())

    def store_bytes(self) -> int:
        """Actual bytes held by the flat store (entries plus offsets)."""
        return self.num_entries() * ENTRY_BYTES + len(self._offsets) * OFFSET_BYTES

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(vertex, label_index, distance)`` over every entry."""
        for v, label in enumerate(self._rows):
            for i, d in enumerate(label):
                yield v, i, d

    def copy(self) -> "STLLabels":
        """Deep copy (used by tests that compare maintained vs rebuilt labels)."""
        entries = array("d")
        entries.frombytes(self._view.tobytes())
        return STLLabels.from_flat(entries, array("q", self._offsets))

    def snapshot_store(self) -> "STLLabels":
        """An independent copy of the entries sharing this store's offsets.

        The serving layer's shadow-copy step: one ``memcpy`` of the flat
        entries buffer, with the offsets array *shared* between the two
        stores -- offsets are fixed by the hierarchy and treated as
        immutable everywhere, so the snapshot saves ``n + 1`` positions of
        allocation and the shape comparison in :meth:`load_from` stays an
        O(1) identity hit.  True copy-on-*write* (sharing entries until the
        first mutation) is not possible here: engines write through raw
        ``memoryview`` rows with no hook to intercept, so the copy happens
        eagerly at the swap boundary instead (see
        :class:`repro.core.snapshot.LabelSnapshot`).
        """
        entries = array("d")
        entries.frombytes(self._view.tobytes())
        return STLLabels.from_flat(entries, self._offsets)

    # ------------------------------------------------------------------ #
    # Reader pinning (epoch-based reclamation support)
    # ------------------------------------------------------------------ #

    @property
    def pinned(self) -> bool:
        """Whether any reader currently holds a pin on this store."""
        return self._pins > 0

    @property
    def pin_count(self) -> int:
        """Number of outstanding reader pins."""
        return self._pins

    def pin(self) -> None:
        """Register an in-flight reader of this store.

        Used by :class:`repro.core.snapshot.LabelSnapshot` readers so that
        teardown paths (:meth:`release_views`-style buffer releases,
        :meth:`repro.core.stl.StableTreeLabelling.close`) can defer until
        every reader finished -- the epoch-reclamation handshake of the
        serving layer.  Pin bookkeeping is not thread-safe by itself; the
        service confines it to the event-loop thread.
        """
        self._pins += 1

    def unpin(self) -> None:
        """Release one reader pin; fires deferred callbacks on the last one."""
        if self._pins <= 0:
            raise LabellingError("unpin() without a matching pin()")
        self._pins -= 1
        if self._pins == 0 and self._drained_callbacks:
            callbacks, self._drained_callbacks = self._drained_callbacks, []
            for callback in callbacks:
                callback()

    def defer_until_drained(self, callback: Any) -> None:
        """Run ``callback`` once no reader pins remain (immediately if none).

        Callbacks fire at most once, in registration order, from within the
        :meth:`unpin` call that drops the last pin.
        """
        if self._pins == 0:
            callback()
        else:
            self._drained_callbacks.append(callback)

    def load_from(self, other: "STLLabels") -> None:
        """Copy every entry from ``other`` through the live buffer.

        Engines -- and, when shared, resident worker processes -- hold
        references to this object and its memory, so an in-place rebuild must
        overwrite the buffer rather than replace it.  Shapes must match.
        """
        if self._offsets != other._offsets:
            raise LabellingError("label shapes differ; cannot load in place")
        self._view[:] = other._view

    # ------------------------------------------------------------------ #
    # Shared-memory residency
    # ------------------------------------------------------------------ #

    def share_into(self, target: memoryview) -> None:
        """Move the entries into ``target`` (a shared-memory mapping).

        Copies the current values into ``target`` and repoints every row view
        at it; afterwards writes through this object are visible to every
        process mapping the same segment.  ``target`` must be a writable
        ``'d'``-format view with exactly ``num_entries()`` items (slice a
        page-rounded segment down first: ``shm.buf[:nbytes].cast('d')``).
        """
        if target.format != "d" or target.readonly or len(target) != self.num_entries():
            raise LabellingError(
                f"target must be a writable 'd' view of {self.num_entries()} items"
            )
        target[:] = self._view
        self._release_views()
        self._adopt(target, self._offsets)

    def unshare(self) -> None:
        """Detach from a shared buffer back onto a private ``array('d')``.

        Copies the current values out, then releases every exported view over
        the shared buffer so the caller can close the mapping.  No-op when the
        store is already private.
        """
        if not self.is_shared:
            return
        entries = array("d")
        entries.frombytes(self._view.tobytes())
        self._release_views()
        self._adopt(entries, self._offsets)

    def release_views(self) -> None:
        """Release every exported view, leaving the object unusable.

        Worker processes call this on a shared-buffer store before closing
        their mapping (an exported ``memoryview`` would make ``shm.close()``
        raise ``BufferError``).
        """
        self._release_views()

    # ------------------------------------------------------------------ #
    # Comparison
    # ------------------------------------------------------------------ #

    def equals(self, other: "STLLabels", tolerance: float = 1e-9) -> bool:
        """Entry-wise equality within ``tolerance`` (inf entries must match exactly).

        Stores with different vertex counts or row lengths are unequal --
        every entry one side is missing counts as a mismatch, mirroring
        :meth:`differences`.
        """
        if self._offsets != other._offsets:
            return False
        for a, b in zip(self._view, other._view):
            if math.isinf(a) or math.isinf(b):
                if a != b:
                    return False
            elif abs(a - b) > tolerance:
                return False
        return True

    def differences(
        self, other: "STLLabels", tolerance: float = 1e-9
    ) -> list[tuple[int, int, float, float]]:
        """List of ``(vertex, index, mine, theirs)`` entries that differ.

        Rows are compared out to ``max(len)`` (and vertex sets out to the
        larger store): an entry present on one side only is reported with
        ``math.nan`` standing in for the missing value and always counts as a
        difference.  A ``zip``-based scan would silently truncate exactly the
        rows whose length changed -- the diffs most worth reporting.
        """
        diffs = []
        mine_rows = self._rows
        their_rows = other._rows
        for v in range(max(len(mine_rows), len(their_rows))):
            mine = mine_rows[v] if v < len(mine_rows) else ()
            theirs = their_rows[v] if v < len(their_rows) else ()
            for i in range(max(len(mine), len(theirs))):
                a = mine[i] if i < len(mine) else math.nan
                b = theirs[i] if i < len(theirs) else math.nan
                if math.isnan(a) or math.isnan(b):
                    different = True
                elif math.isinf(a) or math.isinf(b):
                    different = a != b
                else:
                    different = abs(a - b) > tolerance
                if different:
                    diffs.append((v, i, a, b))
        return diffs


def build_labels(graph: Graph, hierarchy: StableTreeHierarchy) -> STLLabels:
    """Construct STL labels for ``graph`` over ``hierarchy``.

    For each vertex ``r`` (processed in label order, high-level separators
    first) a rank-restricted Dijkstra computes the distances from ``r`` to
    every vertex of ``G[Desc(r)]``; those distances become the entries at
    label index ``tau(r)`` in the labels of the reached vertices.  Entries
    are written straight into the flat CSR buffer *at settle time*
    (:func:`~repro.algorithms.dijkstra.dijkstra_rank_restricted_into`) --
    the search never materialises a per-root distance dict that would then
    be iterated a second time, which cuts measurable per-root overhead at
    paper scale (see BENCH_pr10.json for the serial-path numbers).
    """
    if hierarchy.num_vertices != graph.num_vertices:
        raise LabellingError(
            f"hierarchy covers {hierarchy.num_vertices} vertices, "
            f"graph has {graph.num_vertices}"
        )
    tau = hierarchy.tau
    offsets = label_offsets(tau)
    entries = array("d", [UNREACHABLE]) * offsets[-1]
    adjacency = graph.adjacency()
    for r in hierarchy.vertices_in_label_order():
        dijkstra_rank_restricted_into(adjacency, r, tau, entries, offsets, tau[r])
    return STLLabels.from_flat(entries, offsets)


def label_offsets(tau: Sequence[int]) -> array:
    """The CSR offsets array implied by ``tau``: row ``v`` holds ``tau[v] + 1`` entries.

    Shared by the serial build above and the parallel builder
    (:mod:`repro.core.construction`), which pre-sizes its shared-memory
    segment from ``offsets[-1]`` before any worker starts.
    """
    offsets = array("q", [0])
    total = 0
    for t in tau:
        total += t + 1
        offsets.append(total)
    return offsets


def rebuild_labels_for_vertex(
    graph: Graph, hierarchy: StableTreeHierarchy, labels: STLLabels, r: int
) -> None:
    """Recompute every label entry associated with ancestor ``r`` in place.

    Used by the structural-update extension (Section 8) after a sub-hierarchy
    has been repartitioned, and by tests as a trusted repair oracle.
    """
    index = hierarchy.tau[r]
    for x in hierarchy.descendants(r):
        labels[x][index] = UNREACHABLE
    for x, d in dijkstra_rank_restricted(graph, r, hierarchy.tau).items():
        labels[x][index] = d


def verify_labels(graph: Graph, hierarchy: StableTreeHierarchy, labels: STLLabels) -> list[str]:
    """Exhaustively verify labels against rank-restricted Dijkstra.

    Returns a list of human-readable problems (empty when the labelling is
    correct).  O(n * h * search) -- strictly a test/debug utility.
    """
    problems: list[str] = []
    tau = hierarchy.tau
    for r in hierarchy.vertices_in_label_order():
        index = tau[r]
        expected = dijkstra_rank_restricted(graph, r, tau)
        for x in hierarchy.descendants(r):
            want = expected.get(x, UNREACHABLE)
            got = labels[x][index]
            matches = (
                (want == got)
                if (math.isinf(want) or math.isinf(got))
                else abs(want - got) < 1e-9
            )
            if not matches:
                problems.append(f"L({x})[{index}] = {got}, expected {want} (ancestor {r})")
    return problems
