"""Directed-road-network extension (Section 8 of the paper).

The paper notes that STL extends to directed road networks by storing, for
every vertex, distances to its ancestors in *both* directions (forward and
backward searches over the same stable tree hierarchy).  This module provides
that extension for static queries:

* the hierarchy is built on the underlying undirected graph (structure only),
* two label sets are constructed with rank-restricted Dijkstra over the
  out-edges and the in-edges respectively,
* a query ``s -> t`` combines the forward label of ``s`` with the backward
  label of ``t``.

Dynamic maintenance of the directed variant follows the same algorithms run
per direction; it is left as the straightforward composition of the
undirected machinery and is exercised only statically in the test suite
(mirroring the paper, whose evaluation is on undirected networks).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Iterable, Sequence

from repro.graph.graph import Graph
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import GraphError

UNREACHABLE = math.inf


class DirectedGraph:
    """Minimal directed weighted graph with dense integer vertex ids."""

    def __init__(self, num_vertices: int):
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._out: list[list[tuple[int, float]]] = [[] for _ in range(num_vertices)]
        self._in: list[list[tuple[int, float]]] = [[] for _ in range(num_vertices)]
        self.num_edges = 0

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add the directed edge ``u -> v``."""
        if u == v:
            raise GraphError("self loops are not allowed")
        weight = float(weight)
        if weight < 0 or math.isnan(weight):
            raise GraphError(f"invalid weight {weight!r}")
        self._out[u].append((v, weight))
        self._in[v].append((u, weight))
        self.num_edges += 1

    def out_neighbors(self, v: int) -> list[tuple[int, float]]:
        return self._out[v]

    def in_neighbors(self, v: int) -> list[tuple[int, float]]:
        return self._in[v]

    def to_undirected(self) -> Graph:
        """Underlying undirected graph (minimum weight per direction pair)."""
        graph = Graph(self.num_vertices)
        best: dict[tuple[int, int], float] = {}
        for u in range(self.num_vertices):
            for v, w in self._out[u]:
                key = (u, v) if u < v else (v, u)
                best[key] = min(w, best.get(key, UNREACHABLE))
        for (u, v), w in best.items():
            graph.add_edge(u, v, w)
        return graph

    @classmethod
    def from_undirected(
        cls, graph: Graph, asymmetry: Iterable[tuple[int, int, float]] = ()
    ) -> "DirectedGraph":
        """Directed version of an undirected graph, with optional per-arc overrides."""
        directed = cls(graph.num_vertices)
        for u, v, w in graph.edges():
            directed.add_edge(u, v, w)
            directed.add_edge(v, u, w)
        for u, v, w in asymmetry:
            directed.add_edge(u, v, w)
        return directed


class DirectedSTL:
    """Stable Tree Labelling for directed road networks (forward + backward labels)."""

    def __init__(
        self,
        graph: DirectedGraph,
        hierarchy: StableTreeHierarchy,
        forward_labels: list[list[float]],
        backward_labels: list[list[float]],
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.forward_labels = forward_labels
        self.backward_labels = backward_labels

    @classmethod
    def build(cls, graph: DirectedGraph, options: HierarchyOptions | None = None) -> "DirectedSTL":
        """Build a directed STL: one hierarchy, two label sets."""
        undirected = graph.to_undirected()
        hierarchy = build_hierarchy(undirected, options)
        tau = hierarchy.tau
        n = graph.num_vertices
        forward = [[UNREACHABLE] * (tau[v] + 1) for v in range(n)]
        backward = [[UNREACHABLE] * (tau[v] + 1) for v in range(n)]
        for r in hierarchy.vertices_in_label_order():
            index = tau[r]
            # Forward label of v stores d(v -> r): search backwards from r.
            for x, d in _restricted_search(graph, r, tau, forward_direction=False).items():
                forward[x][index] = d
            # Backward label of v stores d(r -> v): search forwards from r.
            for x, d in _restricted_search(graph, r, tau, forward_direction=True).items():
                backward[x][index] = d
        return cls(graph, hierarchy, forward, backward)

    def query(self, s: int, t: int) -> float:
        """Shortest directed distance ``s -> t``."""
        if s == t:
            return 0.0
        prefix = self.hierarchy.num_common_ancestors(s, t)
        label_s = self.forward_labels[s]
        label_t = self.backward_labels[t]
        best = UNREACHABLE
        for i in range(prefix):
            candidate = label_s[i] + label_t[i]
            if candidate < best:
                best = candidate
        return best

    def num_label_entries(self) -> int:
        """Total stored entries across both directions."""
        return sum(len(l) for l in self.forward_labels) + sum(
            len(l) for l in self.backward_labels
        )


def _restricted_search(
    graph: DirectedGraph,
    source: int,
    rank: Sequence[int],
    forward_direction: bool,
) -> dict[int, float]:
    """Rank-restricted Dijkstra over out-edges (forward) or in-edges (backward)."""
    threshold = rank[source]
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    neighbors = graph.out_neighbors if forward_direction else graph.in_neighbors
    while heap:
        d, v = heappop(heap)
        if d > dist.get(v, UNREACHABLE):
            continue
        for nbr, weight in neighbors(v):
            if rank[nbr] < threshold or math.isinf(weight):
                continue
            nd = d + weight
            if nd < dist.get(nbr, UNREACHABLE):
                dist[nbr] = nd
                heappush(heap, (nd, nbr))
    return dist
