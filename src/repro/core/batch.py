"""Batched Pareto Search maintenance (the paper's Figure 10 batch regime).

The per-update Pareto Search algorithms (:mod:`repro.core.pareto_search`) run
two interval searches per update.  For the batch workloads of the evaluation
(Figure 10: groups of hundreds of updates) that wastes work twice over:

* overlapping updates re-explore the same regions -- the affected
  ``(vertex, level)`` sets of nearby updates largely coincide, and
* every update pays its own repair phase even though the repairs are
  Dijkstra searches over the *same* labels.

:class:`BatchedParetoEngine` lifts the sharing that Label Search's per-index
queues already exploit (see :mod:`repro.core.label_search`) into the
update-centric Pareto structure, for a batch of **coalesced** updates (one
net update per edge, see :meth:`repro.graph.updates.UpdateBatch.coalesce`):

* **Increases** -- one shared mark phase runs every endpoint search on the
  unmodified graph and merges the affected ``(vertex, level)`` sets,
  accumulating per-entry bumps (the sum of the deltas of every update whose
  old shortest paths cross the entry -- a valid upper bound, since keeping
  any old shortest path costs its old length plus the deltas of the updated
  edges it uses).  All new weights are then applied at once and a *single*
  combined bump-and-repair (Algorithm 5) restores exact distances.
* **Decreases** -- all new weights are applied first, then every endpoint
  search runs on one *shared frontier*: a single priority queue interleaves
  the searches (each keeps its own ``level()`` pruning map, so per-context
  pops still arrive in nondecreasing distance order), and because decrease
  repairs are monotone toward the true distances, a repair made by one
  search immediately prunes the relaxations of every other.

Correctness of the decrease pass on the fully-decreased graph: a label entry
whose distance drops has a new shortest path that can be decomposed at its
decreased edge *closest to the ancestor*, ``v .. x -> y .. anc``, where the
suffix avoids decreased edges; the search context rooted at ``y`` relaxes the
entry with ``d(v .. x -> y) + L(y)[i]``, and ``L(y)[i]`` never exceeds the
suffix length (the suffix is old-valid) nor undershoots the true new
distance.  Tests verify both passes entry-wise against from-scratch rebuilds.

:class:`BatchPolicy` additionally decides *which* processing strategy a batch
deserves.  It is a four-way crossover (plus the rebuild fallback):

* tiny batches run through the historical **per-update loop** -- the batch
  machinery has fixed costs that one or two updates never amortise,
* moderate batches run through the shared-phase **batched** engine above,
* large batches whose updates spread across the partition regions of
  :class:`repro.core.shard.ShardPlanner` run through the **thread-sharded**
  :class:`repro.core.shard.ShardedBatchEngine`,
* very large well-spread batches (past ``process_min_updates``) run through
  the **process-sharded** :class:`repro.core.parallel.ProcessShardBackend`,
  whose per-batch shipping overhead only amortises when there is enough
  repair work per shard to keep the worker processes busy,
* and past a configurable fraction of affected edges a from-scratch label
  **rebuild** (the Figure 10 baseline) is cheaper than any maintenance.

:meth:`repro.core.stl.StableTreeLabelling.apply_batch` consults the policy
and dispatches accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

from repro.core.label_search import MaintenanceStats, _orient
from repro.core.labelling import STLLabels
from repro.core.pareto_search import ParetoSearchIncrease
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateKind
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import ConfigError, UpdateError


#: The engine names ``apply_batch(engine=...)`` accepts (sorted for the
#: error message of :func:`normalize_engine`).
ENGINE_NAMES = ("label_search", "pareto")


def normalize_engine(engine: str | None) -> str | None:
    """Map an ``apply_batch(engine=...)`` argument to an engine name.

    ``None`` means "let :meth:`BatchPolicy.engine_for` (or the index's
    maintenance mode) decide" and is returned unchanged; the explicit names
    ``"pareto"`` / ``"label_search"`` select a batch engine directly.
    Anything else raises :class:`repro.utils.errors.ConfigError` (a
    :class:`ValueError` subclass) naming the allowed set.
    """
    if engine is None:
        return None
    if isinstance(engine, str) and engine in ENGINE_NAMES:
        return engine
    allowed = ", ".join(repr(name) for name in ENGINE_NAMES)
    raise ConfigError(
        f"unknown batch engine {engine!r}; allowed engines: {allowed} (or None)"
    )


@dataclass
class BatchPolicy:
    """Knobs governing how a batch of updates is processed.

    The policy implements a four-way crossover keyed on the *net* (coalesced)
    batch size, refined by the shard balance of the planned partition:

    ===========================  =====================================
    net batch size               strategy
    ===========================  =====================================
    ``< batched_min_updates``    per-update loop (``apply_update``)
    moderate                     shared-phase :class:`BatchedParetoEngine`
    ``>= parallel_min_updates``  thread-sharded worker pool, *if* the shard
                                 plan keeps at least ``parallel_min_balance``
                                 of the updates out of the residual shard
    ``>= process_min_updates``   process-sharded pool with partitioned label
                                 ownership (same balance gate)
    ===========================  =====================================

    with the pre-existing rebuild fallback taking precedence over all four.

    Attributes
    ----------
    rebuild_min_updates:
        Never fall back to a rebuild for batches with fewer net updates than
        this; small batches are always cheaper to maintain incrementally.
    rebuild_fraction:
        Fall back to a from-scratch label rebuild when the number of net
        (coalesced) updates exceeds this fraction of the graph's edges.
        ``None`` disables the fallback entirely (the engine always runs).
    batched_min_updates:
        Below this many net updates the batch machinery (precondition scan,
        kind partition, merged phases) costs more than it shares; the batch
        is processed through the plain per-update loop instead.
    parallel_min_updates:
        From this many net updates onward the sharded-parallel engine is
        *considered*: a shard plan is computed and used when it is balanced
        enough (see ``parallel_min_balance``).  ``None`` disables the
        sharded path from the policy side (``parallel=True`` still forces it).
    parallel_min_balance:
        Minimum fraction of the net updates that must land in per-region
        shard sub-batches (rather than the serial residual shard) for the
        sharded engine to be worth its pool/merge overhead.
    process_min_updates:
        From this many net updates onward a sharded batch is routed to the
        process-pool backend (:mod:`repro.core.parallel`) instead of the
        thread pool.  The default of 384 (twice ``parallel_min_updates``)
        comes from the shipping calibration
        (:func:`repro.core.calibration.calibrate_shipping`, run by
        ``benchmarks/perf_smoke.py`` on the NY x0.5 smoke graph): the old
        slice-shipping protocol moved ~380 KB in ~2.4-3.2 ms per batch
        *independent of batch size*, which is why the backend used to be
        opt-in (``None``); the resident delta protocol ships 1.9-20 KB in
        0.04-0.3 ms (20-200x fewer bytes, 11-59x less time), clearing the
        10-percent-of-processing-time overhead bar from ~48-update batches up.
        Shipping therefore no longer gates the crossover; the remaining
        per-batch cost is the two serial settlement passes, so the default
        leaves the mid range to the thread engine and engages the process
        pool only where there is twice the repair work the thread gate
        already demands.  ``None`` disables the fourth leg;
        ``parallel="process"`` always forces it regardless.
    label_search_max_updates:
        The engine half of the joint engine x backend crossover
        (:meth:`engine_for`): batches up to this many net updates run the
        batched Label Search engine
        (:class:`repro.core.batch_label_search.BatchedLabelSearchEngine`),
        larger ones the batched Pareto engine.  Calibrated like
        ``process_min_updates``, via
        :func:`repro.core.calibration.calibrate_engines` on the NY x0.5
        smoke graph (run by ``benchmarks/perf_smoke.py``): Label Search's
        per-index queues won every size measured there -- 1.4-2.7x faster
        on coalesced batches of 23-311 net updates (raw sizes 24-384), the
        widening gap tracking how its one-drain-per-index cost saturates
        while Pareto pays per update.  The default of 384 routes the whole
        measured range to Label Search and leaves the unmeasured beyond to
        Pareto's update-centric searches, whose shared frontier amortises
        better as updates begin to overlap.  ``None`` pins the crossover to
        Pareto (the pre-PR-7 behaviour); an explicit
        ``apply_batch(engine=...)`` always wins over the crossover.
    max_workers:
        Worker-pool size for the sharded engines; ``None`` lets each engine
        size its pool to ``min(#shards, os.cpu_count())``.
    """

    rebuild_min_updates: int = 64
    rebuild_fraction: float | None = 0.25
    batched_min_updates: int = 3
    parallel_min_updates: int | None = 192
    parallel_min_balance: float = 0.5
    process_min_updates: int | None = 384
    label_search_max_updates: int | None = 384
    max_workers: int | None = None

    def should_rebuild(self, num_net_updates: int, num_edges: int) -> bool:
        """Whether a batch of ``num_net_updates`` warrants a full rebuild."""
        if self.rebuild_fraction is None:
            return False
        if num_net_updates < self.rebuild_min_updates:
            return False
        return num_net_updates > self.rebuild_fraction * max(1, num_edges)

    def should_loop(self, num_net_updates: int) -> bool:
        """Whether the batch is too small for the batch machinery."""
        return num_net_updates < self.batched_min_updates

    def should_shard(self, num_net_updates: int) -> bool:
        """Whether the batch is large enough to consider the sharded engine."""
        if self.parallel_min_updates is None:
            return False
        return num_net_updates >= self.parallel_min_updates

    def backend_for(self, num_net_updates: int) -> str:
        """Which sharded backend a batch of this size deserves.

        Only consulted after :meth:`should_shard` (and the plan-balance
        gate) already said yes; the answer is the fourth leg of the
        crossover: ``"process"`` past ``process_min_updates``, else
        ``"thread"``.
        """
        if self.process_min_updates is not None and num_net_updates >= self.process_min_updates:
            return "process"
        return "thread"

    def engine_for(self, num_net_updates: int) -> str:
        """Which batch engine a batch of this size deserves.

        The engine half of the joint crossover: ``"label_search"`` up to
        ``label_search_max_updates`` net updates, ``"pareto"`` beyond (and
        always when the threshold is ``None``).  Only consulted when the
        caller passed neither ``engine=...`` nor a Label Search maintenance
        mode; orthogonal to :meth:`backend_for` -- either engine runs on any
        backend.
        """
        if (
            self.label_search_max_updates is not None
            and num_net_updates <= self.label_search_max_updates
        ):
            return "label_search"
        return "pareto"

    def accepts_plan(self, populated_shards: int, balance: float) -> bool:
        """Whether a computed shard plan is balanced enough to run.

        ``populated_shards`` is the number of non-empty per-region
        sub-batches and ``balance`` the fraction of net updates they hold
        (the rest goes to the serial residual shard).
        """
        return populated_shards >= 2 and balance >= self.parallel_min_balance


def validate_coalesced(graph: Graph, updates: Sequence[EdgeUpdate]) -> None:
    """Enforce the coalesced-batch precondition shared by the batch engines.

    Raises :class:`UpdateError` if an edge appears more than once (the
    kind-partitioned processing would silently reorder such a chain -- the
    very corruption coalescing exists to fix) or if an update's
    ``old_weight`` does not match the live graph (a stale ``old_weight``
    mis-scopes the mark phase and mis-classifies the net kind, again
    silently).  :meth:`repro.graph.updates.UpdateBatch.coalesce` establishes
    both preconditions.
    """
    seen: set[tuple[int, int]] = set()
    for update in updates:
        key = (update.u, update.v) if update.u < update.v else (update.v, update.u)
        if key in seen:
            raise UpdateError(
                f"a coalesced batch is required, but edge ({update.u}, "
                f"{update.v}) appears more than once; fold the batch with "
                "UpdateBatch.coalesce first"
            )
        seen.add(key)
        current = graph.weight(update.u, update.v)
        if current != update.old_weight:
            raise UpdateError(
                f"edge ({update.u}, {update.v}) has weight {current}, "
                f"update expected {update.old_weight}"
            )


def shared_frontier_relax(
    adjacency,
    tau,
    labels,
    contexts,
    counters: list[int],
    owned: set[int] | None = None,
    escapes: list[tuple[int, float, int, int, int]] | None = None,
) -> None:
    """Shared-frontier decrease relaxation over explicit per-root contexts.

    The single implementation behind :func:`shared_frontier_decrease`
    (contexts built from the decreased edges, unconfined) and the process
    shard backend's confined worker frontiers plus escape settlement
    (:mod:`repro.core.parallel`).  ``contexts`` is a sequence of
    ``(root, root_label, seeds)`` with seeds ``(distance, interval_min,
    vertex, interval_max)``; all contexts share one frontier heap, each pop
    relaxing against its own root label and ``level()`` map, so repairs
    written by one context prune the candidates of every other.
    Per-context pops still arrive in nondecreasing distance order (a
    subsequence of a globally distance-ordered heap), which keeps the
    ``level(v)`` pruning safe.

    ``counters`` is ``[heap_pushes, labels_changed, vertices_affected]``;
    ``adjacency``/``labels`` only need ``[]`` lookup.  With ``owned``
    given, frontier pushes leaving the owned set are recorded as
    ``(root, *entry)`` escapes instead of followed.
    """
    roots = [root for root, _, _ in contexts]
    root_labels = [label_root for _, label_root, _ in contexts]
    level_maps: list[dict[int, int]] = [{} for _ in contexts]
    heap: list[tuple[float, int, int, int, int]] = []
    for ctx, (_, _, seeds) in enumerate(contexts):
        for d, active_min, v, active_max in seeds:
            heappush(heap, (d, active_min, ctx, v, active_max))
            counters[0] += 1

    while heap:
        d, active_min, ctx, v, active_max = heappop(heap)
        level = level_maps[ctx]
        active_max = min(active_max, tau[v])
        active_min = max(active_min, level.get(v, 0))
        if active_min > active_max:
            continue
        level[v] = active_max + 1
        counters[2] += 1

        label_root = root_labels[ctx]
        label_v = labels[v]
        new_min = -1
        new_max = -1
        for i in range(active_min, active_max + 1):
            root_dist = label_root[i]
            if math.isinf(root_dist):
                continue
            candidate = d + root_dist
            if candidate < label_v[i]:
                label_v[i] = candidate
                counters[1] += 1
                if new_min == -1:
                    new_min = i
                new_max = i

        if new_min != -1:
            for nbr, weight in adjacency[v]:
                if math.isinf(weight) or tau[nbr] < new_min:
                    continue
                if owned is not None and nbr not in owned:
                    if escapes is not None:
                        escapes.append((roots[ctx], d + weight, new_min, nbr, new_max))
                    continue
                heappush(heap, (d + weight, new_min, ctx, nbr, new_max))
                counters[0] += 1


def shared_frontier_decrease(
    graph: Graph,
    hierarchy: StableTreeHierarchy,
    labels: STLLabels,
    decreases: Sequence[EdgeUpdate],
    apply_weights: bool = True,
) -> MaintenanceStats:
    """All decrease endpoint searches on one shared frontier.

    This is the decrease half of :class:`BatchedParetoEngine`, exposed as a
    function so the sharded engine (:mod:`repro.core.shard`) can reuse it.
    ``apply_weights=False`` skips the weight application for callers that
    already put the new weights in place.  The search body is the shared
    :func:`shared_frontier_relax` kernel with one context per
    ``(root, start)`` endpoint pair.

    Correctness requires the **pre-decrease label state**: the decomposition
    argument in the module docstring leans on every still-unrepaired entry
    being realised by an old-valid path.  The pass is *not* exact from
    half-repaired intermediate states -- propagation is improvement-gated
    (no push without a label improvement), so an entry left stale behind
    already-exact neighbours is never reached.  Callers must therefore run
    this exactly once per batch of decreases, on labels that are exact for
    the pre-decrease graph.
    """
    stats = MaintenanceStats()
    tau = hierarchy.tau

    if apply_weights:
        for update in decreases:
            graph.set_weight(update.u, update.v, update.new_weight)

    contexts: list[tuple[int, list[float], list[tuple[float, int, int, int]]]] = []
    for update in decreases:
        a, b = _orient(update, tau)
        phi = update.new_weight
        rmin = min(tau[a], tau[b])
        for root, start in ((a, b), (b, a)):
            contexts.append((root, labels[root], [(phi, 0, start, rmin)]))

    counters = [0, 0, 0]
    shared_frontier_relax(graph.adjacency(), tau, labels, contexts, counters)
    stats.heap_pushes += counters[0]
    stats.labels_changed += counters[1]
    stats.vertices_affected += counters[2]
    return stats


class BatchedParetoEngine:
    """Shared-phase Pareto Search over a coalesced batch of updates."""

    def __init__(self, graph: Graph, hierarchy: StableTreeHierarchy, labels: STLLabels):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels
        # Reuses the per-update engine's mark and bump-and-repair phases; the
        # batching is in how their inputs are merged, not in the searches.
        self._increase = ParetoSearchIncrease(graph, hierarchy, labels)

    def apply(self, updates: Sequence[EdgeUpdate]) -> MaintenanceStats:
        """Apply one coalesced batch (at most one net update per edge).

        Net increases are processed first (their mark phase must see the
        pre-batch weights), then net decreases on the increased graph; the
        two groups touch disjoint edges, so the decreases' recorded old
        weights stay valid.  NEUTRAL net updates change nothing but are
        counted as processed.

        Raises :class:`UpdateError` if an edge appears more than once (the
        kind-partitioned processing below would silently reorder such a
        chain -- the very corruption coalescing exists to fix) or if an
        update's ``old_weight`` does not match the live graph (a stale
        ``old_weight`` mis-scopes the mark phase and mis-classifies the net
        kind, again silently).  ``UpdateBatch.coalesce`` establishes both
        preconditions.
        """
        validate_coalesced(self.graph, updates)
        increases = [u for u in updates if u.kind is UpdateKind.INCREASE]
        decreases = [u for u in updates if u.kind is UpdateKind.DECREASE]
        stats = MaintenanceStats(updates_processed=len(updates))
        if increases:
            stats.merge(self._apply_increases(increases))
        if decreases:
            stats.merge(self._apply_decreases(decreases))
        return stats

    # ------------------------------------------------------------------ #
    # Increases: merged mark phase + one combined bump-and-repair
    # ------------------------------------------------------------------ #

    def _apply_increases(self, increases: Sequence[EdgeUpdate]) -> MaintenanceStats:
        stats = MaintenanceStats()
        tau = self.hierarchy.tau

        # Mark phase: every endpoint search runs on the *old* graph and old
        # labels; per (vertex, level) the deltas of all marking updates
        # accumulate into one upper-bound bump.
        affected: dict[int, dict[int, float]] = {}
        for update in increases:
            a, b = _orient(update, tau)
            delta = update.new_weight - update.old_weight
            marks: dict[int, set[int]] = {}
            stats.merge(self._increase.mark_affected(a, b, update.old_weight, marks))
            stats.merge(self._increase.mark_affected(b, a, update.old_weight, marks))
            for v, levels in marks.items():
                row = affected.setdefault(v, {})
                for i in levels:
                    row[i] = row.get(i, 0.0) + delta
        stats.vertices_affected += len(affected)

        for update in increases:
            self.graph.set_weight(update.u, update.v, update.new_weight)
        if affected:
            stats.merge(self._increase.bump_and_repair(affected))
        return stats

    # ------------------------------------------------------------------ #
    # Decreases: all endpoint searches on one shared frontier
    # ------------------------------------------------------------------ #

    def _apply_decreases(self, decreases: Sequence[EdgeUpdate]) -> MaintenanceStats:
        return shared_frontier_decrease(self.graph, self.hierarchy, self.labels, decreases)
