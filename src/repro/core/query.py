"""Distance queries over a Stable Tree Labelling (Equation 3 of the paper).

A query ``Q(s, t)`` scans the common-ancestor prefix of the two labels and
returns the minimum of ``L(s)[i] + L(t)[i]``.  The number of entries to scan
is obtained in O(1) from the partition bitstrings (the level of the lowest
common ancestor), exactly as in Section 4 of the paper; the entries scanned
are consecutive in both arrays, which is what makes the query cache-friendly.

With the CSR label store the two prefixes are located by pure offset
arithmetic on the flat entries buffer -- ``view[offsets[v] : offsets[v] +
prefix]`` -- so a query touches two contiguous runs of C doubles and never
materialises a row object.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core import kernels
from repro.core.labelling import STLLabels
from repro.hierarchy.tree import StableTreeHierarchy

UNREACHABLE = math.inf


def _prefix_bases(
    hierarchy: StableTreeHierarchy,
    labels: STLLabels,
    s: int,
    t: int,
) -> tuple[int, int, int]:
    """The shared offset/prefix scan prologue of every scalar query.

    Validates the ids, then returns ``(prefix, base_s, base_t)``: the number
    of common-ancestor entries to scan and the two rows' base offsets into
    the flat entries buffer.  One implementation behind
    :func:`query_distance`, :func:`query_with_hub` and the scalar kernel --
    the block used to be copy-pasted into each.
    """
    if s < 0 or t < 0:
        # Without this guard Python's negative indexing would silently answer
        # for vertex n+s; too-large ids already raise from the lookups below.
        raise IndexError(f"vertex ids must be non-negative, got ({s}, {t})")
    prefix = hierarchy.num_common_ancestors(s, t)
    offsets = labels.offsets
    return prefix, offsets[s], offsets[t]


def query_distance(
    hierarchy: StableTreeHierarchy,
    labels: STLLabels,
    s: int,
    t: int,
) -> float:
    """Shortest-path distance between ``s`` and ``t`` (``inf`` if disconnected).

    The usual entry point is :meth:`repro.core.stl.StableTreeLabelling.query`,
    which delegates here:

    >>> from repro import StableTreeLabelling, generators
    >>> graph = generators.grid_road_network(4, 4, seed=7)
    >>> stl = StableTreeLabelling.build(graph)
    >>> stl.query(0, 0)
    0.0
    >>> stl.query(0, 5) == stl.query(5, 0)  # symmetric
    True
    >>> stl.query(-1, 5)
    Traceback (most recent call last):
        ...
    IndexError: vertex ids must be non-negative, got (-1, 5)
    """
    if s == t:
        if s < 0:
            raise IndexError(f"vertex ids must be non-negative, got ({s}, {t})")
        return 0.0
    prefix, base_s, base_t = _prefix_bases(hierarchy, labels, s, t)
    if prefix <= 0:
        return UNREACHABLE
    entries = labels.view
    # The common-ancestor entries are a consecutive prefix of both rows, so
    # the scan is a single pass over two zero-copy slices of the flat buffer
    # (the paper's cache-friendly query layout); min over a generator keeps
    # the loop in C.
    return min(
        a + b
        for a, b in zip(entries[base_s : base_s + prefix], entries[base_t : base_t + prefix])
    )


def query_with_hub(
    hierarchy: StableTreeHierarchy,
    labels: STLLabels,
    s: int,
    t: int,
) -> tuple[float, int]:
    """Like :func:`query_distance` but also returns the label index of the hub.

    The hub is the common ancestor realising the minimum (``-1`` when the
    vertices are identical or disconnected).  Used by the examples to explain
    which separator level answered a query.
    """
    if s == t:
        if s < 0:
            raise IndexError(f"vertex ids must be non-negative, got ({s}, {t})")
        return 0.0, -1
    prefix, base_s, base_t = _prefix_bases(hierarchy, labels, s, t)
    entries = labels.view
    best = UNREACHABLE
    hub = -1
    for i in range(prefix):
        candidate = entries[base_s + i] + entries[base_t + i]
        if candidate < best:
            best = candidate
            hub = i
    return best, hub


def batch_query(
    hierarchy: StableTreeHierarchy,
    labels: STLLabels,
    pairs: Sequence[tuple[int, int]],
    kernel: str | None = None,
) -> list[float]:
    """Answer a batch of queries (used by the serving and benchmark paths).

    Dispatches to :mod:`repro.core.kernels`: with numpy installed (the
    ``repro[fast]`` extra) the whole batch runs as one fused gather +
    segment-min over the CSR store; without it, one scalar
    :func:`query_distance` per pair.  ``kernel`` pins ``"scalar"`` or
    ``"vector"`` explicitly -- the answers are entry-wise identical.

    >>> from repro import StableTreeLabelling, generators
    >>> graph = generators.grid_road_network(4, 4, seed=7)
    >>> stl = StableTreeLabelling.build(graph)
    >>> batch_query(stl.hierarchy, stl.labels, [(0, 0), (3, 3)])
    [0.0, 0.0]
    >>> batch_query(stl.hierarchy, stl.labels, [], kernel="scalar")
    []
    """
    return kernels.batch_query(hierarchy, labels, pairs, kernel)
