"""Parallel shared-memory construction pipeline (hierarchy + labels).

Construction is the wall-clock bottleneck at paper scale -- the serial
pure-Python build is superlinear and fully single-core (77s at 50k vertices,
BENCH_pr8.json) -- yet both phases are embarrassingly parallel by structure:

* **Hierarchy.**  After a bisection, the left and right vertex sets induce
  *independent* subproblems: the recursion below either side never reads the
  other side's vertices (separators disconnect them) and the bisectors are
  deterministic functions of ``(graph, vertices)``.  So the coordinator runs
  only the top few bisections serially -- recorded as a *plan tree*, not yet
  as hierarchy nodes -- until enough independent pending subproblems exist
  to saturate the worker pool, ships each remaining subproblem to a worker
  (which runs :func:`repro.hierarchy.builder.build_subtree`, the same
  recursion the serial build uses, over local preorder node records), and
  finally *grafts* every piece serially in DFS order.  Because grafting
  replays ``add_node`` / ``assign_vertices`` in exactly the serial
  recursion's visit order, the resulting node ids, ``tau`` and every
  serialized payload are byte-identical to a serial build.

* **Labels.**  Label construction runs one rank-restricted Dijkstra per
  vertex ``r``; the search from ``r`` writes only entries ``(x, tau[r])``
  for ``x`` in ``Desc(r)``, and ``r`` is the *unique* ancestor of ``x`` at
  label index ``tau[r]`` -- so the write sets of different roots are
  disjoint under **any** partition of the roots.  The coordinator pre-sizes
  the CSR entries buffer, maps it into one ``multiprocessing.shared_memory``
  segment, fills it with the UNREACHABLE sentinel
  (:func:`repro.core.kernels.fill_unreachable`), and hands each participant
  a load-balanced share of the roots; workers write distances straight into
  the shared buffer at settle time
  (:func:`repro.algorithms.dijkstra.dijkstra_rank_restricted_into`) -- **no
  label bytes are ever pickled**, mirroring the residency protocol of
  :mod:`repro.core.parallel`.  The coordinator computes one share itself
  while the workers run.

Load balance uses the subtree sizes the hierarchy already knows: the cost of
root ``r`` is proportional to ``|Desc(r)|``, computed for every vertex in one
reverse sweep over the preorder node list, and shares are formed greedily
largest-first (LPT).

**Shared-memory lifecycle.**  The segment exists only for the label phase:
workers attach with the same tracker-suppressing helper the shard backend
uses, release every exported view and close their mapping *before* replying,
and the coordinator copies the finished entries into a private
``array('d')`` and unlinks the segment in a ``finally`` -- success, worker
failure and mid-build exceptions all leave ``/dev/shm`` clean.  The builder
pool itself is torn down at the end of :meth:`ParallelBuilder.build`, before
any :class:`repro.core.parallel.ProcessShardBackend` is (lazily) created for
maintenance, so the two pools never coexist.

Where numpy is present the per-root searches switch to a vectorised
adjacency-scan variant over a CSR mirror of the graph
(:func:`repro.core.kernels.adjacency_csr`) -- gated, like every kernel in
:mod:`repro.core.kernels`, on the spans actually paying for the call
overhead: rows shorter than ``VECTOR_MIN_SPAN`` neighbours (every planar
road network) stay on the scalar loop, which is faster there.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import traceback
from array import array
from dataclasses import dataclass, field
from heapq import heappop, heappush
from multiprocessing import shared_memory
from typing import Any, Sequence

from repro.algorithms.dijkstra import dijkstra_rank_restricted_into
from repro.core.kernels import (
    HAS_NUMPY,
    VECTOR_MIN_SPAN,
    _np,
    adjacency_csr,
    fill_unreachable,
)
from repro.core.labelling import ENTRY_BYTES, STLLabels, build_labels, label_offsets
from repro.core.parallel import _attach_segment, _pick_start_method
from repro.graph.graph import Graph
from repro.hierarchy.builder import (
    BuildReport,
    HierarchyOptions,
    build_hierarchy_with_report,
    build_subtree,
    graft_subtree,
    _order_vertices,
)
from repro.hierarchy.tree import StableTreeHierarchy
from repro.partition.bisection import Bisection, enforce_balance
from repro.utils.errors import ConfigError, HierarchyError, PartitionError

#: Construction modes accepted by ``STLConfig(construction=...)``.
CONSTRUCTION_NAMES = ("serial", "parallel")

#: Below this many vertices, ``construction=None`` resolves to serial: the
#: pool spawn + graph shipping overhead exceeds the whole serial build.
AUTO_PARALLEL_MIN_VERTICES = 8192

#: Pending subproblems per pool participant before the serial plan phase
#: stops bisecting and starts shipping: a few subproblems per worker evens
#: out subtree-size variance without serialising too many top levels.
SATURATION_FACTOR = 4

#: Seconds the coordinator waits for one worker reply.  A worker's whole
#: label share at paper scale legitimately runs for minutes, so this is far
#: larger than the shard backend's per-batch timeout -- it only exists so a
#: dead worker fails the build instead of hanging it forever.
DEFAULT_BUILD_REPLY_TIMEOUT = 3600.0


def normalize_construction(construction: str | None) -> str | None:
    """Validate a ``construction=`` value (``None`` = decide by size)."""
    if construction is None or construction in CONSTRUCTION_NAMES:
        return construction
    allowed = ", ".join(repr(name) for name in CONSTRUCTION_NAMES)
    raise ConfigError(
        f"unknown construction mode {construction!r}; allowed modes: {allowed} (or None)"
    )


def resolve_construction(
    construction: str | None, num_vertices: int, max_workers: int | None = None
) -> str:
    """Resolve ``None`` to a concrete mode for an instance of this size.

    Explicit modes are honoured as given (tests use ``"parallel"`` with
    ``max_workers=2`` to exercise the pool on any machine).  ``None`` picks
    parallel only when the instance is large enough to amortise the pool
    (:data:`AUTO_PARALLEL_MIN_VERTICES`) *and* more than one CPU is
    available -- on a single-core box the pool is pure IPC overhead.
    """
    mode = normalize_construction(construction)
    if mode is not None:
        return mode
    available = max_workers if max_workers is not None else (os.cpu_count() or 1)
    if available >= 2 and num_vertices >= AUTO_PARALLEL_MIN_VERTICES:
        return "parallel"
    return "serial"


def build_index(
    graph: Graph,
    options: HierarchyOptions | None = None,
    *,
    construction: str | None = None,
    max_workers: int | None = None,
    start_method: str | None = None,
    reply_timeout: float = DEFAULT_BUILD_REPLY_TIMEOUT,
) -> tuple[StableTreeHierarchy, STLLabels, BuildReport]:
    """Build hierarchy + labels under the resolved construction mode.

    The one construction entry point: :meth:`StableTreeLabelling.build`,
    :func:`repro.open_network` and the serving layer's background build all
    route through here.  Returns ``(hierarchy, labels, report)`` with the
    report's timing breakdown (:class:`repro.hierarchy.builder.BuildReport`)
    filled in; both modes produce entry-wise identical results.
    """
    mode = resolve_construction(construction, graph.num_vertices, max_workers)
    if mode == "parallel":
        builder = ParallelBuilder(
            graph,
            options,
            max_workers=max_workers,
            start_method=start_method,
            reply_timeout=reply_timeout,
        )
        return builder.build()
    start = time.perf_counter()
    hierarchy, report = build_hierarchy_with_report(graph, options)
    report.hierarchy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    labels = build_labels(graph, hierarchy)
    report.label_seconds = time.perf_counter() - start
    return hierarchy, labels, report


# --------------------------------------------------------------------------- #
# Per-root label searches (scalar + gated vector variant)
# --------------------------------------------------------------------------- #


def run_label_roots(
    graph: Graph,
    roots: Sequence[int],
    tau: Sequence[int],
    entries: Any,
    offsets: Sequence[int],
) -> int:
    """Run the rank-restricted search for every root, writing into ``entries``.

    ``entries`` is either a private ``array('d')`` or a ``'d'`` memoryview
    over the shared segment -- the write target is the only difference
    between the serial and parallel label phases.  Dispatches to the
    vectorised adjacency-scan variant when numpy is present *and* the graph
    has rows long enough to pay for it; returns the number of entries
    written.
    """
    adjacency = graph.adjacency()
    if HAS_NUMPY and adjacency and max(len(row) for row in adjacency) >= VECTOR_MIN_SPAN:
        csr = adjacency_csr(graph)
        if csr is not None:
            return _run_label_roots_vector(csr, roots, tau, entries, offsets)
    written = 0
    for r in roots:
        written += dijkstra_rank_restricted_into(adjacency, r, tau, entries, offsets, tau[r])
    return written


def _run_label_roots_vector(
    csr: tuple[Any, Any, Any],
    roots: Sequence[int],
    tau: Sequence[int],
    entries: Any,
    offsets: Sequence[int],
) -> int:
    """Vectorised per-root searches over a CSR adjacency mirror.

    The Dijkstra control flow (heap, settle-time write, strict-improvement
    pushes) is unchanged; what vectorises is the relaxation of one popped
    vertex's whole neighbour row: gather current distances, compute
    ``d + w`` for the row in one float64 ufunc (bit-identical to the scalar
    sum), mask by the rank restriction and strict improvement, scatter the
    survivors.  Rows shorter than :data:`VECTOR_MIN_SPAN` run the scalar
    inner loop -- on road networks that is every row, which is why the
    caller gates on the maximum row span before choosing this variant.
    Per-root state resets by epoch stamping instead of refilling the dense
    distance array.
    """
    indptr, neighbors, weights = csr
    n = len(indptr) - 1
    rank = _np.asarray(tau, dtype=_np.int64)
    dist = _np.empty(n, dtype=_np.float64)
    stamp = _np.zeros(n, dtype=_np.int64)
    epoch = 0
    written = 0
    for r in roots:
        epoch += 1
        threshold = tau[r]
        index = tau[r]
        dist[r] = 0.0
        stamp[r] = epoch
        heap: list[tuple[float, int]] = [(0.0, r)]
        while heap:
            d, v = heappop(heap)
            if d > dist[v]:
                continue
            entries[offsets[v] + index] = d
            written += 1
            lo = indptr[v]
            hi = indptr[v + 1]
            if hi - lo >= VECTOR_MIN_SPAN:
                nb = neighbors[lo:hi]
                nd = d + weights[lo:hi]
                current = _np.where(stamp[nb] == epoch, dist[nb], _np.inf)
                improved = (rank[nb] >= threshold) & (nd < current)
                nb = nb[improved]
                nd = nd[improved]
                dist[nb] = nd
                stamp[nb] = epoch
                for x, dx in zip(nb.tolist(), nd.tolist()):
                    heappush(heap, (dx, x))
            else:
                for k in range(lo, hi):
                    x = int(neighbors[k])
                    if rank[x] < threshold:
                        continue
                    dx = d + float(weights[k])
                    if stamp[x] != epoch or dx < dist[x]:
                        dist[x] = dx
                        stamp[x] = epoch
                        heappush(heap, (dx, x))
    return written


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #


def _report_payload(report: BuildReport) -> tuple[int, int, int, int]:
    """The counters a subtree build ships back (timings stay coordinator-side)."""
    return (
        report.num_nodes,
        report.num_leaves,
        report.max_separator,
        report.balance_violations,
    )


def _worker_subtrees(
    graph: Graph, options: HierarchyOptions, tasks: Sequence[tuple[int, list[int]]]
) -> list[tuple[int, Any, tuple[int, int, int, int]]]:
    """Build every assigned subproblem; one reply carries all of them."""
    results = []
    for plan_id, vertices in tasks:
        report = BuildReport()
        nodes = build_subtree(graph, vertices, options, report)
        results.append((plan_id, nodes, _report_payload(report)))
    return results


def _worker_labels(graph: Graph, payload: dict[str, Any]) -> int:
    """Run this worker's root share against the shared entries segment.

    Attaches the segment (without adopting its lifetime -- the coordinator
    owns the unlink), writes the assigned roots' distances straight through
    the mapping, and releases every view *before* replying, so by the time
    the coordinator sees the reply this process no longer maps the segment.
    """
    segment = _attach_segment(payload["segment"])
    try:
        entries = segment.buf[: payload["num_entries"] * ENTRY_BYTES].cast("d")
        try:
            offsets = array("q")
            offsets.frombytes(payload["offsets"])
            return run_label_roots(graph, payload["roots"], payload["tau"], entries, offsets)
        finally:
            entries.release()
    finally:
        segment.close()


def _build_worker_main(conn: Any, graph: Graph, options: HierarchyOptions) -> None:
    """Builder worker main loop (one request/reply in flight at a time).

    Messages: ``("subtrees", tasks)`` builds detached hierarchy subtrees,
    ``("labels", payload)`` attaches the shared segment and runs a root
    share, ``("exit",)`` terminates.  Failures are reported as ``("error",
    (exception_type_name, traceback))`` so the coordinator can re-raise the
    right error class instead of hanging.  ``graph`` and ``options`` arrive
    as process arguments -- free under the ``fork`` start method, pickled
    once under ``spawn``.
    """
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "exit":
            break
        try:
            if kind == "subtrees":
                conn.send(("ok", _worker_subtrees(graph, options, message[1])))
            elif kind == "labels":
                conn.send(("ok", _worker_labels(graph, message[1])))
            else:
                raise RuntimeError(f"unknown builder message {kind!r}")
        except BaseException as exc:
            conn.send(("error", (type(exc).__name__, traceback.format_exc())))
    conn.close()


class _BuildWorker:
    """A persistent builder worker process plus the coordinator's pipe end."""

    def __init__(self, context: Any, index: int, graph: Graph, options: HierarchyOptions):
        self.index = index
        parent_conn, child_conn = context.Pipe()
        self.conn = parent_conn
        self.process = context.Process(
            target=_build_worker_main,
            args=(child_conn, graph, options),
            name=f"repro-build-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def send(self, message: tuple[Any, ...]) -> None:
        self.conn.send(message)

    def recv(self, timeout: float) -> Any:
        if not self.conn.poll(timeout):
            raise RuntimeError(
                f"builder worker {self.index} gave no reply within {timeout:.0f}s "
                "(deadlocked or killed); closing the pool"
            )
        try:
            status, payload = self.conn.recv()
        except EOFError as exc:
            raise RuntimeError(f"builder worker {self.index} died mid-build") from exc
        if status != "ok":
            name, trace = payload
            if name == "HierarchyError":
                raise HierarchyError(f"builder worker {self.index} failed:\n{trace}")
            raise RuntimeError(f"builder worker {self.index} failed:\n{trace}")
        return payload

    def close(self) -> None:
        try:
            if self.process.is_alive():
                self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=2.0)


# --------------------------------------------------------------------------- #
# Coordinator: plan tree + grafting
# --------------------------------------------------------------------------- #


@dataclass
class _PlanNode:
    """One node of the serial plan phase.

    ``kind`` is ``"inner"`` (bisected: ``vertices`` holds the ordered
    separator, ``left``/``right`` the child plan ids), ``"leaf"`` (ordered
    leaf vertices) or ``"pending"`` (an unexpanded subproblem: raw vertex
    list, destined for a worker or the coordinator's own share).
    """

    parent: int
    is_right: bool
    kind: str
    vertices: list[int] = field(default_factory=list)
    left: int = -1
    right: int = -1


def _lpt_shares(tasks: Sequence[tuple[Any, int]], participants: int) -> list[list[Any]]:
    """Greedy longest-processing-time assignment of ``(item, cost)`` tasks.

    Sorts by cost descending and always hands the next task to the least
    loaded participant -- the classic LPT 4/3-approximation, plenty for
    shares whose costs are themselves estimates.
    """
    shares: list[list[Any]] = [[] for _ in range(participants)]
    loads = [(0, k) for k in range(participants)]
    for item, cost in sorted(tasks, key=lambda t: -t[1]):
        load, k = heappop(loads)
        shares[k].append(item)
        heappush(loads, (load + cost, k))
    return shares


class ParallelBuilder:
    """Process-parallel construction of one STL index (see module docstring).

    The builder owns a pool of persistent worker processes for the duration
    of one :meth:`build` call; the pool is spawned lazily on first use and
    torn down in a ``finally`` before the method returns -- even on failure
    -- so it can never coexist with the maintenance-side
    :class:`repro.core.parallel.ProcessShardBackend` pool, and the shared
    label segment can never outlive the build.
    """

    #: Distinguishes segments of multiple live builders in one process.
    _segment_counter = itertools.count()

    def __init__(
        self,
        graph: Graph,
        options: HierarchyOptions | None = None,
        max_workers: int | None = None,
        start_method: str | None = None,
        reply_timeout: float = DEFAULT_BUILD_REPLY_TIMEOUT,
    ):
        self.graph = graph
        self.options = options or HierarchyOptions()
        requested = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.num_workers = max(1, requested)
        self.reply_timeout = reply_timeout
        self._context = multiprocessing.get_context(_pick_start_method(start_method))
        self._workers: list[_BuildWorker] | None = None

    # -------------------------------------------------------------- #
    # Pool lifecycle
    # -------------------------------------------------------------- #

    def _ensure_workers(self) -> list[_BuildWorker]:
        if self._workers is None:
            self._workers = [
                _BuildWorker(self._context, k, self.graph, self.options)
                for k in range(self.num_workers)
            ]
        return self._workers

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._workers is not None:
            for worker in self._workers:
                worker.close()
            self._workers = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -------------------------------------------------------------- #
    # Build
    # -------------------------------------------------------------- #

    def build(self) -> tuple[StableTreeHierarchy, STLLabels, BuildReport]:
        """Build hierarchy + labels; identical output to the serial build."""
        report = BuildReport(construction="parallel", workers=self.num_workers)
        try:
            start = time.perf_counter()
            hierarchy = self._build_hierarchy(report)
            report.hierarchy_seconds = time.perf_counter() - start
            start = time.perf_counter()
            labels = self._build_labels(hierarchy)
            report.label_seconds = time.perf_counter() - start
        finally:
            self.close()
        return hierarchy, labels, report

    # -------------------------------------------------------------- #
    # Phase a: hierarchy
    # -------------------------------------------------------------- #

    def _build_hierarchy(self, report: BuildReport) -> StableTreeHierarchy:
        graph = self.graph
        hierarchy = StableTreeHierarchy(graph.num_vertices)
        if graph.num_vertices == 0:
            return hierarchy

        plan = self._expand_plan(report)
        tasks = [
            ((pid, node.vertices), len(node.vertices))
            for pid, node in enumerate(plan)
            if node.kind == "pending"
        ]
        results: dict[int, Any] = {}
        if tasks:
            shares = _lpt_shares(tasks, self.num_workers + 1)
            workers = self._ensure_workers()
            for k, worker in enumerate(workers):
                worker.send(("subtrees", shares[k]))
            # The coordinator's own share overlaps the workers' computation.
            for pid, vertices in shares[self.num_workers]:
                local = BuildReport()
                results[pid] = build_subtree(graph, vertices, self.options, local)
                report.merge(local)
            for worker in workers:
                for pid, nodes, counters in worker.recv(self.reply_timeout):
                    results[pid] = nodes
                    report.merge(BuildReport(*counters))

        self._graft(hierarchy, plan, results, 0, -1, False)
        hierarchy.finalize()
        return hierarchy

    def _expand_plan(self, report: BuildReport) -> list[_PlanNode]:
        """Serially bisect top levels until the pool has enough subproblems.

        Pops the *largest* pending subproblem each round (a max-heap keyed
        on vertex count), applying exactly the decision sequence of the
        serial recursion -- same bisector, same balance enforcement, same
        leaf condition -- so the plan tree is a prefix of the serial tree.
        Stops once :data:`SATURATION_FACTOR` pending subproblems per pool
        participant exist (or everything expanded into leaves).
        """
        graph = self.graph
        options = self.options
        target = SATURATION_FACTOR * (self.num_workers + 1)
        plan = [_PlanNode(-1, False, "pending", list(graph.vertices()))]
        heap = [(-len(plan[0].vertices), 0)]
        while heap and len(heap) < target:
            _, pid = heappop(heap)
            node = plan[pid]
            vertices = node.vertices

            if len(vertices) <= options.leaf_size:
                node.kind = "leaf"
                node.vertices = _order_vertices(graph, vertices, options.order_within_node)
                report.record(Bisection([], vertices, []), is_leaf=True, balanced=True)
                continue

            try:
                bisection = options.bisector.bisect(graph, vertices)
            except PartitionError as exc:
                raise HierarchyError(
                    f"bisection failed on {len(vertices)} vertices: {exc}"
                ) from exc

            if not bisection.left or not bisection.right:
                node.kind = "leaf"
                node.vertices = _order_vertices(graph, vertices, options.order_within_node)
                report.record(bisection, is_leaf=True, balanced=True)
                continue

            balanced = enforce_balance(bisection, options.beta)
            if not balanced and options.strict_balance:
                raise HierarchyError(
                    f"bisection of {len(vertices)} vertices violates the "
                    f"beta={options.beta} balance bound: sides "
                    f"{len(bisection.left)}/{len(bisection.right)}"
                )
            report.record(bisection, is_leaf=False, balanced=balanced)

            node.kind = "inner"
            node.vertices = _order_vertices(graph, bisection.separator, options.order_within_node)
            for side, is_right in ((bisection.left, False), (bisection.right, True)):
                cid = len(plan)
                plan.append(_PlanNode(pid, is_right, "pending", side))
                heappush(heap, (-len(side), cid))
                if is_right:
                    node.right = cid
                else:
                    node.left = cid
        return plan

    def _graft(
        self,
        hierarchy: StableTreeHierarchy,
        plan: list[_PlanNode],
        results: dict[int, Any],
        pid: int,
        parent: int,
        is_right: bool,
    ) -> None:
        """Serial DFS over the plan tree, replaying the serial visit order."""
        node = plan[pid]
        if node.kind == "pending":
            graft_subtree(hierarchy, results[pid], parent, is_right)
            return
        real = hierarchy.add_node(parent, is_right)
        hierarchy.assign_vertices(real, node.vertices)
        if node.kind == "inner":
            self._graft(hierarchy, plan, results, node.left, real.index, False)
            self._graft(hierarchy, plan, results, node.right, real.index, True)

    # -------------------------------------------------------------- #
    # Phase b: labels into one shared segment
    # -------------------------------------------------------------- #

    def _build_labels(self, hierarchy: StableTreeHierarchy) -> STLLabels:
        graph = self.graph
        tau = hierarchy.tau
        offsets = label_offsets(tau)
        total = offsets[-1]
        if total == 0:
            return STLLabels.from_flat(array("d"), offsets)

        name = f"repro-stl-build-{os.getpid()}-{next(self._segment_counter)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=total * ENTRY_BYTES)
        view: Any = None
        try:
            view = shm.buf[: total * ENTRY_BYTES].cast("d")
            fill_unreachable(view)

            shares = _lpt_shares(self._root_shares(hierarchy), self.num_workers + 1)
            workers = self._ensure_workers()
            offsets_bytes = offsets.tobytes()
            tau_list = list(tau)
            for k, worker in enumerate(workers):
                worker.send(
                    (
                        "labels",
                        {
                            "segment": name,
                            "num_entries": total,
                            "offsets": offsets_bytes,
                            "tau": tau_list,
                            "roots": shares[k],
                        },
                    )
                )
            run_label_roots(graph, shares[self.num_workers], tau, view, offsets)
            for worker in workers:
                worker.recv(self.reply_timeout)

            entries = array("d")
            entries.frombytes(view.tobytes())
            return STLLabels.from_flat(entries, offsets)
        finally:
            # Unlink unconditionally: the entries were copied out above on
            # success, and on any failure the segment must not leak.  Workers
            # closed their mappings before replying, so on Linux the segment
            # vanishes as soon as the coordinator's mapping closes.
            if view is not None:
                view.release()
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def _root_shares(self, hierarchy: StableTreeHierarchy) -> list[tuple[int, int]]:
        """Every vertex as a task ``(root, cost)`` for the LPT assignment.

        The cost of root ``r`` is ``|Desc(r)|`` -- the number of vertices
        its rank-restricted search can settle: the vertices at or after
        ``r`` inside its own node plus every vertex of descendant nodes.
        Subtree vertex counts come from one reverse sweep (children follow
        parents in the preorder node list, so a reversed pass sees children
        first).
        """
        counts = [0] * hierarchy.num_nodes
        for node in reversed(hierarchy.nodes):
            total = len(node.vertices)
            if node.left != -1:
                total += counts[node.left]
            if node.right != -1:
                total += counts[node.right]
            counts[node.index] = total
        tasks: list[tuple[int, int]] = []
        for node in hierarchy.nodes:
            for offset, r in enumerate(node.vertices):
                tasks.append((r, counts[node.index] - offset))
        return tasks
