"""Immutable published views of an STL index (the RCU read side).

The serving layer (:mod:`repro.serve`) keeps queries lock-free by never
letting readers see a store that maintenance is mutating.  A
:class:`LabelSnapshot` is one published generation: a hierarchy, a label
store, and a *frozen copy* of the graph's weights, all captured at a single
version.  Readers acquire the snapshot, query it, and release it; the
single maintenance task builds the next generation on a shadow copy of the
CSR store and commits it with an atomic pointer swap
(:meth:`repro.serve.service.QueryService._publish`).

Reclamation is epoch-based rather than lock-based: every ``acquire`` pins
the snapshot's label store (:meth:`repro.core.labelling.STLLabels.pin`),
``retire`` marks the generation as superseded, and the buffers are only
dropped when the last in-flight reader releases -- an in-flight query can
never observe its snapshot being reclaimed underneath it, and a reader that
arrives *after* retirement is refused with :class:`SnapshotError` (it must
re-read the service's active pointer, which by then names the successor).
The store's ``buffer_epoch`` ties in from the kernel side: the vector query
kernels cache ``frombuffer`` views keyed on it, so a snapshot store's
cached views can never be served against a different generation's buffer.

Snapshots also carry the *fallback tier*: a snapshot whose ``labels`` is
``None`` (published before the first labelling finished building) or whose
labels do not cover a queried vertex answers through bounded Dijkstra on
its frozen graph -- exact, just slower -- so the service can answer from the
moment it starts.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.algorithms.dijkstra import dijkstra_with_target
from repro.core.labelling import STLLabels
from repro.core.query import batch_query, query_distance
from repro.graph.graph import Graph
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import SnapshotError
from repro.utils.validation import check_vertex

#: Query tier names reported by :meth:`LabelSnapshot.distance`.
FAST_PATH = "fast"
FALLBACK_PATH = "fallback"


class LabelSnapshot:
    """One immutable generation of the serving state.

    Construct via :meth:`capture` (from a live index) or
    :meth:`fallback_only` (graph-only, before the first labelling lands);
    the raw constructor is for deserialisation.  The graph handed in must
    be private to the snapshot -- ``capture`` copies it -- because readers
    run fallback searches against it unlocked.

    Readers bracket every use with :meth:`acquire` / :meth:`release` (or
    the context manager form).  The snapshot is hashable by identity and
    compares by identity: two captures of identical state are distinct
    generations.
    """

    __slots__ = (
        "hierarchy",
        "labels",
        "graph",
        "version",
        "_readers",
        "_retired",
        "_disposed",
        "_drained_callbacks",
    )

    def __init__(
        self,
        hierarchy: StableTreeHierarchy | None,
        labels: STLLabels | None,
        graph: Graph,
        version: int = 0,
    ):
        if (hierarchy is None) != (labels is None):
            raise SnapshotError("hierarchy and labels must be provided together")
        if labels is not None and len(labels) != hierarchy.num_vertices:  # type: ignore[union-attr]
            raise SnapshotError(
                f"labels cover {len(labels)} vertices, "
                f"hierarchy covers {hierarchy.num_vertices}"  # type: ignore[union-attr]
            )
        self.hierarchy = hierarchy
        self.labels = labels
        self.graph = graph
        self.version = version
        self._readers = 0
        self._retired = False
        self._disposed = False
        self._drained_callbacks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def capture(cls, stl: Any, version: int = 0, copy: bool = True) -> "LabelSnapshot":
        """Snapshot a :class:`repro.core.stl.StableTreeLabelling`.

        ``copy=True`` (the default) duplicates the label entries
        (:meth:`STLLabels.snapshot_store`).  ``copy=False`` *shares* the
        index's live store -- the zero-copy publish the service uses: sound
        as long as the writer shadow-copies its store before the next
        mutation (the copy-on-write discipline of
        :meth:`repro.serve.service.QueryService`).  The graph is always
        copied; readers run fallback searches against it while the writer's
        graph keeps moving.
        """
        labels = stl.labels.snapshot_store() if copy else stl.labels
        return cls(stl.hierarchy, labels, stl.graph.copy(), version)

    @classmethod
    def fallback_only(cls, graph: Graph, version: int = 0, copy: bool = True) -> "LabelSnapshot":
        """A labelless snapshot: every query takes the Dijkstra fallback."""
        return cls(None, None, graph.copy() if copy else graph, version)

    # ------------------------------------------------------------------ #
    # Reader protocol
    # ------------------------------------------------------------------ #

    @property
    def readers(self) -> int:
        """Number of in-flight acquired readers."""
        return self._readers

    @property
    def retired(self) -> bool:
        """Whether a successor generation has been published."""
        return self._retired

    @property
    def disposed(self) -> bool:
        """Whether the snapshot's buffers have been reclaimed."""
        return self._disposed

    def acquire(self) -> "LabelSnapshot":
        """Pin the snapshot for one reader; refuse once retired.

        Refusing retired generations is what makes the service's swap
        *atomic* from the reader side: a reader either got the old pointer
        before the swap (and acquired before retirement ran -- both happen
        on the event-loop thread, so there is no window between them) or
        reads the new pointer.  It can never start a fresh read against a
        generation whose reclamation countdown already began.
        """
        if self._retired or self._disposed:
            raise SnapshotError(
                f"snapshot v{self.version} is retired; re-read the active snapshot"
            )
        self._readers += 1
        if self.labels is not None:
            self.labels.pin()
        return self

    def release(self) -> None:
        """Drop one reader pin; the last reader of a retired snapshot reclaims it."""
        if self._readers <= 0:
            raise SnapshotError("release() without a matching acquire()")
        self._readers -= 1
        if self.labels is not None:
            self.labels.unpin()
        if self._retired and self._readers == 0:
            self._dispose()

    def __enter__(self) -> "LabelSnapshot":
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def retire(self) -> None:
        """Mark this generation superseded; reclaim once readers drain.

        Idempotent.  With no readers in flight the buffers are reclaimed
        immediately; otherwise the last :meth:`release` reclaims them --
        the epoch drain of the RCU scheme.
        """
        if self._retired:
            return
        self._retired = True
        if self._readers == 0:
            self._dispose()

    def defer_until_drained(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once no readers remain (immediately if none)."""
        if self._readers == 0:
            callback()
        else:
            self._drained_callbacks.append(callback)

    def _dispose(self) -> None:
        """Drop the buffer references (reclamation).  Internal: called with
        zero readers only, so nothing can be mid-read on these objects."""
        if self._disposed:
            return
        self._disposed = True
        self.hierarchy = None
        self.labels = None
        self.graph = None  # type: ignore[assignment]
        if self._drained_callbacks:
            callbacks, self._drained_callbacks = self._drained_callbacks, []
            for callback in callbacks:
                callback()

    def _check_live(self) -> None:
        if self._disposed:
            raise SnapshotError(f"snapshot v{self.version} has been reclaimed")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Vertices of the snapshot's frozen graph."""
        self._check_live()
        return self.graph.num_vertices

    @property
    def buffer_epoch(self) -> int:
        """The label store's buffer generation (``-1`` when fallback-only)."""
        return -1 if self.labels is None else self.labels.buffer_epoch

    def covers(self, s: int, t: int) -> bool:
        """Whether both vertices can take the fast label path."""
        if self.labels is None:
            return False
        n = len(self.labels)
        return 0 <= s < n and 0 <= t < n

    def distance(self, s: int, t: int) -> tuple[float, str]:
        """Distance plus the tier that answered (``"fast"``/``"fallback"``).

        The fast path is the O(prefix) label lookup; the complete path is
        bounded Dijkstra (early termination at the target) over the frozen
        graph -- taken for labelless snapshots and for vertices the labels
        do not cover.  Both tiers are exact for this generation's weights.
        """
        self._check_live()
        check_vertex(s, self.graph.num_vertices)
        check_vertex(t, self.graph.num_vertices)
        if self.covers(s, t):
            return query_distance(self.hierarchy, self.labels, s, t), FAST_PATH
        return dijkstra_with_target(self.graph, s, t), FALLBACK_PATH

    def batch_distances(
        self, pairs: list[tuple[int, int]], kernel: str | None = None
    ) -> list[float]:
        """Distances for many pairs, tiering each pair independently."""
        self._check_live()
        fast = [p for p in pairs if self.covers(*p)]
        answers: dict[tuple[int, int], float] = {}
        if fast:
            for pair, d in zip(fast, batch_query(self.hierarchy, self.labels, fast, kernel)):
                answers[pair] = d
        out = []
        for s, t in pairs:
            if (s, t) in answers:
                out.append(answers[(s, t)])
            else:
                check_vertex(s, self.graph.num_vertices)
                check_vertex(t, self.graph.num_vertices)
                out.append(dijkstra_with_target(self.graph, s, t))
        return out

    def reachable(self, s: int, t: int) -> bool:
        """Whether ``t`` is reachable from ``s`` in this generation."""
        return not math.isinf(self.distance(s, t)[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "disposed" if self._disposed else ("retired" if self._retired else "active")
        tier = "fallback-only" if self.labels is None else "labelled"
        return (
            f"LabelSnapshot(v{self.version}, {tier}, {state}, readers={self._readers})"
        )
