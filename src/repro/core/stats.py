"""Index statistics backing Table 4 of the paper.

Every index implementation (STL and the baselines) exposes an
:class:`IndexStats` so the experiment drivers can print the labelling size,
construction time, number of label entries and tree height side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.memory import MemoryEstimate, format_bytes, format_count


@dataclass(frozen=True)
class IndexStats:
    """Size and shape statistics of a distance index."""

    method: str
    num_vertices: int
    num_label_entries: int
    memory: MemoryEstimate
    tree_height: int
    construction_seconds: float
    #: Construction-time breakdown (PR 10): wall-clock of the hierarchy and
    #: label phases and the number of builder worker processes (0 = serial
    #: build).  Defaulted so the baseline indexes -- which have no two-phase
    #: build -- keep constructing stats positionally.
    hierarchy_seconds: float = 0.0
    label_seconds: float = 0.0
    construction_workers: int = 0

    @property
    def bytes_total(self) -> int:
        """Estimated index size in bytes (compact layout)."""
        return self.memory.total_bytes

    @property
    def average_label_length(self) -> float:
        """Average number of distance entries per vertex."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_label_entries / self.num_vertices

    def as_row(self) -> dict[str, str]:
        """Human-readable row for the Table 4 report."""
        return {
            "method": self.method,
            "labelling size": format_bytes(self.bytes_total),
            "construction time [s]": f"{self.construction_seconds:.2f}",
            "# label entries": format_count(self.num_label_entries),
            "tree height": str(self.tree_height),
        }
