"""Structural updates: edge/vertex insertion and deletion (Section 8).

Road-network topology changes are rare; the paper handles them on top of the
weight-update machinery:

* **edge deletion** -- raise the edge weight to infinity and run the
  weight-increase maintenance (the hierarchy is untouched),
* **vertex deletion** -- delete all incident edges,
* **edge insertion** -- if the edge joins two vertices that are comparable in
  the hierarchy (one is an ancestor of the other, the common case for new
  road segments), it can be handled as a weight decrease from infinity; if
  the endpoints are incomparable, the hierarchy's separator property would be
  violated, so the affected sub-hierarchy is rebuilt (the paper's
  "re-partition their induced subgraphs" strategy).  This implementation
  takes the simple, always-correct variant: rebuild the whole index when the
  endpoints are incomparable, and patch labels in place otherwise.
"""

from __future__ import annotations

import math

from repro.core.label_search import MaintenanceStats
from repro.core.labelling import build_labels
from repro.core.stl import StableTreeLabelling
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.utils.errors import UpdateError


class StructuralUpdater:
    """Applies topology changes to a :class:`StableTreeLabelling` in place."""

    def __init__(self, stl: StableTreeLabelling, options: HierarchyOptions | None = None):
        self.stl = stl
        self.options = options

    # ------------------------------------------------------------------ #
    # Deletions
    # ------------------------------------------------------------------ #

    def delete_edge(self, u: int, v: int) -> MaintenanceStats:
        """Logically delete edge ``(u, v)`` (weight -> infinity)."""
        return self.stl.remove_edge(u, v)

    def delete_vertex(self, v: int) -> MaintenanceStats:
        """Logically delete vertex ``v`` by deleting all its incident edges."""
        stats = MaintenanceStats()
        for nbr, weight in list(self.stl.graph.neighbors(v)):
            if not math.isinf(weight):
                stats.merge(self.stl.remove_edge(v, nbr))
        return stats

    # ------------------------------------------------------------------ #
    # Insertions
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int, weight: float) -> MaintenanceStats:
        """Insert the edge ``(u, v)`` with ``weight``.

        Re-inserting a previously deleted edge (weight currently infinite) is
        a plain weight decrease.  A brand-new edge between comparable vertices
        is added to the graph and propagated as a decrease from infinity.  A
        brand-new edge between *incomparable* vertices invalidates the
        hierarchy's separator property, so the index is rebuilt.
        """
        graph = self.stl.graph
        hierarchy = self.stl.hierarchy
        if graph.has_edge(u, v):
            old = graph.weight(u, v)
            if weight > old:
                raise UpdateError(
                    f"insert_edge would increase the weight of existing edge ({u}, {v})"
                )
            return self.stl.apply_update(EdgeUpdate(u, v, old, weight))

        comparable = hierarchy.precedes(u, v) or hierarchy.precedes(v, u)
        graph.add_edge(u, v, weight)
        if comparable:
            # The new edge joins comparable vertices, so Lemma 5.3 and with it
            # the 2-hop cover property keep holding; propagating a weight
            # decrease from infinity patches every affected label.
            return self.stl.apply_update(EdgeUpdate(u, v, math.inf, weight))

        # Incomparable endpoints: the new edge crosses two sibling subtrees,
        # so common ancestors no longer hit every shortest path.  Rebuild the
        # hierarchy and the labels (the paper repartitions the affected
        # subtrees; a full rebuild is the simple correct fallback and is still
        # rare enough in practice -- new roads seldom appear).
        self._rebuild()
        stats = MaintenanceStats(updates_processed=1)
        stats.extra["rebuilds"] = 1
        return stats

    def insert_vertex(self, neighbors: list[tuple[int, float]]) -> int:
        """Insert a new vertex connected to ``neighbors``; returns its id.

        Adding a vertex changes the vertex set, which the dense-id graph and
        the hierarchy cannot absorb in place, so the graph is re-created with
        one extra vertex and the index is rebuilt.
        """
        old_graph = self.stl.graph
        new_id = old_graph.num_vertices
        coordinates = None
        if old_graph.coordinates is not None:
            anchor = neighbors[0][0] if neighbors else 0
            coordinates = list(old_graph.coordinates) + [old_graph.coordinates[anchor]]
        new_graph = Graph(new_id + 1, coordinates)
        for a, b, w in old_graph.edges():
            new_graph.add_edge(a, b, w)
        for nbr, weight in neighbors:
            new_graph.add_edge(new_id, nbr, weight)
        self.stl.graph = new_graph
        self._rebuild()
        return new_id

    # ------------------------------------------------------------------ #

    def _rebuild(self) -> None:
        graph = self.stl.graph
        hierarchy = build_hierarchy(graph, self.options)
        labels = build_labels(graph, hierarchy)
        self.stl.hierarchy = hierarchy
        self.stl.labels = labels
        self.stl.set_maintenance(self.stl.maintenance_mode)
