"""Vectorised query and maintenance kernels over the CSR label store.

The PR 6 refactor flattened every label into one contiguous ``array('d')``
entries buffer plus an offsets array precisely so that bulk operations could
run as a handful of C-level array sweeps instead of per-pair Python loops.
This module is that payoff:

* :func:`batch_query` answers a whole batch of distance queries with one
  fused gather + segment-min over the flat buffer -- per-pair common-prefix
  lengths are computed in bulk from the hierarchy's partition bitstrings
  (:func:`common_prefix_lengths`), the two prefix runs of every pair are
  gathered with two fancy-indexing passes, and ``np.minimum.reduceat``
  reduces each pair's segment.  Python overhead is O(1) per *batch* instead
  of O(prefix) per *pair*.
* :func:`seed_affected_rows` and :func:`interval_hit_levels` lift the
  increase mark phases' ``on_old_shortest_path`` predicate to a tolerance
  compare over whole label rows at once; both the Pareto interval mark
  search and Label Search's affected-seed pass call them (falling back to
  their scalar loops on short rows, where the numpy call overhead loses).

numpy is an *optional* dependency (install the ``repro[fast]`` extra): every
entry point has a pure-Python fallback selected at import time, and the
scalar and vectorised paths are bit-for-bit identical -- both do the same
float64 additions and comparisons, just batched -- which the property tests
assert entry-wise.

Cached array views
------------------
``np.frombuffer`` over the store's flat buffer shares memory with it, so a
cached view stays coherent under in-place entry writes; what invalidates it
is the buffer being *replaced* (``share_into`` / ``unshare`` moving the
entries into or out of a shared-memory segment).  :func:`label_arrays`
therefore caches the ``(entries, offsets)`` ndarray pair on the
:class:`repro.core.labelling.STLLabels` object itself, and the store drops
the cache whenever it adopts a new buffer (observable as a
``buffer_epoch`` bump) -- resident workers can never read a view over a
segment that has been unmapped.
"""

from __future__ import annotations

import math
import struct
from array import array
from typing import TYPE_CHECKING, Any, Sequence

from repro.utils.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.labelling import STLLabels
    from repro.hierarchy.tree import StableTreeHierarchy

try:  # pragma: no cover - exercised via both CI legs, not branch coverage
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

#: Whether the vectorised kernels are available in this interpreter.
HAS_NUMPY = _np is not None

#: Kernel names accepted by ``batch_query(kernel=...)``.
KERNEL_NAMES = ("scalar", "vector")

#: The kernel ``kernel=None`` resolves to (import-time selection).
DEFAULT_KERNEL = "vector" if HAS_NUMPY else "scalar"

#: Relative slack for the mark phases' "does this old shortest path run
#: through the updated edge" test (Algorithm 2 line 5 / Algorithm 4 line
#: 17).  Exact float equality only survives while every label entry is
#: bitwise-identical to the left-to-right relaxation sum that built it;
#: decrease repairs write entries as differently-associated sums of the same
#: reals, so after the first decrease an exact test silently misses affected
#: entries.  Over-marking is repair-safe, so the slack trades a sliver of
#: extra repair work for robustness on any label state.  (Moved here from
#: ``label_search`` so the row-level kernels and the scalar predicate share
#: one constant; ``label_search`` re-exports both.)
MARK_SLACK = 1e-9

#: Minimum row span before the row-level mark kernels beat their scalar
#: loops: a numpy call costs a few microseconds of fixed overhead (buffer
#: wrap, slicing, ufunc dispatch) while the scalar loop runs ~0.15us per
#: level, so short intervals stay scalar.  Tests monkeypatch this to 1 to
#: force the vector path when asserting scalar/vector mark parity.
VECTOR_MIN_SPAN = 32

#: Pairs per chunk of the fused batch-query gather.  The gather's working
#: set is roughly ``3 * 8 bytes * chunk * avg_prefix`` (two index arrays
#: plus the summed entries); chunking keeps it inside the cache hierarchy,
#: which measures ~3x faster than one monolithic pass at paper scale
#: (20k pairs x ~300-entry prefixes = a 45MB temporary otherwise).
_QUERY_CHUNK_PAIRS = 1024

#: Maximum hierarchy node depth the int64 bitstring kernels support.  The
#: builder's balanced bisection keeps depth around log2(n / leaf_size), so
#: this is never hit on real road networks; a pathological hierarchy falls
#: back to the scalar prefix computation rather than overflowing.
_MAX_BITS_DEPTH = 62


def on_old_shortest_path(candidate: float, entry: float) -> bool:
    """Whether ``candidate`` realises ``entry`` up to float re-association."""
    return abs(candidate - entry) <= MARK_SLACK * max(1.0, entry)


def normalize_kernel(kernel: str | None) -> str:
    """Map a ``batch_query(kernel=...)`` argument to a kernel name.

    ``None`` resolves to :data:`DEFAULT_KERNEL` (``"vector"`` when numpy
    imported at module load, ``"scalar"`` otherwise).  An explicit
    ``"vector"`` without numpy raises -- silently degrading an explicit
    request would make benchmark labels lie.  Bad names raise
    :class:`repro.utils.errors.ConfigError` (a :class:`ValueError`
    subclass).
    """
    if kernel is None:
        return DEFAULT_KERNEL
    if kernel in KERNEL_NAMES:
        if kernel == "vector" and not HAS_NUMPY:
            raise ConfigError(
                "kernel='vector' requires numpy, which is not installed; "
                "install the repro[fast] extra or use kernel='scalar'"
            )
        return kernel
    allowed = ", ".join(repr(name) for name in KERNEL_NAMES)
    raise ConfigError(
        f"unknown query kernel {kernel!r}; allowed kernels: {allowed} (or None)"
    )


# --------------------------------------------------------------------------- #
# Cached numpy views
# --------------------------------------------------------------------------- #


def label_arrays(labels: "STLLabels") -> tuple[Any, Any]:
    """The ``(entries, offsets)`` float64/int64 ndarray pair of ``labels``.

    Cached on the store itself (one ``np.frombuffer`` per buffer adoption,
    not per query batch); the arrays *share memory* with the flat buffer, so
    in-place entry writes are immediately visible through them.  The store
    clears the cache whenever it adopts a new buffer (``share_into`` /
    ``unshare`` / deserialisation) -- see ``STLLabels.buffer_epoch``.
    """
    cached = labels._np_cache
    if cached is not None:
        return cached
    entries = _np.frombuffer(labels.view, dtype=_np.float64)
    offsets = _np.frombuffer(labels.offsets, dtype=_np.int64)
    labels._np_cache = (entries, offsets)
    return labels._np_cache


def _as_row_array(row: Any) -> Any:
    """Wrap one label row (a ``'d'`` memoryview or ``array('d')``) as float64."""
    return _np.frombuffer(row, dtype=_np.float64)


# --------------------------------------------------------------------------- #
# Bulk common-prefix lengths from the hierarchy bitstrings
# --------------------------------------------------------------------------- #


def hierarchy_arrays(hierarchy: "StableTreeHierarchy") -> dict[str, Any] | None:
    """Flat ndarray mirrors of the hierarchy's LCA machinery (cached).

    Returns ``None`` (and caches the refusal) when numpy is unavailable or a
    node sits deeper than :data:`_MAX_BITS_DEPTH` -- the int64 bitstring
    arithmetic below would overflow, so such hierarchies stay on the scalar
    path.  The hierarchy is immutable after construction, so the cache never
    invalidates.
    """
    cached = getattr(hierarchy, "_kernel_arrays", "missing")
    if cached != "missing":
        return cached
    arrays: dict[str, Any] | None = None
    if HAS_NUMPY and hierarchy.nodes:
        max_depth = max(node.depth for node in hierarchy.nodes)
        if max_depth <= _MAX_BITS_DEPTH:
            num_nodes = len(hierarchy.nodes)
            depth = _np.empty(num_nodes, dtype=_np.int64)
            bits = _np.empty(num_nodes, dtype=_np.int64)
            cum_count = _np.empty(num_nodes, dtype=_np.int64)
            path_table = _np.zeros((num_nodes, max_depth + 1), dtype=_np.int64)
            for node in hierarchy.nodes:
                depth[node.index] = node.depth
                bits[node.index] = node.bits
                cum_count[node.index] = node.cumulative_count
                path_table[node.index, : node.depth + 1] = node.path
            arrays = {
                "tau": _np.asarray(hierarchy.tau, dtype=_np.int64),
                "node_of": _np.asarray(hierarchy.node_of, dtype=_np.int64),
                "depth": depth,
                "bits": bits,
                "cum_count": cum_count,
                "path_table": path_table,
            }
    hierarchy._kernel_arrays = arrays
    return arrays


def _bit_length(x: Any) -> Any:
    """Vectorised ``int.bit_length`` for non-negative int64 arrays."""
    x = x.astype(_np.uint64)
    for shift in (1, 2, 4, 8, 16, 32):
        x |= x >> _np.uint64(shift)
    if hasattr(_np, "bitwise_count"):  # numpy >= 2.0
        return _np.bitwise_count(x).astype(_np.int64)
    # Fallback: after the fold x+1 is a power of two <= 2**63, exactly
    # representable in float64, so log2 is exact.
    return _np.rint(_np.log2(x.astype(_np.float64) + 1.0)).astype(_np.int64)


def common_prefix_lengths(
    hierarchy: "StableTreeHierarchy", s: Any, t: Any, arrays: dict[str, Any] | None = None
) -> Any:
    """``num_common_ancestors`` for whole index arrays at once.

    ``s``/``t`` are int64 ndarrays of vertex ids (already bounds-checked);
    the result is an int64 ndarray of per-pair label-prefix lengths,
    entry-wise equal to :meth:`StableTreeHierarchy.num_common_ancestors`.
    """
    h = arrays if arrays is not None else hierarchy_arrays(hierarchy)
    assert h is not None, "caller must check hierarchy_arrays() first"
    ns = h["node_of"][s]
    nt = h["node_of"][t]
    ds = h["depth"][ns]
    dt = h["depth"][nt]
    d = _np.minimum(ds, dt)
    bs = h["bits"][ns] >> (ds - d)
    bt = h["bits"][nt] >> (dt - d)
    lca_depth = d - _bit_length(bs ^ bt)
    lca_node = h["path_table"][ns, lca_depth]
    chain = _np.minimum(h["tau"][s], h["tau"][t]) + 1
    return _np.minimum(chain, h["cum_count"][lca_node])


# --------------------------------------------------------------------------- #
# batch_query: scalar and vector kernels + dispatch
# --------------------------------------------------------------------------- #


def _check_pair_bounds(s: Any, t: Any, num_vertices: int) -> None:
    """Replicate the scalar path's ``IndexError`` contract for id arrays."""
    for ids in (s, t):
        bad = _np.nonzero((ids < 0) | (ids >= num_vertices))[0]
        if bad.size:
            i = int(bad[0])
            if s[i] < 0 or t[i] < 0:
                raise IndexError(
                    f"vertex ids must be non-negative, got ({int(s[i])}, {int(t[i])})"
                )
            raise IndexError(
                f"vertex id out of range for {num_vertices} vertices: "
                f"({int(s[i])}, {int(t[i])})"
            )


def batch_query_vector(
    hierarchy: "StableTreeHierarchy",
    labels: "STLLabels",
    pairs: Sequence[tuple[int, int]],
    arrays: dict[str, Any] | None = None,
) -> list[float]:
    """The fused numpy batch query (see the module docstring for the scheme).

    Entry-wise equal to mapping :func:`repro.core.query.query_distance` over
    ``pairs``: ``0.0`` for ``s == t``, ``inf`` for disconnected pairs, the
    segment-min of ``L(s)[i] + L(t)[i]`` over the common prefix otherwise.
    """
    if not len(pairs):
        return []
    pair_array = _np.asarray(pairs, dtype=_np.int64).reshape(len(pairs), 2)
    s = pair_array[:, 0]
    t = pair_array[:, 1]
    _check_pair_bounds(s, t, len(labels))
    entries, offsets = label_arrays(labels)
    prefix = common_prefix_lengths(hierarchy, s, t, arrays)

    result = _np.full(len(pairs), math.inf)
    same = s == t
    result[same] = 0.0
    active = ~same & (prefix > 0)
    if active.any():
        p = prefix[active]
        off_s = offsets[s[active]]
        off_t = offsets[t[active]]
        out = _np.empty(len(p))
        for lo in range(0, len(p), _QUERY_CHUNK_PAIRS):
            hi = min(lo + _QUERY_CHUNK_PAIRS, len(p))
            cp = p[lo:hi]
            starts = _np.zeros(hi - lo, dtype=_np.int64)
            _np.cumsum(cp[:-1], out=starts[1:])
            # One flat position index per scanned entry; np.repeat turns
            # the per-pair row bases into per-entry gather indexes.
            pos = _np.arange(int(starts[-1] + cp[-1]), dtype=_np.int64)
            pos -= _np.repeat(starts, cp)
            idx = _np.repeat(off_s[lo:hi], cp)
            idx += pos
            sums = entries[idx]
            idx = _np.repeat(off_t[lo:hi], cp)
            idx += pos
            sums += entries[idx]
            out[lo:hi] = _np.minimum.reduceat(sums, starts)
        result[active] = out
    return result.tolist()


def batch_query_scalar(
    hierarchy: "StableTreeHierarchy",
    labels: "STLLabels",
    pairs: Sequence[tuple[int, int]],
) -> list[float]:
    """The pure-Python fallback: one :func:`query_distance` per pair."""
    from repro.core.query import query_distance

    return [query_distance(hierarchy, labels, s, t) for s, t in pairs]


def batch_query(
    hierarchy: "StableTreeHierarchy",
    labels: "STLLabels",
    pairs: Sequence[tuple[int, int]],
    kernel: str | None = None,
) -> list[float]:
    """Answer a batch of distance queries with the chosen kernel.

    ``kernel`` is ``"scalar"``, ``"vector"`` or ``None`` (import-time
    default: vector when numpy is installed).  A hierarchy too deep for the
    int64 bitstring arithmetic silently degrades to scalar -- the answers
    are identical either way.
    """
    chosen = normalize_kernel(kernel)
    if chosen == "vector":
        arrays = hierarchy_arrays(hierarchy)
        if arrays is not None:
            return batch_query_vector(hierarchy, labels, pairs, arrays)
    return batch_query_scalar(hierarchy, labels, pairs)


# --------------------------------------------------------------------------- #
# Row-level mark kernels (the increase phases of both engines)
# --------------------------------------------------------------------------- #

_ROW_TYPES = (memoryview, array)


def seed_affected_rows(
    label_a: Any, label_b: Any, w_old: float, prefix: int
) -> tuple[Any, Any] | None:
    """Vectorised Algorithm 2 seed test over the whole common prefix.

    Returns ``(push_b, push_a)`` -- the label indexes where the old shortest
    path of ``b`` (resp. ``a``) runs through the updated edge, exactly the
    indexes the scalar loop in ``seed_affected_queues`` seeds (including its
    ``elif``: an index never seeds both sides).  Returns ``None`` when the
    vector path does not apply (no numpy, short prefix, or rows that are not
    flat buffers) so the caller falls back to the scalar loop.
    """
    if (
        not HAS_NUMPY
        or prefix < VECTOR_MIN_SPAN
        or not isinstance(label_a, _ROW_TYPES)
        or not isinstance(label_b, _ROW_TYPES)
    ):
        return None
    da = _as_row_array(label_a)[:prefix]
    db = _as_row_array(label_b)[:prefix]
    with _np.errstate(invalid="ignore"):
        finite = _np.isfinite(da) & _np.isfinite(db)
        slack_b = MARK_SLACK * _np.maximum(1.0, db)
        slack_a = MARK_SLACK * _np.maximum(1.0, da)
        push_b = finite & (_np.abs((da + w_old) - db) <= slack_b)
        push_a = finite & ~push_b & (_np.abs((db + w_old) - da) <= slack_a)
    return _np.nonzero(push_b)[0], _np.nonzero(push_a)[0]


def interval_hit_levels(
    d: float, root_row: Any, label_row: Any, lo: int, hi: int
) -> list[int] | None:
    """Vectorised Algorithm 4 line-17 test over an active interval.

    Returns the levels ``i`` in ``[lo, hi]`` where ``d + L(root)[i]``
    realises ``L(v)[i]`` (the scalar loop's exact hit set, skipping ``inf``
    entries on either side), or ``None`` when the vector path does not apply.
    """
    if (
        not HAS_NUMPY
        or hi - lo + 1 < VECTOR_MIN_SPAN
        or not isinstance(root_row, _ROW_TYPES)
        or not isinstance(label_row, _ROW_TYPES)
    ):
        return None
    root = _as_row_array(root_row)[lo : hi + 1]
    row = _as_row_array(label_row)[lo : hi + 1]
    with _np.errstate(invalid="ignore"):
        mask = _np.isfinite(root) & _np.isfinite(row)
        mask &= _np.abs((d + root) - row) <= MARK_SLACK * _np.maximum(1.0, row)
    return [int(i) + lo for i in _np.nonzero(mask)[0]]


# --------------------------------------------------------------------------- #
# Construction kernels (the parallel builder of repro.core.construction)
# --------------------------------------------------------------------------- #

#: ``struct.pack('d', inf)``, repeated to fill buffers without numpy.  4096
#: doubles per memcpy keeps the pure-Python loop at ~n/4096 iterations.
_INF_CHUNK = struct.pack("=d", math.inf) * 4096


def fill_unreachable(view: memoryview) -> None:
    """Fill a ``'d'``-format buffer with ``inf`` (the UNREACHABLE sentinel).

    The parallel builder pre-sizes one shared-memory segment for the whole
    CSR entries buffer and must initialise every slot before workers start
    writing their disjoint label indexes into it.  With numpy this is one
    C-level ``fill`` over a zero-copy view; without it, repeated slabs of
    pre-packed ``inf`` bytes -- both fill tens of millions of entries in
    milliseconds, where a per-entry Python loop would take longer than the
    Dijkstras it prepares for.
    """
    if HAS_NUMPY:
        _np.frombuffer(view, dtype=_np.float64).fill(math.inf)
        return
    raw = view.cast("B")
    nbytes = len(raw)
    chunk = len(_INF_CHUNK)
    for lo in range(0, nbytes - nbytes % chunk, chunk):
        raw[lo : lo + chunk] = _INF_CHUNK
    rest = nbytes % chunk
    if rest:
        raw[nbytes - rest :] = _INF_CHUNK[:rest]


def adjacency_csr(graph: Any) -> tuple[Any, Any, Any] | None:
    """CSR ndarray mirror of a graph's adjacency: ``(indptr, neighbors, weights)``.

    Row ``v`` is ``neighbors[indptr[v]:indptr[v+1]]`` with parallel edge
    weights.  Used by the parallel builder's vectorised per-root adjacency
    scans -- which only engage when some row spans at least
    :data:`VECTOR_MIN_SPAN` neighbours, so bounded-degree road networks stay
    on the scalar search where the numpy call overhead would lose.  Returns
    ``None`` without numpy.
    """
    if not HAS_NUMPY:
        return None
    adjacency = graph.adjacency()
    indptr = _np.zeros(len(adjacency) + 1, dtype=_np.int64)
    for v, row in enumerate(adjacency):
        indptr[v + 1] = indptr[v] + len(row)
    neighbors = _np.empty(int(indptr[-1]), dtype=_np.int64)
    weights = _np.empty(int(indptr[-1]), dtype=_np.float64)
    for v, row in enumerate(adjacency):
        base = int(indptr[v])
        for k, (nbr, weight) in enumerate(row):
            neighbors[base + k] = nbr
            weights[base + k] = weight
    return indptr, neighbors, weights
