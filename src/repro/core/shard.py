"""Sharded parallel batch maintenance: partition-aware planning + worker pool.

:mod:`repro.core.batch` processes a coalesced batch through *shared* mark /
repair phases, but still as one single-threaded pass.  This module splits
that pass along the same structural seams the stable tree hierarchy itself is
built from -- balanced vertex separators (:mod:`repro.partition`):

* :class:`ShardPlanner` bisects the graph's vertex set (recursively, with a
  :class:`repro.partition.bisection.Bisector`) into ``num_shards`` disjoint
  *regions* plus the accumulated separator vertices.  A coalesced batch is
  then split into per-region sub-batches -- an update goes to region ``k``
  when **both** endpoints lie strictly inside region ``k`` -- and a
  *residual* sub-batch holding every separator-touching or region-crossing
  update.  Because :meth:`repro.graph.updates.UpdateBatch.coalesce`
  preserves first-seen edge order and regions are computed once from the
  weight-independent topology, planning is deterministic.
* :class:`ShardedBatchEngine` fans the per-region sub-batches' *read-only*
  work out to a :class:`concurrent.futures.ThreadPoolExecutor`, runs every
  label-writing phase serially, and applies the residual sub-batch serially
  last.

**Equivalence guarantee.**  The engine produces labels entry-wise equal to
what the single-threaded :class:`repro.core.batch.BatchedParetoEngine` (and a
from-scratch rebuild) produces, by construction rather than by scheduling
luck -- concurrency is only ever applied to phases that cannot race:

* *Increases* -- the per-update mark phase is read-only on the graph and the
  labels, so the shards' mark searches run concurrently without any
  synchronisation.  The per-update ``(delta, marks)`` results are then merged
  **in the original coalesced batch order** -- reproducing the serial
  engine's bump accumulation float-for-float -- and a single serial combined
  bump-and-repair (Algorithm 5) finishes exactly as the serial engine would.
* *Decreases* -- one serial shared-frontier pass over all shard decreases,
  identical to the serial engine's decrease half.  Concurrent in-place
  decrease repairs are deliberately **not** attempted: the shared frontier's
  correctness proof starts from the pre-decrease label state (every
  still-unrepaired entry realised by an old-valid path), and from a
  half-repaired state an entry can be stranded behind already-exact
  neighbours -- propagation is improvement-gated, so no later pass would
  reach it (see :meth:`ShardedBatchEngine._apply_decreases`).
* *Residual* -- the region-crossing updates run through the serial
  :class:`BatchedParetoEngine` last, on labels that are exact for the
  mid-batch graph; serial composition of exact engines is exact.

A note on parallelism in CPython: the thread pool provides *concurrency*,
not bytecode-level parallelism, under the GIL, and only the read-only mark
fan-out uses it.  The design's durable value is the plan itself: per-shard
search frontiers only interact through the separator, which is what the
*process* backend exploits -- :class:`repro.core.parallel.ProcessShardBackend`
gives each worker process exclusive ownership of its regions' label rows and
runs whole shard sub-batches (decreases included) in true parallel on the
same plan.  Every engine reports plan quality (``shards``,
``sharded_updates``, ``residual_updates``) so policies can refuse unbalanced
plans.

The three engines sit behind one :class:`ShardBackend` protocol (``serial`` /
``thread`` / ``process``), created by :func:`create_backend` and selected on
:meth:`repro.core.stl.StableTreeLabelling.apply_batch` via the ``parallel``
argument (validated by :func:`normalize_parallel`).  Each backend runs either
batch *engine* -- the Pareto phases above, or batched Label Search
(:mod:`repro.core.batch_label_search`), whose per-label-index queues shard
under the same ownership model with confined drains and escape records
(:meth:`ShardedBatchEngine._apply_label_search`); the ``engine`` argument of
:meth:`ShardBackend.apply` picks per batch.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.core.batch import (
    BatchedParetoEngine,
    BatchPolicy,
    shared_frontier_decrease,
    validate_coalesced,
)
from repro.core.batch_label_search import BatchedLabelSearchEngine, merge_affected_sets
from repro.core.label_search import (
    LabelSearchEscape,
    MaintenanceStats,
    _orient,
    drain_affected_queues,
    drain_decrease_queues,
    queues_from_escapes,
    repair_affected_entries,
    seed_affected_queues,
    seed_decrease_queues,
)
from repro.core.labelling import STLLabels
from repro.core.pareto_search import ParetoSearchIncrease
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch, UpdateKind
from repro.hierarchy.tree import StableTreeHierarchy
from repro.partition.bisection import Bisector, HybridBisector
from repro.utils.errors import ConfigError


def default_num_shards() -> int:
    """Default shard count: one per core, clamped to a useful range."""
    return max(2, min(8, os.cpu_count() or 2))


#: The backend names ``apply_batch(parallel=...)`` accepts (sorted for the
#: error message of :func:`normalize_parallel`).
SHARD_BACKEND_NAMES = ("process", "serial", "thread")


def normalize_parallel(parallel: bool | str | None) -> str | None:
    """Map an ``apply_batch(parallel=...)`` argument to a backend name.

    ``None`` means "let the :class:`repro.core.batch.BatchPolicy` crossover
    decide" and is returned unchanged.  ``False`` forbids sharding
    (``"serial"``), ``True`` keeps its historical meaning of forcing the
    thread backend, and the explicit names ``"serial"`` / ``"thread"`` /
    ``"process"`` select a backend directly.  Anything else -- including the
    merely-truthy values the parameter used to swallow silently -- raises
    :class:`repro.utils.errors.ConfigError` (a :class:`ValueError` subclass)
    naming the allowed set.
    """
    if parallel is None:
        return None
    if isinstance(parallel, bool):
        return "thread" if parallel else "serial"
    if isinstance(parallel, str) and parallel in SHARD_BACKEND_NAMES:
        return parallel
    allowed = ", ".join(repr(name) for name in SHARD_BACKEND_NAMES)
    raise ConfigError(
        f"unknown parallel backend {parallel!r}; allowed backends: {allowed} "
        "(or True/False/None)"
    )


@runtime_checkable
class ShardBackend(Protocol):
    """The surface every sharded-batch backend exposes.

    Implementations: :class:`SerialShardBackend` (no pool -- the batched
    engines behind the backend interface), :class:`ShardedBatchEngine`
    (thread pool, concurrent read-only marks) and
    :class:`repro.core.parallel.ProcessShardBackend` (process pool,
    partitioned label ownership).  All three take a **coalesced** batch,
    run it through the requested batch ``engine`` (``"pareto"`` or
    ``"label_search"``; any engine composes with any backend) and leave
    labels entry-wise equal to that engine's serial result.
    """

    name: str
    planner: "ShardPlanner"

    def apply(
        self,
        updates: Sequence[EdgeUpdate],
        plan: "ShardPlan | None" = None,
        max_workers: int | None = None,
        engine: str = "pareto",
    ) -> MaintenanceStats:
        """Apply one coalesced batch; ``plan`` may be precomputed."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release pool resources (idempotent; trivial for poolless backends)."""
        ...  # pragma: no cover - protocol


@dataclass
class ShardPlan:
    """A coalesced batch split into per-region sub-batches plus a residual.

    Attributes
    ----------
    shards:
        One :class:`UpdateBatch` per planner region (index-aligned with
        :attr:`regions`); possibly empty.  Updates keep their first-seen
        coalesced order within each shard.
    residual:
        The sub-batch of separator-touching and region-crossing updates,
        applied serially after the shards.
    regions:
        The planner's disjoint vertex regions.
    separator:
        The accumulated separator vertices (in no region).
    """

    shards: list[UpdateBatch]
    residual: UpdateBatch
    regions: list[list[int]] = field(default_factory=list)
    separator: list[int] = field(default_factory=list)

    @property
    def num_updates(self) -> int:
        """Total number of planned (net) updates, residual included."""
        return sum(len(s) for s in self.shards) + len(self.residual)

    @property
    def sharded_updates(self) -> int:
        """Number of updates that landed in per-region shards."""
        return sum(len(s) for s in self.shards)

    @property
    def populated_shards(self) -> int:
        """Number of non-empty per-region sub-batches."""
        return sum(1 for s in self.shards if len(s))

    @property
    def balance(self) -> float:
        """Fraction of the net updates that avoid the serial residual shard.

        This is the "shard balance" the :class:`repro.core.batch.BatchPolicy`
        crossover keys on: a plan where most updates cross the separator
        degenerates into the serial engine plus overhead.
        """
        total = self.num_updates
        if total == 0:
            return 0.0
        return self.sharded_updates / total

    def worth_running(self, policy: BatchPolicy) -> bool:
        """Whether this plan clears the policy's balance bar."""
        return policy.accepts_plan(self.populated_shards, self.balance)


class ShardPlanner:
    """Partition-aware splitter of coalesced batches into shard sub-batches.

    The planner bisects the graph's vertex set with a
    :class:`repro.partition.bisection.Bisector` (default
    :class:`~repro.partition.bisection.HybridBisector`, the same family the
    hierarchy builder uses), recursively splitting the largest region until
    ``num_shards`` regions exist.  Separator vertices collect into a shared
    residual set.  Regions depend only on the graph *topology*, which edge
    weight updates never change, so they are computed once and reused for
    every batch.
    """

    def __init__(
        self,
        graph: Graph,
        num_shards: int | None = None,
        bisector: Bisector | None = None,
    ):
        if num_shards is not None and num_shards < 2:
            raise ValueError(f"num_shards must be at least 2, got {num_shards}")
        self.graph = graph
        self.num_shards = num_shards or default_num_shards()
        self.bisector = bisector or HybridBisector()
        self._region_of: list[int] | None = None
        self._regions: list[list[int]] | None = None
        self._separator: list[int] | None = None

    # ------------------------------------------------------------------ #
    # Region computation (lazy, topology-only, cached)
    # ------------------------------------------------------------------ #

    def regions(self) -> tuple[list[list[int]], list[int]]:
        """The planner's disjoint vertex regions and the separator set."""
        if self._regions is None:
            self._compute_regions()
        assert self._regions is not None and self._separator is not None
        return self._regions, self._separator

    def _compute_regions(self) -> None:
        graph = self.graph
        separator: list[int] = []
        # (splittable, region) work list; repeatedly bisect the largest
        # still-splittable region until the target count is reached.
        regions: list[tuple[bool, list[int]]] = [(True, list(range(graph.num_vertices)))]
        while len(regions) < self.num_shards and any(s for s, _ in regions):
            regions.sort(key=lambda item: (item[0], len(item[1])))
            splittable, region = regions.pop()
            if not splittable or len(region) < 2:
                regions.append((False, region))
                break
            bisection = self.bisector.bisect(graph, region)
            separator.extend(bisection.separator)
            halves = [h for h in (bisection.left, bisection.right) if h]
            if len(halves) < 2:
                # The region would not split (e.g. a clique fully absorbed
                # into the separator); keep what remains as unsplittable.
                regions.extend((False, h) for h in halves)
                continue
            regions.extend((True, h) for h in halves)
        self._regions = [sorted(region) for _, region in regions if region]
        self._separator = sorted(separator)
        region_of = [-1] * graph.num_vertices
        for rid, region in enumerate(self._regions):
            for v in region:
                region_of[v] = rid
        self._region_of = region_of

    # ------------------------------------------------------------------ #
    # Batch splitting
    # ------------------------------------------------------------------ #

    def plan(self, batch: Sequence[EdgeUpdate] | UpdateBatch) -> ShardPlan:
        """Split a coalesced batch into per-region sub-batches + residual.

        An update is *internal* to region ``k`` when both endpoints have
        ``region_of == k`` (separator vertices have no region); every other
        update -- separator-touching or region-crossing -- lands in the
        residual.  Iteration order is the batch's own order, so sub-batches
        inherit the deterministic first-seen ordering of
        :meth:`repro.graph.updates.UpdateBatch.coalesce`.
        """
        regions, separator = self.regions()
        region_of = self._region_of
        assert region_of is not None
        shards = [UpdateBatch() for _ in regions]
        residual = UpdateBatch()
        for update in batch:
            ru = region_of[update.u]
            rv = region_of[update.v]
            if ru != -1 and ru == rv:
                shards[ru].append(update)
            else:
                residual.append(update)
        return ShardPlan(
            shards=shards, residual=residual, regions=regions, separator=separator
        )


class ShardedBatchEngine:
    """Thread-pool batch maintenance over a shard plan (backend ``thread``).

    See the module docstring for the phase structure and the equivalence
    argument.  The engine degrades gracefully: a plan with fewer than two
    populated shards (e.g. a batch that is 100% separator-crossing) is
    handed wholesale to the serial :class:`BatchedParetoEngine`.
    """

    name = "thread"

    def __init__(
        self,
        graph: Graph,
        hierarchy: StableTreeHierarchy,
        labels: STLLabels,
        planner: ShardPlanner | None = None,
        max_workers: int | None = None,
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels
        self.planner = planner or ShardPlanner(graph)
        self.max_workers = max_workers
        self._serial = BatchedParetoEngine(graph, hierarchy, labels)
        self._serial_ls = BatchedLabelSearchEngine(graph, hierarchy, labels)
        self._increase = ParetoSearchIncrease(graph, hierarchy, labels)

    def close(self) -> None:
        """Nothing to release: the thread pool is per-:meth:`apply` call."""

    def _serial_engine(self, engine: str):
        return self._serial_ls if engine == "label_search" else self._serial

    def apply(
        self,
        updates: Sequence[EdgeUpdate],
        plan: ShardPlan | None = None,
        max_workers: int | None = None,
        engine: str = "pareto",
    ) -> MaintenanceStats:
        """Apply one coalesced batch through the sharded phases.

        ``plan`` may be supplied when the caller already planned the batch
        (as :meth:`repro.core.stl.StableTreeLabelling.apply_batch` does to
        evaluate the balance crossover); otherwise :attr:`planner` plans it.
        ``engine`` selects the batch engine family the phases decompose
        (``"pareto"`` or ``"label_search"``).  Raises
        :class:`repro.utils.errors.UpdateError` on non-coalesced input
        (same precondition as the serial engines).
        """
        validate_coalesced(self.graph, updates)
        if plan is None:
            plan = self.planner.plan(updates)
        stats = MaintenanceStats(updates_processed=len(updates))
        stats.extra["shards"] = plan.populated_shards
        stats.extra["sharded_updates"] = plan.sharded_updates
        stats.extra["residual_updates"] = len(plan.residual)
        serial = self._serial_engine(engine)

        if plan.populated_shards < 2:
            # Degenerate plan (everything separator-crossing, or a single
            # populated region): the pool cannot help, run serially.
            serial_stats = serial.apply(updates)
            serial_stats.updates_processed = 0  # already counted above
            stats.merge(serial_stats)
            return stats

        shard_increases = [
            [u for u in shard if u.kind is UpdateKind.INCREASE] for shard in plan.shards
        ]
        shard_decreases = [
            [u for u in shard if u.kind is UpdateKind.DECREASE] for shard in plan.shards
        ]
        workers = max_workers or self.max_workers or min(
            plan.populated_shards, os.cpu_count() or 1
        )
        if engine == "label_search":
            stats.merge(
                self._apply_label_search(plan, shard_increases, shard_decreases, workers)
            )
        else:
            # The original coalesced order of the sharded increases; merging
            # the concurrent mark results in this order reproduces the serial
            # engine's bump accumulation float-for-float.
            sharded_edges = {
                (u.u, u.v) if u.u < u.v else (u.v, u.u)
                for shard in plan.shards
                for u in shard
            }
            increase_order = [
                u
                for u in updates
                if u.kind is UpdateKind.INCREASE
                and ((u.u, u.v) if u.u < u.v else (u.v, u.u)) in sharded_edges
            ]
            if any(shard_increases):
                with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
                    stats.merge(
                        self._apply_increases(pool, shard_increases, increase_order)
                    )
            if any(shard_decreases):
                stats.merge(self._apply_decreases(shard_decreases))
        if len(plan.residual):
            residual_stats = serial.apply(plan.residual.updates)
            residual_stats.updates_processed = 0  # already counted above
            stats.merge(residual_stats)
        return stats

    # ------------------------------------------------------------------ #
    # Increases: concurrent read-only marks, ordered merge, serial repair
    # ------------------------------------------------------------------ #

    def _mark_shard(
        self, increases: Sequence[EdgeUpdate], stats: MaintenanceStats
    ) -> dict[tuple[int, int], dict[int, set[int]]]:
        """Worker body: mark phases for one shard's increases (read-only).

        Runs on the unmodified graph and labels, so any number of these can
        run concurrently; ``stats`` is this worker's private counter object.
        Returns per-edge marks so the caller can merge them in the original
        batch order.
        """
        tau = self.hierarchy.tau
        results: dict[tuple[int, int], dict[int, set[int]]] = {}
        for update in increases:
            a, b = _orient(update, tau)
            marks: dict[int, set[int]] = {}
            stats.merge(self._increase.mark_affected(a, b, update.old_weight, marks))
            stats.merge(self._increase.mark_affected(b, a, update.old_weight, marks))
            key = (update.u, update.v) if update.u < update.v else (update.v, update.u)
            results[key] = marks
        return results

    def _apply_increases(
        self,
        pool: ThreadPoolExecutor,
        shard_increases: list[list[EdgeUpdate]],
        increase_order: list[EdgeUpdate],
    ) -> MaintenanceStats:
        stats = MaintenanceStats()
        per_shard_stats = [MaintenanceStats() for _ in shard_increases]
        futures = [
            pool.submit(self._mark_shard, incs, per_shard_stats[k])
            for k, incs in enumerate(shard_increases)
            if incs
        ]
        marks_by_edge: dict[tuple[int, int], dict[int, set[int]]] = {}
        for future in futures:
            marks_by_edge.update(future.result())
        for local in per_shard_stats:
            stats.merge(local)

        # Merge the per-update marks into one bump map *in the original batch
        # order*, reproducing BatchedParetoEngine._apply_increases exactly
        # (same accumulation order means bit-identical bump floats).
        affected: dict[int, dict[int, float]] = {}
        for update in increase_order:
            key = (update.u, update.v) if update.u < update.v else (update.v, update.u)
            delta = update.new_weight - update.old_weight
            for v, levels in marks_by_edge[key].items():
                row = affected.setdefault(v, {})
                for i in levels:
                    row[i] = row.get(i, 0.0) + delta
        stats.vertices_affected += len(affected)

        for update in increase_order:
            self.graph.set_weight(update.u, update.v, update.new_weight)
        if affected:
            stats.merge(self._increase.bump_and_repair(affected))
        return stats

    # ------------------------------------------------------------------ #
    # Decreases: one serial shared frontier (deliberately not pooled)
    # ------------------------------------------------------------------ #

    def _apply_decreases(self, shard_decreases: list[list[EdgeUpdate]]) -> MaintenanceStats:
        """One serial shared-frontier pass over all shard decreases.

        Deliberately *not* fanned out to the pool.  An earlier design ran
        per-shard frontiers concurrently with in-place label writes plus a
        serial "settle" pass afterwards; that is unsound: the shared
        frontier's correctness proof starts from the *pre-decrease* label
        state, where every still-unrepaired entry is realised by an
        old-valid path.  From a half-repaired intermediate state an entry
        can be stranded *behind already-exact neighbours* -- propagation is
        improvement-gated, so the frontier dies before reaching it and no
        later pass re-fires it -- and the unlocked check-then-write pair
        adds a lost-update race that manufactures exactly such states.
        Keeping the decrease pass serial keeps the engine inside the proof.
        The shard split still pays off: per-shard frontiers only interact
        through the separator, which is what a process-pool backend with
        partitioned label ownership would exploit (see ROADMAP).
        """
        all_decreases = [u for shard in shard_decreases for u in shard]
        return shared_frontier_decrease(
            self.graph, self.hierarchy, self.labels, all_decreases
        )

    # ------------------------------------------------------------------ #
    # Label Search: confined per-shard queue drains + serial settlement
    # ------------------------------------------------------------------ #

    def _apply_label_search(
        self,
        plan: ShardPlan,
        shard_increases: list[list[EdgeUpdate]],
        shard_decreases: list[list[EdgeUpdate]],
        workers: int,
    ) -> MaintenanceStats:
        """Sharded Label Search over the plan's per-region sub-batches.

        The same confinement/escape scheme the process backend runs
        (:mod:`repro.core.parallel`), in-process:

        * *Phase 1* (per shard, concurrent) -- seed + drain the per-index
          affected queues confined to the shard's region; the phase is
          read-only on labels, and a frontier step crossing the separator
          becomes a :data:`repro.core.label_search.LabelSearchEscape`.  The
          merged affected sets plus one unconfined settle drain over the
          escapes reproduce the global phase-1 result, after which the
          weights land and one serial per-index repair finishes the half.
        * *Decreases* (per shard, concurrent) -- after all new weights are
          applied, each shard seeds and drains its per-index decrease
          queues, writing **only its own region's rows** (escapes are
          recorded unconditionally rather than gated on an unowned-row
          read); a final unconfined settle drain follows the crossings.
          Unlike the Pareto shared frontier (see
          :meth:`_apply_decreases`), the per-index drain is plain
          improvement-gated relaxation per label index: every write is a
          genuine path length, confined drains replay exactly the chains
          inside their region, and a chain pruned by a better write is
          covered by that write's own continuations or escapes -- so the
          settle pass reaches the same fixpoint as the serial drain.
        """
        tau = self.hierarchy.tau
        labels = self.labels
        stats = MaintenanceStats()
        counters = [0, 0, 0]

        if any(shard_increases):
            adjacency = self.graph.adjacency()

            def mark_shard(
                rid: int,
            ) -> tuple[dict[int, set[int]], list[LabelSearchEscape], list[int]]:
                local_counters = [0, 0, 0]
                queues: dict[int, list[tuple[float, int]]] = {}
                seed_affected_queues(
                    tau, labels, shard_increases[rid], queues, local_counters
                )
                local_affected: dict[int, set[int]] = {}
                local_escapes: list[LabelSearchEscape] = []
                drain_affected_queues(
                    adjacency,
                    tau,
                    labels,
                    queues,
                    local_affected,
                    local_counters,
                    owned=set(plan.regions[rid]),
                    escapes=local_escapes,
                )
                return local_affected, local_escapes, local_counters

            affected_by_index: dict[int, set[int]] = {}
            escapes: list[LabelSearchEscape] = []
            with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
                futures = [
                    pool.submit(mark_shard, rid)
                    for rid, incs in enumerate(shard_increases)
                    if incs
                ]
                for future in futures:
                    local_affected, local_escapes, local_counters = future.result()
                    merge_affected_sets(affected_by_index, local_affected)
                    escapes.extend(local_escapes)
                    for k in range(3):
                        counters[k] += local_counters[k]
            if escapes:
                drain_affected_queues(
                    adjacency,
                    tau,
                    labels,
                    queues_from_escapes(escapes),
                    affected_by_index,
                    counters,
                )
            stats.extra["mark_escapes"] = len(escapes)
            stats.ancestors_touched += len(affected_by_index)
            for affected in affected_by_index.values():
                stats.vertices_affected += len(affected)

            for incs in shard_increases:
                for update in incs:
                    self.graph.set_weight(update.u, update.v, update.new_weight)
            adjacency = self.graph.adjacency()
            for index in sorted(affected_by_index):
                affected = affected_by_index[index]
                if affected:
                    repair_affected_entries(adjacency, tau, labels, index, affected, counters)

        if any(shard_decreases):
            for decs in shard_decreases:
                for update in decs:
                    self.graph.set_weight(update.u, update.v, update.new_weight)
            adjacency = self.graph.adjacency()

            def drain_shard(rid: int) -> tuple[int, list[LabelSearchEscape], list[int]]:
                local_counters = [0, 0, 0]
                queues: dict[int, list[tuple[float, int]]] = {}
                seed_decrease_queues(
                    tau, labels, shard_decreases[rid], queues, local_counters
                )
                local_escapes: list[LabelSearchEscape] = []
                drain_decrease_queues(
                    adjacency,
                    tau,
                    labels,
                    queues,
                    local_counters,
                    owned=set(plan.regions[rid]),
                    escapes=local_escapes,
                )
                return len(queues), local_escapes, local_counters

            dec_escapes: list[LabelSearchEscape] = []
            seeded_indexes = 0
            with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
                futures = [
                    pool.submit(drain_shard, rid)
                    for rid, decs in enumerate(shard_decreases)
                    if decs
                ]
                for future in futures:
                    num_queues, local_escapes, local_counters = future.result()
                    seeded_indexes += num_queues
                    dec_escapes.extend(local_escapes)
                    for k in range(3):
                        counters[k] += local_counters[k]
            stats.ancestors_touched += seeded_indexes
            if dec_escapes:
                drain_decrease_queues(
                    adjacency, tau, labels, queues_from_escapes(dec_escapes), counters
                )
            stats.extra["decrease_escapes"] = len(dec_escapes)

        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        return stats


class SerialShardBackend:
    """The batched serial engines behind the :class:`ShardBackend` surface.

    Exists so callers can treat "no pool at all" as just another backend
    (the ``parallel="serial"`` / ``parallel=False`` route); the plan, if
    provided, is only used for the diagnostic extras.
    """

    name = "serial"

    def __init__(
        self,
        graph: Graph,
        hierarchy: StableTreeHierarchy,
        labels: STLLabels,
        planner: ShardPlanner | None = None,
        max_workers: int | None = None,
    ):
        self.planner = planner or ShardPlanner(graph)
        self._engines = {
            "pareto": BatchedParetoEngine(graph, hierarchy, labels),
            "label_search": BatchedLabelSearchEngine(graph, hierarchy, labels),
        }

    def apply(
        self,
        updates: Sequence[EdgeUpdate],
        plan: ShardPlan | None = None,
        max_workers: int | None = None,
        engine: str = "pareto",
    ) -> MaintenanceStats:
        stats = self._engines[engine].apply(updates)
        if plan is not None:
            stats.extra["shards"] = plan.populated_shards
            stats.extra["sharded_updates"] = plan.sharded_updates
            stats.extra["residual_updates"] = len(plan.residual)
        return stats

    def close(self) -> None:
        """Nothing to release."""


def create_backend(
    name: str,
    graph: Graph,
    hierarchy: StableTreeHierarchy,
    labels: STLLabels,
    planner: ShardPlanner | None = None,
    max_workers: int | None = None,
) -> "ShardBackend":
    """Instantiate a shard backend by name (``serial``/``thread``/``process``).

    The process backend is imported lazily: :mod:`repro.core.parallel`
    imports this module for the plan types, and callers that never go
    multi-process should not pay for the multiprocessing machinery.
    """
    if name == "serial":
        return SerialShardBackend(graph, hierarchy, labels, planner, max_workers)
    if name == "thread":
        return ShardedBatchEngine(graph, hierarchy, labels, planner, max_workers)
    if name == "process":
        from repro.core.parallel import ProcessShardBackend

        return ProcessShardBackend(graph, hierarchy, labels, planner, max_workers)
    allowed = ", ".join(repr(n) for n in SHARD_BACKEND_NAMES)
    raise ValueError(f"unknown shard backend {name!r}; allowed backends: {allowed}")
