"""Pareto Search maintenance algorithms (Algorithms 3-5 of the paper).

Pareto Search is the *update-centric* maintenance strategy: instead of one
search per affected ancestor (Label Search), each edge update triggers exactly
two searches, one from each endpoint, that track whole *intervals* of
ancestor label indexes at once.

The technical obstacle is that labels store distances in nested subgraphs
``S_0 ⊇ S_1 ⊇ ...`` (one per ancestor level), so a path that is valid for a
low level may be invalid for a higher level.  The searches therefore carry a
Pareto-active interval ``[min, max]`` of levels: the interval's upper end is
capped by the label index of every vertex the path visits (so the path stays
inside the corresponding subgraphs), and its lower end is advanced past
levels that have already been processed at a smaller distance (``level(v)``
bookkeeping, Definition 5.11 / Example 5.13).

Contract (same as Label Search): the algorithms are called *before* the
weight change is applied to the graph; on return the graph and the labels
both reflect the new weights.

Implementation note (documented deviation): for weight increases the paper
interleaves each endpoint search with its repair (Algorithm 4 line 28).  We
run both searches on the unmodified labels first, then bump the collected
affected intervals by +Δ (the paper's upper bound, line 18) and run a single
combined repair (Algorithm 5).  This keeps the two-search structure and the
interval grouping while making correctness independent of the order of the
two searches; the tests verify equivalence against a from-scratch rebuild.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Iterable, cast

from repro.core import kernels
from repro.core.label_search import (
    MaintenanceStats,
    _LabelSearchBase,
    _orient,
    on_old_shortest_path,
)
from repro.graph.updates import EdgeUpdate, UpdateKind
from repro.utils.errors import UpdateError

UNREACHABLE = math.inf


def interval_mark_search(
    adjacency,
    tau,
    labels,
    label_root,
    seeds,
    hits: dict[int, set[int]],
    counters: list[int],
    owned: set[int] | None = None,
    escapes: list[tuple[float, int, int, int]] | None = None,
) -> None:
    """The mark half of Algorithm 4 as a reusable kernel.

    This is the single implementation behind
    :meth:`ParetoSearchIncrease.mark_affected` (seeded with the updated
    edge, unconfined) and the process shard backend's confined worker marks
    plus escape settlement (:mod:`repro.core.parallel`).  ``seeds`` are heap
    entries ``(distance, interval_min, vertex, interval_max)``; ``hits``
    collects marked levels per vertex; ``counters`` is ``[heap_pushes,
    labels_changed, vertices_affected]`` (a plain list so worker processes
    can ship it back without pickling a stats object).

    ``adjacency``/``labels`` only need ``[]`` lookup, so the kernel runs on
    the live index and on per-region dict slices alike.  With ``owned``
    given, pushes that leave the owned set are appended to ``escapes`` --
    the exact entry the unconfined search would have pushed -- instead of
    followed.  Ties on distance are processed lowest-interval-first so the
    ``level(v)`` pruning never skips an unexamined level (see
    :meth:`ParetoSearchDecrease._search_and_repair`).

    On wide active intervals the through-the-edge test of each pop runs as
    one whole-row tolerance compare
    (:func:`repro.core.kernels.interval_hit_levels`) -- the same float64
    arithmetic as the scalar loop, so the marked level set is identical
    either way; short intervals (and non-buffer label rows, e.g. worker
    dict slices) keep the scalar loop.
    """
    level: dict[int, int] = {}
    heap: list[tuple[float, int, int, int]] = []
    for seed in seeds:
        heappush(heap, seed)
        counters[0] += 1

    while heap:
        d, active_min, v, active_max = heappop(heap)
        active_max = min(active_max, tau[v])
        active_min = max(active_min, level.get(v, 0))
        if active_min > active_max:
            continue
        level[v] = active_max + 1

        label_v = labels[v]
        new_min = -1
        new_max = -1
        hit_levels = kernels.interval_hit_levels(d, label_root, label_v, active_min, active_max)
        if hit_levels is not None:
            if hit_levels:
                new_min = hit_levels[0]
                new_max = hit_levels[-1]
        else:
            hit_levels = []
            for i in range(active_min, active_max + 1):
                root_dist = label_root[i]
                if math.isinf(root_dist) or math.isinf(label_v[i]):
                    continue
                if on_old_shortest_path(d + root_dist, label_v[i]):
                    hit_levels.append(i)
                    if new_min == -1:
                        new_min = i
                    new_max = i

        if new_min != -1:
            hits.setdefault(v, set()).update(hit_levels)
            for nbr, weight in adjacency[v]:
                if math.isinf(weight) or tau[nbr] < new_min:
                    continue
                entry = (d + weight, new_min, nbr, new_max)
                if owned is not None and nbr not in owned:
                    if escapes is not None:
                        escapes.append(entry)
                    continue
                heappush(heap, entry)
                counters[0] += 1


class _ParetoSearchBase(_LabelSearchBase):
    """Shared plumbing of the decrease / increase Pareto searches.

    The constructor and update normalisation are identical to Label Search's,
    so they are inherited rather than duplicated.
    """


class ParetoSearchDecrease(_ParetoSearchBase):
    """Algorithm 3: Pareto Search for edge-weight decreases.

    For an update ``(a, b, w_new)`` two interval searches run: one rooted at
    ``a`` (starting from ``b``) repairing entries via ``L(a)[i] + d``, and the
    symmetric one rooted at ``b``.  Because the decrease case knows the new
    distance of a vertex the moment it is popped, labels are repaired on the
    fly (Algorithm 3, lines 15-20).
    """

    def apply(self, updates: Iterable[EdgeUpdate] | EdgeUpdate) -> MaintenanceStats:
        """Apply weight decreases one at a time (the paper's per-update form)."""
        stats = MaintenanceStats()
        for update in self._as_update_list(updates):
            if update.kind is UpdateKind.INCREASE:
                raise UpdateError(
                    "ParetoSearchDecrease received a weight increase on edge "
                    f"({update.u}, {update.v})"
                )
            stats.merge(self._apply_single(update))
        return stats

    def _apply_single(self, update: EdgeUpdate) -> MaintenanceStats:
        stats = MaintenanceStats(updates_processed=1)
        graph = self.graph
        graph.set_weight(update.u, update.v, update.new_weight)
        a, b = _orient(update, self.hierarchy.tau)
        stats.merge(self._search_and_repair(a, b, update.new_weight))
        stats.merge(self._search_and_repair(b, a, update.new_weight))
        return stats

    def _search_and_repair(self, root: int, start: int, phi: float) -> MaintenanceStats:
        """One interval search rooted at ``root``, starting from ``start``.

        ``phi`` is the (new) weight of the updated edge, i.e. the length of
        the initial path ``root -> start``.
        """
        stats = MaintenanceStats()
        tau = self.hierarchy.tau
        labels = self.labels
        adjacency = self.graph.adjacency()
        label_root = labels[root]

        level: dict[int, int] = {}
        rmin = min(tau[root], tau[start])
        # Heap entries: (distance, interval_min, vertex, interval_max).  Ties
        # on distance are broken toward *smaller* interval minima: by
        # Lemma 5.9 lower levels never have larger distances, so processing
        # low intervals first guarantees that whenever level(v) skips past a
        # level, that level has already been examined at a distance <= d --
        # which is what makes the single-scalar level(v) pruning safe.
        heap: list[tuple[float, int, int, int]] = [(phi, 0, start, rmin)]
        stats.heap_pushes += 1

        while heap:
            d, active_min, v, active_max = heappop(heap)
            active_max = min(active_max, tau[v])
            active_min = max(active_min, level.get(v, 0))
            if active_min > active_max:
                continue
            level[v] = active_max + 1
            stats.vertices_affected += 1

            label_v = labels[v]
            new_min = -1
            new_max = -1
            for i in range(active_min, active_max + 1):
                root_dist = label_root[i]
                if math.isinf(root_dist):
                    continue
                candidate = d + root_dist
                if candidate < label_v[i]:
                    label_v[i] = candidate
                    stats.labels_changed += 1
                    if new_min == -1:
                        new_min = i
                    new_max = i

            if new_min != -1:
                for nbr, weight in adjacency[v]:
                    # A neighbour with tau < new_min would be discarded at pop
                    # time anyway (its interval collapses past tau); skipping
                    # the push keeps the queue small.
                    if math.isinf(weight) or tau[nbr] < new_min:
                        continue
                    heappush(heap, (d + weight, new_min, nbr, new_max))
                    stats.heap_pushes += 1
        return stats


class ParetoSearchIncrease(_ParetoSearchBase):
    """Algorithms 4-5: Pareto Search for edge-weight increases."""

    def apply(self, updates: Iterable[EdgeUpdate] | EdgeUpdate) -> MaintenanceStats:
        """Apply weight increases one at a time (the paper's per-update form)."""
        stats = MaintenanceStats()
        for update in self._as_update_list(updates):
            if update.kind is UpdateKind.DECREASE:
                raise UpdateError(
                    "ParetoSearchIncrease received a weight decrease on edge "
                    f"({update.u}, {update.v})"
                )
            stats.merge(self._apply_single(update))
        return stats

    def _apply_single(self, update: EdgeUpdate) -> MaintenanceStats:
        stats = MaintenanceStats(updates_processed=1)
        tau = self.hierarchy.tau
        a, b = _orient(update, tau)
        delta = update.new_weight - update.old_weight

        # Phase 1 (old weights): mark the affected (vertex, level) pairs by
        # following old shortest paths through the updated edge, from both
        # endpoints (Algorithm 4).
        affected: dict[int, set[int]] = {}
        stats.merge(self.mark_affected(a, b, update.old_weight, affected))
        stats.merge(self.mark_affected(b, a, update.old_weight, affected))
        stats.vertices_affected += len(affected)

        # Apply the new weight, bump affected entries by +delta (a valid upper
        # bound: a shortest path uses the updated edge at most once), then
        # repair (Algorithm 5).
        self.graph.set_weight(update.u, update.v, update.new_weight)
        if affected:
            stats.merge(self.bump_and_repair(affected, delta))
        return stats

    def mark_affected(
        self,
        root: int,
        start: int,
        phi_old: float,
        affected: dict[int, set[int]],
    ) -> MaintenanceStats:
        """Interval search over *old* shortest paths through the updated edge.

        Collects, per reached vertex, the exact set of ancestor levels whose
        label entry is realised by a path through the updated edge (the
        equality check of Algorithm 4, line 17); the search itself propagates
        the containing interval, as in the paper.  The body is the shared
        :func:`interval_mark_search` kernel, seeded with the updated edge.
        """
        stats = MaintenanceStats()
        tau = self.hierarchy.tau
        rmin = min(tau[root], tau[start])
        counters = [0, 0, 0]
        interval_mark_search(
            self.graph.adjacency(),
            tau,
            self.labels,
            self.labels[root],
            [(phi_old, 0, start, rmin)],
            affected,
            counters,
        )
        stats.heap_pushes += counters[0]
        return stats

    def bump_and_repair(
        self,
        affected: dict[int, dict[int, float]] | dict[int, set[int]],
        delta: float | None = None,
    ) -> MaintenanceStats:
        """Algorithm 5: bump affected entries and repair them.

        With ``delta`` given, ``affected`` maps each vertex to a *set* of
        levels and every entry is bumped by the same +delta -- the
        per-update fast path (Algorithm 4, line 18 applies the bump where
        the equality held), kept allocation-free because it sits on the
        Figure 8/10 per-update hot loop.  Without ``delta``, ``affected``
        maps each vertex to ``{level: bump}`` with per-entry accumulated
        deltas: the batched engine in :mod:`repro.core.batch` sums the
        deltas of every update whose mark phase hit the entry -- still a
        valid upper bound, since keeping any old shortest path costs at most
        its old length plus the deltas of the updated edges it crosses.  The
        repair then restores entries whose true new distance is smaller than
        the bound.  The paper groups affected levels into intervals for cache
        locality -- a C++ consideration; here the exact level sets are used
        directly, which produces the same labels with less Python-level work.
        """
        stats = MaintenanceStats()
        tau = self.hierarchy.tau
        labels = self.labels
        adjacency = self.graph.adjacency()

        # Upper-bound bump (Algorithm 4, line 18): a shortest path uses each
        # updated edge at most once, so old + accumulated delta bounds the
        # new distance.
        for v, levels in affected.items():
            label_v = labels[v]
            items: Iterable[tuple[int, float]]
            if delta is None:
                items = cast("dict[int, float]", levels).items()
            else:
                items = ((i, delta) for i in levels)
            for i, bump in items:
                if not math.isinf(label_v[i]):
                    label_v[i] += bump
                    stats.labels_changed += 1

        # Seed the repair queue from *all* neighbours (Algorithm 5, lines 2-6);
        # unaffected neighbours carry exact distances, affected ones carry
        # their upper bounds.
        heap: list[tuple[float, int, int]] = []
        for v, levels in affected.items():
            label_v = labels[v]
            for nbr, weight in adjacency[v]:
                if math.isinf(weight):
                    continue
                label_n = labels[nbr]
                tau_n = tau[nbr]
                for i in levels:
                    if i > tau_n:
                        continue
                    candidate = label_n[i] + weight
                    if candidate < label_v[i]:
                        heappush(heap, (candidate, v, i))
                        stats.heap_pushes += 1

        # Dijkstra-style repair restricted to the affected entries
        # (Algorithm 5, lines 7-12).
        while heap:
            d, v, i = heappop(heap)
            label_v = labels[v]
            if d >= label_v[i]:
                continue
            label_v[i] = d
            stats.labels_changed += 1
            for nbr, weight in adjacency[v]:
                if math.isinf(weight):
                    continue
                levels = affected.get(nbr)
                if levels is None or i not in levels or i > tau[nbr]:
                    continue
                candidate = d + weight
                if candidate < labels[nbr][i]:
                    heappush(heap, (candidate, nbr, i))
                    stats.heap_pushes += 1
        return stats
