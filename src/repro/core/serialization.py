"""Saving and loading a Stable Tree Labelling.

The on-disk format is a compact JSON document: the hierarchy's node
structure, the per-vertex node assignment and the label arrays.  It is meant
for checkpointing experiment state, not for exchanging indexes between
machines with different graphs -- the graph itself is *not* stored (labels
without their road network are not useful), so ``load_labelling`` takes the
graph as an argument and validates vertex counts.

Besides the JSON checkpoint format, this module hosts the *per-region label
slicing* kept as the interchange format for label rows: a caller receives
copies of the rows of exactly the vertices it asks for (:func:`slice_labels`),
mutates them freely, and merges them back by ownership
(:func:`merge_label_slices`).  Slices are plain ``dict[int, list[float]]``
so they pickle cheaply and losslessly.  The process-pool shard backend no
longer ships slices per batch (workers are resident on a shared-memory
mapping, see :mod:`repro.core.parallel`), but slicing remains the baseline
that the shipping-cost calibration (:mod:`repro.core.calibration`) measures
against, and tools still use it for row-level surgery.
"""

from __future__ import annotations

import json
import math
import os
from array import array
from typing import TYPE_CHECKING, Iterable, Mapping, TextIO

from repro.core.labelling import STLLabels
from repro.core.stl import StableTreeLabelling
from repro.graph.graph import Graph
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import LabellingError, SerializationError

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle guard)
    from repro.core.snapshot import LabelSnapshot

#: Version 2 added ``construction_seconds``; version 3 stores the labels as
#: one flat entries buffer plus a CSR offsets array (``labels_flat`` /
#: ``label_offsets``) instead of nested per-vertex lists.  Old payloads of
#: either shape are still readable: version 1 (no ``construction_seconds``)
#: reports a construction time of 0.0, and the decoder branches on which
#: label keys are present rather than on the version number.
FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
_INF_SENTINEL = -1.0


def _encode_distance(value: float) -> float:
    return _INF_SENTINEL if math.isinf(value) else value


def _decode_distance(value: float) -> float:
    return math.inf if value == _INF_SENTINEL else value


def _hierarchy_nodes_payload(hierarchy: StableTreeHierarchy) -> list[dict]:
    """The JSON shape of the hierarchy's node structure."""
    return [
        {
            "parent": node.parent,
            "is_right": (
                node.parent != -1
                and hierarchy.nodes[node.parent].right == node.index
            ),
            "vertices": node.vertices,
        }
        for node in hierarchy.nodes
    ]


def serialize_labelling(stl: StableTreeLabelling) -> dict:
    """Turn an index into a JSON-serialisable dict."""
    return {
        "format_version": FORMAT_VERSION,
        "num_vertices": stl.hierarchy.num_vertices,
        "maintenance": stl.maintenance_mode,
        "construction_seconds": stl.construction_seconds,
        "nodes": _hierarchy_nodes_payload(stl.hierarchy),
        "label_offsets": list(stl.labels.offsets),
        "labels_flat": [_encode_distance(d) for d in stl.labels.view],
    }


def deserialize_labelling(payload: dict, graph: Graph) -> StableTreeLabelling:
    """Rebuild an index from :func:`serialize_labelling` output."""
    if payload.get("format_version") not in _SUPPORTED_VERSIONS:
        raise SerializationError(f"unsupported format version {payload.get('format_version')!r}")
    num_vertices = payload["num_vertices"]
    if num_vertices != graph.num_vertices:
        raise SerializationError(
            f"payload covers {num_vertices} vertices, graph has {graph.num_vertices}"
        )
    hierarchy = StableTreeHierarchy(num_vertices)
    for entry in payload["nodes"]:
        node = hierarchy.add_node(entry["parent"], entry["is_right"])
        hierarchy.assign_vertices(node, entry["vertices"])
    hierarchy.finalize()
    if "labels_flat" in payload:
        try:
            labels = STLLabels.from_flat(
                array("d", (_decode_distance(d) for d in payload["labels_flat"])),
                array("q", payload["label_offsets"]),
            )
        except (LabellingError, OverflowError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed flat label store: {exc}") from exc
    else:
        labels = STLLabels([[_decode_distance(d) for d in label] for label in payload["labels"]])
    if len(labels) != num_vertices:
        raise SerializationError(
            f"payload stores labels for {len(labels)} vertices, expected {num_vertices}"
        )
    for v in range(num_vertices):
        if len(labels[v]) != hierarchy.tau[v] + 1:
            raise SerializationError(
                f"label of vertex {v} has {len(labels[v])} entries, "
                f"expected {hierarchy.tau[v] + 1}"
            )
    return StableTreeLabelling(
        graph,
        hierarchy,
        labels,
        payload.get("maintenance", "pareto"),
        construction_seconds=float(payload.get("construction_seconds", 0.0)),
    )


# --------------------------------------------------------------------------- #
# Per-region label slicing (process-pool shard backend)
# --------------------------------------------------------------------------- #

def slice_labels(labels: STLLabels, vertices: Iterable[int]) -> dict[int, list[float]]:
    """Copy the label rows of ``vertices`` into a pickle-friendly dict.

    The rows are *copies*: the caller mutates its slice freely without the
    index observing partial states.  This was the per-batch shipping format
    of the process backend before workers became shared-memory resident; it
    is kept as the slice-shipping baseline the calibration helper measures
    delta shipping against.
    """
    return {v: list(labels[v]) for v in vertices}


def region_label_slices(
    labels: STLLabels, regions: Iterable[Iterable[int]]
) -> list[dict[int, list[float]]]:
    """One :func:`slice_labels` dict per planner region (index-aligned)."""
    return [slice_labels(labels, region) for region in regions]


def merge_label_slices(
    labels: STLLabels,
    slices: Mapping[int, list[float]],
    owned: Iterable[int] | None = None,
) -> int:
    """Write mutated label rows back into ``labels``; returns rows written.

    ``owned`` restricts the merge to an ownership set (rows for other
    vertices are ignored rather than merged -- the coordinator's guard
    against a buggy worker overwriting entries it does not own).  Row
    lengths are validated: a vertex's label length is fixed by the
    hierarchy, so a mismatch means the slice belongs to a different index.
    """
    allowed = None if owned is None else set(owned)
    written = 0
    for v, row in slices.items():
        if allowed is not None and v not in allowed:
            continue
        if len(labels[v]) != len(row):
            raise SerializationError(
                f"label slice for vertex {v} has {len(row)} entries, "
                f"index stores {len(labels[v])}"
            )
        labels.set_row(v, row)
        written += 1
    return written


def save_labelling(stl: StableTreeLabelling, path_or_handle: str | TextIO) -> None:
    """Write an index to a JSON file (or open handle)."""
    payload = serialize_labelling(stl)
    if isinstance(path_or_handle, (str, os.PathLike)):
        with open(path_or_handle, "w", encoding="ascii") as handle:
            json.dump(payload, handle)
    else:
        json.dump(payload, path_or_handle)


def load_labelling(path_or_handle: str | TextIO, graph: Graph) -> StableTreeLabelling:
    """Read an index written by :func:`save_labelling`."""
    if isinstance(path_or_handle, (str, os.PathLike)):
        with open(path_or_handle, "r", encoding="ascii") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(path_or_handle)
    return deserialize_labelling(payload, graph)


# --------------------------------------------------------------------------- #
# Snapshot persistence (warm service restarts)
# --------------------------------------------------------------------------- #

#: Snapshot payloads wrap a labelling payload (re-using the format above)
#: plus the frozen graph's edge list -- unlike a bare labelling checkpoint, a
#: snapshot must be self-contained: a restarted service has no other record
#: of the weights its persisted labels were computed against, and the
#: fallback tier runs bounded Dijkstra on exactly those weights.
SNAPSHOT_FORMAT_VERSION = 1


def serialize_snapshot(snapshot: "LabelSnapshot") -> dict:
    """Turn a live :class:`~repro.core.snapshot.LabelSnapshot` into a dict.

    The caller should hold the snapshot acquired while serialising (the
    serving layer does) so the generation cannot be reclaimed mid-encode; a
    snapshot that has already been reclaimed is refused.
    """
    if snapshot.disposed:
        raise SerializationError("cannot persist a reclaimed snapshot")
    payload: dict = {
        "snapshot_format": SNAPSHOT_FORMAT_VERSION,
        "snapshot_version": snapshot.version,
        "num_vertices": snapshot.graph.num_vertices,
        "edges": [
            [u, v, _encode_distance(w)] for u, v, w in snapshot.graph.edges()
        ],
    }
    if snapshot.labels is not None:
        payload["labelling"] = {
            "format_version": FORMAT_VERSION,
            "num_vertices": snapshot.graph.num_vertices,
            "maintenance": "pareto",
            "construction_seconds": 0.0,
            "nodes": _hierarchy_nodes_payload(snapshot.hierarchy),
            "label_offsets": list(snapshot.labels.offsets),
            "labels_flat": [_encode_distance(d) for d in snapshot.labels.view],
        }
    return payload


def deserialize_snapshot(payload: dict) -> "LabelSnapshot":
    """Rebuild a snapshot from :func:`serialize_snapshot` output.

    A payload without a ``labelling`` section (persisted before the first
    labelling landed) round-trips to a fallback-only snapshot.
    """
    from repro.core.snapshot import LabelSnapshot

    if payload.get("snapshot_format") != SNAPSHOT_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported snapshot format {payload.get('snapshot_format')!r}"
        )
    graph = Graph(int(payload["num_vertices"]))
    try:
        for u, v, w in payload["edges"]:
            graph.add_edge(int(u), int(v), _decode_distance(float(w)))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed snapshot edge list: {exc}") from exc
    version = int(payload.get("snapshot_version", 0))
    if "labelling" in payload:
        stl = deserialize_labelling(payload["labelling"], graph)
        return LabelSnapshot(stl.hierarchy, stl.labels, graph, version)
    return LabelSnapshot(None, None, graph, version)


def save_snapshot(snapshot: "LabelSnapshot", path_or_handle: str | TextIO) -> None:
    """Write a snapshot to a JSON file (or open handle)."""
    payload = serialize_snapshot(snapshot)
    if isinstance(path_or_handle, (str, os.PathLike)):
        with open(path_or_handle, "w", encoding="ascii") as handle:
            json.dump(payload, handle)
    else:
        json.dump(payload, path_or_handle)


def load_snapshot(path_or_handle: str | TextIO) -> "LabelSnapshot":
    """Read a snapshot written by :func:`save_snapshot`."""
    if isinstance(path_or_handle, (str, os.PathLike)):
        with open(path_or_handle, "r", encoding="ascii") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(path_or_handle)
    return deserialize_snapshot(payload)
