"""Stable Tree Labelling: construction, queries and dynamic maintenance."""

from repro.core.batch import BatchedParetoEngine, BatchPolicy
from repro.core.labelling import STLLabels, build_labels
from repro.core.query import query_distance
from repro.core.shard import (
    SerialShardBackend,
    ShardBackend,
    ShardedBatchEngine,
    ShardPlan,
    ShardPlanner,
    create_backend,
    normalize_parallel,
)
from repro.core.stl import StableTreeLabelling
from repro.core.label_search import LabelSearchDecrease, LabelSearchIncrease
from repro.core.parallel import ProcessShardBackend
from repro.core.pareto_search import ParetoSearchDecrease, ParetoSearchIncrease

__all__ = [
    "BatchPolicy",
    "BatchedParetoEngine",
    "STLLabels",
    "build_labels",
    "query_distance",
    "SerialShardBackend",
    "ShardBackend",
    "ShardedBatchEngine",
    "ShardPlan",
    "ShardPlanner",
    "create_backend",
    "normalize_parallel",
    "ProcessShardBackend",
    "StableTreeLabelling",
    "LabelSearchDecrease",
    "LabelSearchIncrease",
    "ParetoSearchDecrease",
    "ParetoSearchIncrease",
]
