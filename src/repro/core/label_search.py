"""Label Search maintenance algorithms (Algorithms 1 and 2 of the paper).

Label Search is the *ancestor-centric* maintenance strategy: for every
ancestor ``r`` whose subgraph contains an updated edge, a pruned Dijkstra-like
search from the updated edge repairs the label entries at label index
``tau(r)``.

Both algorithms share the same contract:

* they are called **before** the weight change is applied to the graph,
* on return, both the graph and the labels reflect the new weights.

The decrease algorithm (Algorithm 1) applies the new weights first and then
searches, because shorter paths are discovered with their final distance and
can be repaired immediately.  The increase algorithm (Algorithm 2) must first
identify affected vertices on the *old* graph (by following old shortest
paths through the updated edges), then applies the new weights and repairs
the affected entries from their unaffected neighbours (Lemma 5.5).

Because label entries are indexed by *label index* rather than by ancestor
vertex, updates touching different subtrees can share the per-index priority
queues: their search regions are disjoint subgraphs, so the searches never
interact.  This is what lets a whole batch be processed with one pass over
the queues, as in the paper's batched formulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Iterable, Sequence

from repro.core import kernels
from repro.core.kernels import (  # noqa: F401 - MARK_SLACK is a back-compat re-export
    MARK_SLACK,
    on_old_shortest_path,
)
from repro.core.labelling import STLLabels
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateKind
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import UpdateError

UNREACHABLE = math.inf

#: Escape record of a *confined* per-label-index queue: ``(index, distance,
#: vertex)`` -- the heap entry an unconfined drain would have pushed at a
#: separator crossing.  The Label Search analogue of the Pareto escape
#: records settled by :mod:`repro.core.parallel`.
#:
#: The ``on_old_shortest_path`` predicate and its ``MARK_SLACK`` tolerance
#: (documented in :mod:`repro.core.kernels`, which also hosts their
#: whole-row vectorised forms) are re-exported above -- the mark phases
#: below and their historical importers keep using them from here.
LabelSearchEscape = tuple[int, float, int]


@dataclass
class MaintenanceStats:
    """Counters describing the work done by one maintenance call.

    These back the paper's performance analysis (Section 7.2): the number of
    affected label entries and the number of heap operations explain why one
    method is faster than another on a given update.
    """

    updates_processed: int = 0
    ancestors_touched: int = 0
    labels_changed: int = 0
    vertices_affected: int = 0
    heap_pushes: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "MaintenanceStats") -> None:
        """Accumulate another stats object into this one."""
        self.updates_processed += other.updates_processed
        self.ancestors_touched += other.ancestors_touched
        self.labels_changed += other.labels_changed
        self.vertices_affected += other.vertices_affected
        self.heap_pushes += other.heap_pushes
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value


def _orient(update: EdgeUpdate, tau: list[int]) -> tuple[int, int]:
    """Return the update's endpoints ``(a, b)`` with ``tau(a) < tau(b)``.

    Lemma 5.3: for any edge one endpoint precedes the other in the stable
    tree hierarchy, so the orientation is always well defined.
    """
    u, v = update.u, update.v
    if tau[u] == tau[v]:
        raise UpdateError(
            f"edge ({u}, {v}) joins two vertices with equal label index; "
            "the hierarchy does not cover this graph"
        )
    return (u, v) if tau[u] < tau[v] else (v, u)


# --------------------------------------------------------------------------- #
# Shared search kernels
#
# The module-level functions below are the single implementation of the
# Algorithm 1/2 searches, shared by the per-kind classes further down, the
# batched engine (:mod:`repro.core.batch_label_search`) and the sharded
# backends (:mod:`repro.core.shard`, :mod:`repro.core.parallel`).  All take
# ``counters == [heap_pushes, labels_changed, vertices_affected]`` and the
# drains accept the same ``owned``/``escapes`` confinement contract as
# :func:`repro.core.batch.shared_frontier_relax`: with ``owned`` given, a
# frontier push leaving the owned set is recorded as a
# :data:`LabelSearchEscape` instead of followed.
# --------------------------------------------------------------------------- #


def seed_decrease_queues(
    tau: Sequence[int],
    labels,
    decreases: Iterable[EdgeUpdate],
    queues: dict[int, list[tuple[float, int]]],
    counters: list[int],
) -> None:
    """Seed the per-label-index decrease queues (Algorithm 1, lines 2-7).

    Must run with the **new** weights already known to the caller (the seeds
    use ``update.new_weight`` directly, so graph state does not matter here);
    both endpoints' label rows are read.
    """
    for update in decreases:
        a, b = _orient(update, tau)
        w_new = update.new_weight
        label_a = labels[a]
        label_b = labels[b]
        for i in range(tau[a] + 1):
            da, db = label_a[i], label_b[i]
            if da + w_new < db:
                queues.setdefault(i, [])
                heappush(queues[i], (da + w_new, b))
                counters[0] += 1
            elif db + w_new < da:
                queues.setdefault(i, [])
                heappush(queues[i], (db + w_new, a))
                counters[0] += 1


def drain_decrease_queues(
    adjacency,
    tau: Sequence[int],
    labels,
    queues: dict[int, list[tuple[float, int]]],
    counters: list[int],
    owned: set[int] | None = None,
    escapes: list[LabelSearchEscape] | None = None,
) -> None:
    """One pruned search per seeded label index (Algorithm 1, lines 8-14).

    Requires the **new** weights in ``adjacency``.  When confined, a push
    toward an unowned vertex is escaped *unconditionally* -- the usual
    improvement gate would read the unowned row, which another region's
    owner may be rewriting concurrently; the settle drain's pop gate
    (``d < label_v[i]``) re-applies the test on merged state, so the only
    cost is a possibly-superfluous escape record.
    """
    for i, heap in queues.items():
        while heap:
            d, v = heappop(heap)
            label_v = labels[v]
            if d < label_v[i]:
                label_v[i] = d
                counters[1] += 1
                for nbr, weight in adjacency[v]:
                    if tau[nbr] <= i or math.isinf(weight):
                        continue
                    if owned is not None and nbr not in owned:
                        if escapes is not None:
                            escapes.append((i, d + weight, nbr))
                        continue
                    if d + weight < labels[nbr][i]:
                        heappush(heap, (d + weight, nbr))
                        counters[0] += 1


def seed_affected_queues(
    tau: Sequence[int],
    labels,
    increases: Iterable[EdgeUpdate],
    queues: dict[int, list[tuple[float, int]]],
    counters: list[int],
) -> None:
    """Seed the phase-1 affected-vertex queues (Algorithm 2, lines 2-8).

    Must run on the **old** weights (the seeds use ``update.old_weight``);
    the through-the-edge tests tolerate float re-association via
    :func:`on_old_shortest_path` -- over-marking only costs repair work,
    under-marking loses the whole delta.

    On long label rows the through-the-edge test runs as one whole-row
    tolerance compare (:func:`repro.core.kernels.seed_affected_rows`) -- the
    same float64 arithmetic as the scalar loop, so the seeded index set is
    identical either way (regression-tested against the scalar predicate).
    """
    for update in increases:
        a, b = _orient(update, tau)
        w_old = update.old_weight
        label_a = labels[a]
        label_b = labels[b]
        seeded = kernels.seed_affected_rows(label_a, label_b, w_old, tau[a] + 1)
        if seeded is not None:
            push_b, push_a = seeded
            for i in push_b:
                i = int(i)
                queues.setdefault(i, [])
                heappush(queues[i], (label_a[i] + w_old, b))
                counters[0] += 1
            for i in push_a:
                i = int(i)
                queues.setdefault(i, [])
                heappush(queues[i], (label_b[i] + w_old, a))
                counters[0] += 1
            continue
        for i in range(tau[a] + 1):
            da, db = label_a[i], label_b[i]
            if math.isinf(da) or math.isinf(db):
                continue
            if on_old_shortest_path(da + w_old, db):
                queues.setdefault(i, [])
                heappush(queues[i], (da + w_old, b))
                counters[0] += 1
            elif on_old_shortest_path(db + w_old, da):
                queues.setdefault(i, [])
                heappush(queues[i], (db + w_old, a))
                counters[0] += 1


def drain_affected_queues(
    adjacency,
    tau: Sequence[int],
    labels,
    queues: dict[int, list[tuple[float, int]]],
    affected_by_index: dict[int, set[int]],
    counters: list[int],
    owned: set[int] | None = None,
    escapes: list[LabelSearchEscape] | None = None,
) -> None:
    """Follow old shortest paths outward, growing per-index affected sets
    (Algorithm 2, lines 9-14).

    Runs on the **old** weights and is read-only on the labels, which is
    what makes the confined variant race-free without any write discipline.
    ``affected_by_index`` may arrive pre-populated (the coordinator settling
    escapes on sets merged from its workers); membership checks against it
    prune re-exploration.  Unlike the decrease drain, escapes *are* gated on
    :func:`on_old_shortest_path` -- the phase is globally read-only, so the
    unowned label read is safe, and an ungated escape would flood the
    coordinator with vertices the predicate immediately rejects.
    """
    for i, heap in queues.items():
        affected = affected_by_index.setdefault(i, set())
        while heap:
            d, v = heappop(heap)
            if v in affected:
                continue
            affected.add(v)
            for nbr, weight in adjacency[v]:
                if (
                    tau[nbr] <= i
                    or math.isinf(weight)
                    or nbr in affected
                    or math.isinf(labels[nbr][i])
                    or not on_old_shortest_path(d + weight, labels[nbr][i])
                ):
                    continue
                if owned is not None and nbr not in owned:
                    if escapes is not None:
                        escapes.append((i, d + weight, nbr))
                    continue
                heappush(heap, (d + weight, nbr))
                counters[0] += 1


def repair_affected_entries(
    adjacency,
    tau: Sequence[int],
    labels,
    index: int,
    affected: set[int],
    counters: list[int],
) -> None:
    """Recompute ``L(v)[index]`` for every ``v`` in ``affected`` (Algorithm 2,
    Function Repair; Lemma 5.5).

    Requires the **new** weights in ``adjacency``.  Counts one label change
    per affected vertex (every affected entry is rewritten); the internal
    Dijkstra relaxations are not billed as heap pushes, matching the
    historical per-update accounting.
    """
    heap: list[tuple[float, int]] = []
    for v in affected:
        best = UNREACHABLE
        for nbr, weight in adjacency[v]:
            # A neighbour with tau == index is necessarily the ancestor
            # itself (adjacent vertices are comparable, Lemma 5.3), whose
            # label entry is 0 -- it must participate in the bound, or a
            # vertex whose shortest path is the direct edge to the
            # ancestor would be over-estimated.
            if tau[nbr] >= index and nbr not in affected and not math.isinf(weight):
                candidate = labels[nbr][index] + weight
                if candidate < best:
                    best = candidate
        labels[v][index] = best
        if best < UNREACHABLE:
            heappush(heap, (best, v))

    counters[1] += len(affected)
    while heap:
        d, v = heappop(heap)
        if d > labels[v][index]:
            continue
        for nbr, weight in adjacency[v]:
            if tau[nbr] > index and not math.isinf(weight):
                candidate = d + weight
                if candidate < labels[nbr][index]:
                    labels[nbr][index] = candidate
                    heappush(heap, (candidate, nbr))


def queues_from_escapes(
    escapes: Iterable[LabelSearchEscape],
) -> dict[int, list[tuple[float, int]]]:
    """Rebuild per-index heaps from escape records for a settle drain."""
    queues: dict[int, list[tuple[float, int]]] = {}
    for index, distance, vertex in sorted(escapes):
        queues.setdefault(index, [])
        heappush(queues[index], (distance, vertex))
    return queues


class _LabelSearchBase:
    """Shared plumbing of the decrease / increase Label Searches."""

    def __init__(self, graph: Graph, hierarchy: StableTreeHierarchy, labels: STLLabels):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels

    @staticmethod
    def _as_update_list(updates: Iterable[EdgeUpdate] | EdgeUpdate) -> list[EdgeUpdate]:
        if isinstance(updates, EdgeUpdate):
            return [updates]
        return list(updates)


class LabelSearchDecrease(_LabelSearchBase):
    """Algorithm 1: Label Search for edge-weight decreases."""

    def apply(self, updates: Iterable[EdgeUpdate] | EdgeUpdate) -> MaintenanceStats:
        """Apply a batch of weight decreases and repair the labels."""
        updates = self._as_update_list(updates)
        stats = MaintenanceStats()
        tau = self.hierarchy.tau
        labels = self.labels
        graph = self.graph

        # Decreases are applied to the graph first: the searches below follow
        # paths in the *new* graph, and any path through an updated edge must
        # already see the new weight.
        for update in updates:
            if update.kind is UpdateKind.INCREASE:
                raise UpdateError(
                    "LabelSearchDecrease received a weight increase on edge "
                    f"({update.u}, {update.v})"
                )
            graph.set_weight(update.u, update.v, update.new_weight)
            stats.updates_processed += 1

        # Seed one priority queue per affected ancestor label index
        # (Algorithm 1, lines 2-7), then one pruned search per index
        # (lines 8-14); both via the shared module-level kernels.
        queues: dict[int, list[tuple[float, int]]] = {}
        counters = [0, 0, 0]
        seed_decrease_queues(tau, labels, updates, queues, counters)
        stats.ancestors_touched += len(queues)
        drain_decrease_queues(graph.adjacency(), tau, labels, queues, counters)
        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        return stats


class LabelSearchIncrease(_LabelSearchBase):
    """Algorithm 2: Label Search for edge-weight increases."""

    def apply(self, updates: Iterable[EdgeUpdate] | EdgeUpdate) -> MaintenanceStats:
        """Apply a batch of weight increases and repair the labels."""
        updates = self._as_update_list(updates)
        stats = MaintenanceStats()
        tau = self.hierarchy.tau
        labels = self.labels
        graph = self.graph

        for update in updates:
            if update.kind is UpdateKind.DECREASE:
                raise UpdateError(
                    "LabelSearchIncrease received a weight decrease on edge "
                    f"({update.u}, {update.v})"
                )

        # Phase 1 (on OLD weights): find, per ancestor index, the vertices
        # whose old shortest path to the ancestor runs through an updated
        # edge (Algorithm 2, lines 2-14), via the shared kernels.
        queues: dict[int, list[tuple[float, int]]] = {}
        counters = [0, 0, 0]
        seed_affected_queues(tau, labels, updates, queues, counters)
        stats.ancestors_touched += len(queues)
        affected_by_index: dict[int, set[int]] = {}
        drain_affected_queues(
            graph.adjacency(), tau, labels, queues, affected_by_index, counters
        )
        for affected in affected_by_index.values():
            stats.vertices_affected += len(affected)

        # Apply the new weights before repairing.
        for update in updates:
            graph.set_weight(update.u, update.v, update.new_weight)
            stats.updates_processed += 1

        # Phase 2: repair every affected entry from its unaffected neighbours
        # (Algorithm 2, Function Repair; Lemma 5.5).
        adjacency = graph.adjacency()
        for i, affected in affected_by_index.items():
            if affected:
                repair_affected_entries(adjacency, tau, labels, i, affected, counters)
        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        return stats
