"""Empirical calibration for the batch-policy crossovers.

Two knobs of :class:`repro.core.batch.BatchPolicy` are grounded in
measurement rather than analysis, and this module provides the measurement
for both: :func:`calibrate_shipping` for the **backend** crossover
(``process_min_updates``) and :func:`calibrate_engines` for the **engine**
crossover (``label_search_max_updates``).

:class:`repro.core.batch.BatchPolicy.process_min_updates` decides when a
sharded batch is routed to the process pool.  The right value depends on
what a batch actually costs to *ship* to the workers, which changed
fundamentally with shared-memory residency: the legacy protocol re-pickled
every owned label row (plus adjacency rows) out to the workers and the
mutated rows back, per batch, so its cost scaled with the *region* size; the
resident protocol ships only the update records and the weight deltas since
the last sync, so its cost scales with the *batch* size and is invisible
next to the engine work.

This module measures both protocols on the live planner regions --
synthetic coalesced batches of configurable sizes, pickled exactly as the
backends would ship them -- and derives a recommended crossover: the
smallest measured batch size whose resident shipping overhead stays below a
fraction of the batch's serial processing time.  ``benchmarks/perf_smoke.py``
runs the calibration on the smoke workload and records the measurements in
its JSON artifact, which is where the documented default of
``process_min_updates`` comes from.
"""

from __future__ import annotations

import pickle
import random
import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.labelling import STLLabels
from repro.core.serialization import slice_labels
from repro.core.shard import ShardPlanner
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch, UpdateKind
from repro.hierarchy.tree import StableTreeHierarchy

#: Conservative cost of one request/reply pipe round trip (pickle framing,
#: two context switches); folded into the recommended-crossover overhead.
ROUND_TRIP_SECONDS = 0.0005


@dataclass(frozen=True)
class ShippingMeasurement:
    """Measured per-batch shipping cost of both protocols at one batch size.

    ``slice_*`` is the legacy slice-shipping protocol (owned label rows +
    adjacency rows out, mutated label rows back); ``delta_*`` is the
    resident protocol (update records + weight deltas, nothing back but
    escapes/marks, which both protocols pay identically and are therefore
    excluded).  Seconds cover one pickle/unpickle round of the payloads.
    """

    updates: int
    slice_bytes: int
    slice_seconds: float
    delta_bytes: int
    delta_seconds: float

    @property
    def bytes_ratio(self) -> float:
        """How many times more bytes slice shipping moves per batch."""
        return self.slice_bytes / max(1, self.delta_bytes)

    @property
    def seconds_ratio(self) -> float:
        """How many times longer slice shipping takes per batch."""
        return self.slice_seconds / max(1e-12, self.delta_seconds)


@dataclass(frozen=True)
class ShippingCalibration:
    """Result of :func:`calibrate_shipping`: one measurement per batch size."""

    measurements: tuple[ShippingMeasurement, ...]

    def recommended_min_updates(
        self,
        per_update_seconds: float,
        overhead_fraction: float = 0.1,
        round_trips: int = 2,
    ) -> int:
        """Smallest measured batch size worth routing to the process pool.

        A batch amortises the pool when its fixed per-batch overhead --
        resident shipping plus ``round_trips`` pipe round trips -- stays
        below ``overhead_fraction`` of the batch's serial processing time
        (``updates * per_update_seconds``, e.g. the ``batched`` series of
        the perf smoke divided by its update count).  Falls back to twice
        the largest measured size when no measured size qualifies.
        """
        for m in sorted(self.measurements, key=lambda m: m.updates):
            overhead = m.delta_seconds + round_trips * ROUND_TRIP_SECONDS
            if overhead <= overhead_fraction * m.updates * per_update_seconds:
                return m.updates
        return 2 * max(m.updates for m in self.measurements)

    def as_dict(self) -> dict:
        """JSON-friendly form (recorded by the perf-smoke artifact)."""
        return {
            "measurements": [
                {
                    "updates": m.updates,
                    "slice_bytes": m.slice_bytes,
                    "slice_seconds": m.slice_seconds,
                    "delta_bytes": m.delta_bytes,
                    "delta_seconds": m.delta_seconds,
                    "bytes_ratio": m.bytes_ratio,
                    "seconds_ratio": m.seconds_ratio,
                }
                for m in self.measurements
            ],
        }


def _synthetic_batch(graph: Graph, num_updates: int, seed: int) -> Sequence[EdgeUpdate]:
    """A coalesced mixed batch over random edges (both update kinds)."""
    rng = random.Random(seed)
    edges = list(graph.edges())
    current = {(u, v): w for u, v, w in edges}
    batch = UpdateBatch()
    for _ in range(num_updates):
        u, v, _ = edges[rng.randrange(len(edges))]
        old = current[(u, v)]
        new = round(old * rng.uniform(0.5, 2.0), 3)
        batch.append(EdgeUpdate(u, v, old, new))
        current[(u, v)] = new
    return batch.coalesce(graph).updates


def _pickle_round(payload: object) -> tuple[int, float]:
    """(bytes, seconds) of one dumps+loads round at the highest protocol."""
    start = time.perf_counter()
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    pickle.loads(blob)
    return len(blob), time.perf_counter() - start


def calibrate_shipping(
    graph: Graph,
    labels: STLLabels,
    planner: ShardPlanner | None = None,
    batch_sizes: Sequence[int] = (48, 96, 192, 384),
    seed: int = 2025,
    rounds: int = 3,
) -> ShippingCalibration:
    """Measure slice-vs-delta shipping on the planner's regions.

    For each batch size a synthetic coalesced batch is planned, and the
    exact per-worker payloads of both protocols are pickled and unpickled
    ``rounds`` times (the minimum is kept).  Slice shipping pays the owned
    label rows and adjacency rows outbound plus the mutated label rows
    inbound; delta shipping pays the update records plus one absolute-weight
    triple per updated edge, split over its two sync messages.
    """
    planner = planner or ShardPlanner(graph)
    tau_like = list(range(graph.num_vertices))  # placeholder of identical pickle shape
    measurements = []
    for size in batch_sizes:
        updates = _synthetic_batch(graph, size, seed + size)
        plan = planner.plan(updates)
        slice_tasks = []
        delta_tasks = []
        adjacency = graph.adjacency()
        for rid, shard in enumerate(plan.shards):
            if not len(shard):
                continue
            region = plan.regions[rid]
            records = [
                (u.u, u.v, u.old_weight, u.new_weight)
                for u in shard
            ]
            increases = [r for r, u in zip(records, shard) if u.kind is UpdateKind.INCREASE]
            decreases = [r for r, u in zip(records, shard) if u.kind is UpdateKind.DECREASE]
            rows = slice_labels(labels, region)
            slice_tasks.append(
                {
                    "owned": list(region),
                    "tau": tau_like,
                    "adjacency": {v: list(adjacency[v]) for v in region},
                    "labels": rows,
                    "increases": increases,
                    "decreases": decreases,
                }
            )
            deltas = [(min(u, v), max(u, v), new) for u, v, _old, new in records]
            delta_tasks.append(
                {
                    "weight_deltas": deltas,
                    "increases": increases,
                    "decreases": decreases,
                }
            )
        slice_return = [task["labels"] for task in slice_tasks]
        slice_bytes = 0
        slice_seconds = float("inf")
        delta_bytes = 0
        delta_seconds = float("inf")
        for _ in range(max(1, rounds)):
            out_bytes, out_secs = _pickle_round(slice_tasks)
            back_bytes, back_secs = _pickle_round(slice_return)
            slice_bytes = out_bytes + back_bytes
            slice_seconds = min(slice_seconds, out_secs + back_secs)
            d_bytes, d_secs = _pickle_round(delta_tasks)
            delta_bytes = d_bytes
            delta_seconds = min(delta_seconds, d_secs)
        measurements.append(
            ShippingMeasurement(
                updates=len(updates),
                slice_bytes=slice_bytes,
                slice_seconds=slice_seconds,
                delta_bytes=delta_bytes,
                delta_seconds=delta_seconds,
            )
        )
    return ShippingCalibration(measurements=tuple(measurements))


@dataclass(frozen=True)
class EngineMeasurement:
    """Serial batch seconds of both engine families at one batch size.

    Both engines process the *same* synthetic coalesced batch from the same
    starting labels (independent graph/label copies), so the two timings are
    directly comparable; ``rounds`` timings are taken and the minimum kept.
    """

    updates: int
    pareto_seconds: float
    label_search_seconds: float

    @property
    def speedup(self) -> float:
        """How many times faster Label Search ran (>1 means it won)."""
        return self.pareto_seconds / max(1e-12, self.label_search_seconds)


@dataclass(frozen=True)
class EngineCalibration:
    """Result of :func:`calibrate_engines`: one measurement per batch size."""

    measurements: tuple[EngineMeasurement, ...]

    def recommended_label_search_max(self) -> int | None:
        """Largest measured batch size up to which Label Search kept winning.

        Scans the measurements in ascending batch size and stops at the
        first size where the Pareto engine was strictly faster -- the
        crossover must be a *prefix* property (route small batches to Label
        Search, large ones to Pareto), so an isolated Label Search win
        beyond a loss does not extend the recommendation.  Returns ``None``
        when Label Search lost even at the smallest measured size.
        """
        best: int | None = None
        for m in sorted(self.measurements, key=lambda m: m.updates):
            if m.label_search_seconds > m.pareto_seconds:
                break
            best = m.updates
        return best

    def as_dict(self) -> dict:
        """JSON-friendly form (recorded by the perf-smoke artifact)."""
        return {
            "measurements": [
                {
                    "updates": m.updates,
                    "pareto_seconds": m.pareto_seconds,
                    "label_search_seconds": m.label_search_seconds,
                    "speedup": m.speedup,
                }
                for m in self.measurements
            ],
            "recommended_label_search_max": self.recommended_label_search_max(),
        }


def calibrate_engines(
    graph: Graph,
    hierarchy: StableTreeHierarchy,
    labels: STLLabels,
    batch_sizes: Sequence[int] = (24, 48, 96, 192, 384),
    seed: int = 2025,
    rounds: int = 3,
) -> EngineCalibration:
    """Race the two serial batch engines across a range of batch sizes.

    For each size, a synthetic mixed batch is coalesced once and applied by
    each engine ``rounds`` times, every application starting from a fresh
    copy of the graph and labels so no engine sees the other's writes (or
    its own previous round's); the minimum wall time per engine is kept.
    The perf smoke records the result, and
    :attr:`repro.core.batch.BatchPolicy.label_search_max_updates` documents
    the recommendation this produced on the smoke workload.
    """
    from repro.core.batch import BatchedParetoEngine
    from repro.core.batch_label_search import BatchedLabelSearchEngine

    measurements = []
    for size in batch_sizes:
        updates = _synthetic_batch(graph, size, seed + size)
        timings = {"pareto": float("inf"), "label_search": float("inf")}
        for name, engine_cls in (
            ("pareto", BatchedParetoEngine),
            ("label_search", BatchedLabelSearchEngine),
        ):
            for _ in range(max(1, rounds)):
                graph_copy = graph.copy()
                labels_copy = labels.copy()
                engine = engine_cls(graph_copy, hierarchy, labels_copy)
                start = time.perf_counter()
                engine.apply(updates)
                timings[name] = min(timings[name], time.perf_counter() - start)
        measurements.append(
            EngineMeasurement(
                updates=len(updates),
                pareto_seconds=timings["pareto"],
                label_search_seconds=timings["label_search"],
            )
        )
    return EngineCalibration(measurements=tuple(measurements))
