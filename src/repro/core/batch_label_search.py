"""Batched Label Search maintenance (the Algorithm 1/2 engine, batch-lifted).

The per-kind Label Search classes (:mod:`repro.core.label_search`) already
share per-label-index priority queues across the updates of one ``apply``
call -- the module docstring's observation that searches rooted in disjoint
subtrees never interact.  :class:`BatchedLabelSearchEngine` completes the
lift to the batch regime of :class:`repro.core.batch.BatchedParetoEngine`:
one engine object that takes a whole **coalesced** batch (one net update per
edge, mixed kinds) and processes it in two passes over shared queues:

* **Increases first** -- one seed + drain pass over the *old* weights grows
  the per-index affected sets for every net increase at once
  (:func:`repro.core.label_search.seed_affected_queues` /
  :func:`~repro.core.label_search.drain_affected_queues`), then the new
  weights land and every affected entry is repaired from its unaffected
  neighbours in a single per-index repair
  (:func:`~repro.core.label_search.repair_affected_entries`).
* **Decreases second**, on the increased graph -- apply the new weights,
  seed the per-index decrease queues for the whole group and drain each
  queue once (:func:`~repro.core.label_search.seed_decrease_queues` /
  :func:`~repro.core.label_search.drain_decrease_queues`).

The two kind groups touch disjoint edges (coalescing guarantees it), so the
increase pass's weight writes never invalidate a decrease's recorded old
weight -- the same ordering argument as the Pareto batch engine.

This engine is the Label Search analogue of ``BatchedParetoEngine`` in the
engine x backend matrix (see docs/architecture.md): it serves as the
``serial`` backend, as the degenerate-plan and residual fallback of the
``thread``/``process`` backends, and as the settle substrate those backends'
escape records drain into.  Select it per batch with
``StableTreeLabelling.apply_batch(engine="label_search")`` or let
:meth:`repro.core.batch.BatchPolicy.engine_for` pick.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.batch import validate_coalesced
from repro.core.label_search import (
    MaintenanceStats,
    drain_affected_queues,
    drain_decrease_queues,
    repair_affected_entries,
    seed_affected_queues,
    seed_decrease_queues,
)
from repro.core.labelling import STLLabels
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateKind
from repro.hierarchy.tree import StableTreeHierarchy


def merge_affected_sets(
    target: dict[int, set[int]], source: dict[int, Sequence[int] | set[int]]
) -> None:
    """Union per-index affected sets into ``target`` (shard/worker merge).

    Affected sets are *sets of marked vertices*, so the union over shards is
    exactly the set a global phase-1 search would have produced -- each
    shard replays the chains inside its region verbatim and hands crossing
    chains on as escapes, whose settle drain grows these same sets further.
    """
    for index, vertices in source.items():
        target.setdefault(index, set()).update(vertices)


class BatchedLabelSearchEngine:
    """Shared-queue Label Search over a coalesced batch of updates."""

    def __init__(self, graph: Graph, hierarchy: StableTreeHierarchy, labels: STLLabels):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels

    def apply(self, updates: Sequence[EdgeUpdate]) -> MaintenanceStats:
        """Apply one coalesced batch (at most one net update per edge).

        Net increases are processed first (their phase-1 search must see the
        pre-batch weights), then net decreases on the increased graph;
        NEUTRAL net updates change nothing but are counted as processed.
        Raises :class:`repro.utils.errors.UpdateError` on non-coalesced or
        stale input, exactly like the Pareto batch engine.
        """
        validate_coalesced(self.graph, updates)
        increases = [u for u in updates if u.kind is UpdateKind.INCREASE]
        decreases = [u for u in updates if u.kind is UpdateKind.DECREASE]
        stats = MaintenanceStats(updates_processed=len(updates))
        if increases:
            stats.merge(self._apply_increases(increases))
        if decreases:
            stats.merge(self._apply_decreases(decreases))
        return stats

    # ------------------------------------------------------------------ #
    # Increases: one shared phase-1 pass, one combined per-index repair
    # ------------------------------------------------------------------ #

    def _apply_increases(self, increases: Sequence[EdgeUpdate]) -> MaintenanceStats:
        stats = MaintenanceStats()
        tau = self.hierarchy.tau
        labels = self.labels
        counters = [0, 0, 0]

        queues: dict[int, list[tuple[float, int]]] = {}
        seed_affected_queues(tau, labels, increases, queues, counters)
        stats.ancestors_touched += len(queues)
        affected_by_index: dict[int, set[int]] = {}
        drain_affected_queues(
            self.graph.adjacency(), tau, labels, queues, affected_by_index, counters
        )
        for affected in affected_by_index.values():
            stats.vertices_affected += len(affected)

        for update in increases:
            self.graph.set_weight(update.u, update.v, update.new_weight)

        adjacency = self.graph.adjacency()
        for index in sorted(affected_by_index):
            affected = affected_by_index[index]
            if affected:
                repair_affected_entries(adjacency, tau, labels, index, affected, counters)
        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        return stats

    # ------------------------------------------------------------------ #
    # Decreases: one shared seed + drain pass on the new weights
    # ------------------------------------------------------------------ #

    def _apply_decreases(self, decreases: Sequence[EdgeUpdate]) -> MaintenanceStats:
        stats = MaintenanceStats()
        tau = self.hierarchy.tau
        labels = self.labels
        counters = [0, 0, 0]

        for update in decreases:
            self.graph.set_weight(update.u, update.v, update.new_weight)

        queues: dict[int, list[tuple[float, int]]] = {}
        seed_decrease_queues(tau, labels, decreases, queues, counters)
        stats.ancestors_touched += len(queues)
        drain_decrease_queues(self.graph.adjacency(), tau, labels, queues, counters)
        stats.heap_pushes += counters[0]
        stats.labels_changed += counters[1]
        return stats
