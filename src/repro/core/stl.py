"""The public facade of Stable Tree Labelling.

:class:`StableTreeLabelling` ties the hierarchy, the label construction, the
query and the four maintenance algorithms into one object with the life cycle
a downstream user needs:

>>> from repro import StableTreeLabelling, generators
>>> graph = generators.grid_road_network(16, 16, seed=1)
>>> stl = StableTreeLabelling.build(graph)
>>> d = stl.query(0, graph.num_vertices - 1)
>>> stl.increase_edge(0, 1, new_weight=graph.weight(0, 1) * 2)
>>> stl.decrease_edge(0, 1, new_weight=graph.weight(0, 1) / 2)

Maintenance strategy defaults to Pareto Search (the paper's fastest variant);
``maintenance="label_search"`` selects the ancestor-centric Algorithms 1-2
instead, which is how the STL-L rows of Table 3 are produced.
"""

from __future__ import annotations

import math
import warnings
from typing import TYPE_CHECKING, Iterable, Literal

from repro.core.batch import BatchedParetoEngine, BatchPolicy, normalize_engine
from repro.core.batch_label_search import BatchedLabelSearchEngine
from repro.core.config import DEFAULT_CONFIG, STLConfig
from repro.core.shard import (
    ShardBackend,
    ShardedBatchEngine,
    ShardPlanner,
    normalize_parallel,
)
from repro.core.label_search import (
    LabelSearchDecrease,
    LabelSearchIncrease,
    MaintenanceStats,
)
from repro.core.construction import build_index
from repro.core.labelling import STLLabels, build_labels
from repro.core.pareto_search import ParetoSearchDecrease, ParetoSearchIncrease
from repro.core.query import batch_query, query_distance, query_with_hub
from repro.core.stats import IndexStats
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch, UpdateKind
from repro.hierarchy.builder import BuildReport, HierarchyOptions
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import ConfigError, UpdateError
from repro.utils.memory import MemoryEstimate
from repro.utils.timer import Timer
from repro.utils.validation import check_vertex

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle guard)
    from repro.core.snapshot import LabelSnapshot

MaintenanceMode = Literal["pareto", "label_search"]


def _deprecated_kwarg(old: str, replacement: str) -> None:
    """Emit the shim warning for a legacy per-call kwarg.

    ``stacklevel=3`` points the warning at the caller of the public method
    (caller -> method -> here).
    """
    warnings.warn(
        f"the {old} argument is deprecated; pass {replacement} instead "
        "(see docs/api.md, 'Migrating to STLConfig')",
        DeprecationWarning,
        stacklevel=3,
    )


class StableTreeLabelling:
    """Stable Tree Labelling index over a dynamic road network.

    Instances are normally created with :meth:`build`; the constructor is for
    advanced uses (pre-built hierarchies, deserialisation).
    """

    def __init__(
        self,
        graph: Graph,
        hierarchy: StableTreeHierarchy,
        labels: STLLabels,
        maintenance: MaintenanceMode = "pareto",
        construction_seconds: float = 0.0,
        batch_policy: BatchPolicy | None = None,
        config: STLConfig | None = None,
        build_report: BuildReport | None = None,
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels
        self.construction_seconds = construction_seconds
        #: Construction diagnostics + phase timing breakdown; ``None`` for
        #: indexes assembled from pre-built parts (deserialisation).
        self.build_report = build_report
        self.config = config or DEFAULT_CONFIG
        self.batch_policy = batch_policy or self.config.policy or BatchPolicy()
        self._close_pending = False
        self.set_maintenance(maintenance)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        graph: Graph,
        options: HierarchyOptions | None = None,
        maintenance: MaintenanceMode = "pareto",
        *,
        construction: str | None = None,
        max_workers: int | None = None,
    ) -> "StableTreeLabelling":
        """Build the index: stable tree hierarchy + subgraph-distance labels.

        ``construction`` selects the build pipeline: ``"serial"`` (the
        in-process recursion), ``"parallel"`` (the process-parallel
        shared-memory builder of :mod:`repro.core.construction`, with
        ``max_workers`` capping its pool) or ``None`` to decide from the
        instance size and CPU count.  Both pipelines produce entry-wise
        identical hierarchies and labels; the resolved mode and the
        per-phase timing land in :attr:`build_report`.
        """
        timer = Timer()
        with timer.measure():
            hierarchy, labels, report = build_index(
                graph, options, construction=construction, max_workers=max_workers
            )
        return cls(graph, hierarchy, labels, maintenance, timer.elapsed, build_report=report)

    def rebuild(self, options: HierarchyOptions | None = None) -> "StableTreeLabelling":
        """Construct a fresh index on the current graph (Figure 10 baseline).

        The fresh index inherits this one's :class:`STLConfig` and batch
        policy -- including the config's construction-mode selection.
        """
        fresh = StableTreeLabelling.build(
            self.graph,
            options,
            self._maintenance_mode,
            construction=self.config.construction,
        )
        fresh.config = self.config
        fresh.batch_policy = self.batch_policy
        return fresh

    def set_maintenance(self, maintenance: MaintenanceMode) -> None:
        """Select the maintenance algorithm family ('pareto' or 'label_search')."""
        if maintenance not in ("pareto", "label_search"):
            raise ConfigError(f"unknown maintenance mode {maintenance!r}")
        self._maintenance_mode: MaintenanceMode = maintenance
        self._decrease: ParetoSearchDecrease | LabelSearchDecrease
        self._increase: ParetoSearchIncrease | LabelSearchIncrease
        if maintenance == "pareto":
            self._decrease = ParetoSearchDecrease(self.graph, self.hierarchy, self.labels)
            self._increase = ParetoSearchIncrease(self.graph, self.hierarchy, self.labels)
        else:
            self._decrease = LabelSearchDecrease(self.graph, self.hierarchy, self.labels)
            self._increase = LabelSearchIncrease(self.graph, self.hierarchy, self.labels)
        self._batch_engine = BatchedParetoEngine(self.graph, self.hierarchy, self.labels)
        self._ls_batch_engine = BatchedLabelSearchEngine(self.graph, self.hierarchy, self.labels)
        # The shard planner's regions are topology-only, so switching
        # maintenance modes keeps the (lazily computed) plan regions; the
        # bisection is only paid on the first sharded batch.  The process
        # backend (live worker processes bound to the same graph/label
        # objects) survives mode switches for the same reason.
        if hasattr(self, "_shard_engine"):
            planner = self._shard_engine.planner
        else:
            planner = ShardPlanner(self.graph)
            self._process_backend: ShardBackend | None = None
        self._shard_engine = ShardedBatchEngine(
            self.graph, self.hierarchy, self.labels, planner=planner
        )

    def close(self) -> None:
        """Release pooled resources (worker pool + shared label segment).

        Idempotent and safe to call concurrently with live snapshot
        readers: closing the process backend moves the label entries out of
        their shared-memory segment, which must not happen while an
        in-flight reader holds a pin on the store
        (:meth:`repro.core.labelling.STLLabels.pin` -- the serving layer
        pins the store of every acquired zero-copy snapshot).  With pins
        outstanding the teardown is *deferred* until the last reader
        releases; a second ``close`` during the deferral window (or after
        teardown completed) is a no-op.  Safe to skip entirely: worker
        processes are daemonic, so an un-closed index cannot keep the
        interpreter alive.  Long-running services that build many indexes
        should still close each one.
        """
        if self._close_pending:
            return
        if self.labels.pinned:
            self._close_pending = True

            def _finish() -> None:
                self._close_pending = False
                self._release_backend()

            self.labels.defer_until_drained(_finish)
            return
        self._release_backend()

    def _release_backend(self) -> None:
        """Tear down the process backend now (pool + segment)."""
        if self._process_backend is not None:
            self._process_backend.close()
            self._process_backend = None

    @property
    def close_pending(self) -> bool:
        """Whether a close is deferred behind live snapshot readers."""
        return self._close_pending

    def snapshot(self, version: int = 0, copy: bool = True) -> "LabelSnapshot":
        """An immutable :class:`~repro.core.snapshot.LabelSnapshot` of this index.

        ``copy=False`` shares the live store zero-copy -- callers must then
        follow the copy-on-write discipline (shadow the store with
        :meth:`adopt_labels` before the next mutation), which is exactly
        what the serving layer's maintenance task does.
        """
        from repro.core.snapshot import LabelSnapshot

        return LabelSnapshot.capture(self, version, copy=copy)

    def adopt_labels(self, labels: STLLabels) -> None:
        """Swap in a different label store and rebind everything to it.

        The serving layer's shadow-copy step: after publishing a zero-copy
        snapshot, the writer adopts a private copy of its store
        (:meth:`STLLabels.snapshot_store`) before mutating, leaving the
        published buffer untouched for readers.  Every maintenance engine
        holds a reference to the store it was built over, so the engines
        are rebuilt (the shard planner and its lazily computed plan are
        preserved -- regions are topology-only); a live process backend is
        *rebound* (:meth:`repro.core.parallel.ProcessShardBackend.rebind`):
        its resident workers detach from the old store's shared segment and
        re-attach to a fresh segment over the new store on the next batch.
        """
        if len(labels) != len(self.labels):
            raise UpdateError(
                f"adopted store covers {len(labels)} vertices, index has {len(self.labels)}"
            )
        self.labels = labels
        self.set_maintenance(self._maintenance_mode)
        if self._process_backend is not None:
            self._process_backend.rebind(labels)

    @property
    def maintenance_mode(self) -> MaintenanceMode:
        """The currently selected maintenance algorithm family."""
        return self._maintenance_mode

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, s: int, t: int) -> float:
        """Shortest-path distance between ``s`` and ``t`` (Equation 3).

        Vertex ids are not fully re-validated here: the query is the hot path
        of the whole library.  Too-large ids fail loudly with an
        ``IndexError`` from the label lookup; negative ids are caught by a
        single-comparison guard in :func:`repro.core.query.query_distance`
        (Python's negative indexing would otherwise silently answer for
        vertex ``n + s``).
        """
        return query_distance(self.hierarchy, self.labels, s, t)

    def query_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Distance plus the label index of the common ancestor realising it."""
        check_vertex(s, self.graph.num_vertices)
        check_vertex(t, self.graph.num_vertices)
        return query_with_hub(self.hierarchy, self.labels, s, t)

    def batch_query(
        self,
        pairs: Iterable[tuple[int, int]],
        kernel: str | None = None,
        *,
        config: STLConfig | None = None,
    ) -> list[float]:
        """Answer many queries (delegates to :func:`repro.core.query.batch_query`).

        The kernel is selected by ``config`` (defaulting to the index's own
        :class:`STLConfig`): ``"vector"`` (the fused numpy gather +
        segment-min of :mod:`repro.core.kernels`, requires the
        ``repro[fast]`` extra), ``"scalar"`` (the pure-Python loop), or
        ``None`` for the import-time default.  Purely a performance choice:
        both kernels return entry-wise identical answers.

        The positional ``kernel=`` argument is the pre-:class:`STLConfig`
        spelling; it still works but emits a :class:`DeprecationWarning`
        (see docs/api.md, "Migrating to STLConfig").
        """
        if config is not None and kernel is not None:
            raise ConfigError("pass either config= or the legacy kernel= kwarg, not both")
        if kernel is not None:
            _deprecated_kwarg("kernel", "config=STLConfig(kernel=...)")
        used = kernel if kernel is not None else (config or self.config).kernel
        return batch_query(self.hierarchy, self.labels, list(pairs), used)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def apply_update(self, update: EdgeUpdate) -> MaintenanceStats:
        """Apply one edge-weight update (dispatches on increase/decrease)."""
        if update.kind is UpdateKind.INCREASE:
            return self._increase.apply(update)
        if update.kind is UpdateKind.DECREASE:
            return self._decrease.apply(update)
        return MaintenanceStats(updates_processed=1)

    def apply_batch(
        self,
        updates: Iterable[EdgeUpdate],
        policy: BatchPolicy | None = None,
        parallel: bool | str | None = None,
        engine: str | None = None,
        *,
        config: STLConfig | None = None,
    ) -> MaintenanceStats:
        """Apply a batch of updates with per-edge coalescing.

        Batch semantics:

        * **Coalescing** -- the batch is first folded into one *net* update
          per edge (:meth:`repro.graph.updates.UpdateBatch.coalesce`): an
          edge touched by both increases and decreases ends at the weight of
          its last update, never at a kind-grouped reordering of the chain.
          The net update's kind classifies the overall effect, so a chain
          that cancels out is a NEUTRAL no-op.
        * **Net-kind processing** -- net increases run before net decreases
          (disjoint edges, so the order only fixes which pass pays for which
          entry).  The :class:`BatchPolicy` crossover picks the processing
          strategy -- the per-update loop for tiny batches, a serial batched
          engine for moderate ones, and a worker-pool shard backend for
          large, well-spread ones (``stats.extra["sharded"]`` records the
          choice).
        * **Rebuild crossover** -- when the net batch exceeds
          ``policy.rebuild_fraction`` of the graph's edges (and
          ``policy.rebuild_min_updates``), maintaining is slower than
          reconstructing: the weights are applied and the labels are rebuilt
          from scratch in place (``stats.extra["rebuild_fallback"]`` records
          the fallback).  ``policy`` defaults to :attr:`batch_policy`.

        Backend, engine family and policy come from ``config`` (a per-call
        :class:`STLConfig` override, defaulting to the index's own config):

        * ``config.backend`` selects the shard backend: ``"thread"`` or
          ``"process"`` force that worker-pool engine (bypassing the rebuild
          crossover -- an explicit request to exercise the parallel path, as
          the benchmarks do), ``"serial"`` forbids sharding, and ``None``
          (default) lets the policy's batch-size, shard-balance and
          ``process_min_updates`` thresholds pick between the four
          strategies.  Any other value raises
          :class:`repro.utils.errors.ConfigError` naming the allowed set.
        * ``config.engine`` selects the batch engine family independently of
          the backend: ``"pareto"`` (the update-centric shared phases) or
          ``"label_search"`` (the ancestor-centric per-index queues of
          :mod:`repro.core.batch_label_search`).  ``None`` defers to the
          index's maintenance mode when it is ``label_search``, else to
          :meth:`BatchPolicy.engine_for` -- the engine half of the joint
          engine x backend crossover.  Every engine runs on every backend
          and all strategies produce entry-wise identical labels, so both
          choices are purely performance matters; ``stats.extra
          ["label_search_engine"]`` records a Label Search batch.

        The positional ``policy=`` / ``parallel=`` / ``engine=`` arguments
        are the pre-:class:`STLConfig` spellings of the same three choices
        (``parallel`` additionally accepts its historical booleans:
        ``True`` means ``"thread"``, ``False`` means ``"serial"``).  They
        still work but emit :class:`DeprecationWarning` (see docs/api.md,
        "Migrating to STLConfig") and cannot be mixed with ``config=``.

        ``updates_processed`` counts every update consumed from the input
        batch, including NEUTRAL updates and updates folded away by
        coalescing; ``stats.extra["net_updates"]`` reports the coalesced
        batch size.
        """
        if config is not None and (
            policy is not None or parallel is not None or engine is not None
        ):
            raise ConfigError("pass either config= or the legacy per-call kwargs, not both")
        if policy is not None:
            _deprecated_kwarg("policy", "config=STLConfig(policy=...)")
        if parallel is not None:
            _deprecated_kwarg("parallel", "config=STLConfig(backend=...)")
        if engine is not None:
            _deprecated_kwarg("engine", "config=STLConfig(engine=...)")
        cfg = config if config is not None else self.config
        backend = normalize_parallel(parallel) if parallel is not None else cfg.backend
        chosen = normalize_engine(engine) if engine is not None else cfg.engine
        if chosen is None and self._maintenance_mode == "label_search":
            chosen = "label_search"
        batch = updates if isinstance(updates, UpdateBatch) else UpdateBatch(updates)
        total = len(batch)
        if total == 0:
            return MaintenanceStats()
        policy = policy or cfg.policy or self.batch_policy
        net = batch.coalesce(self.graph)
        # NEUTRAL nets (cancelled chains) do no maintenance work, so they must
        # not push an otherwise-small batch over the rebuild crossover.
        effective = sum(1 for u in net if u.kind is not UpdateKind.NEUTRAL)
        used_engine = chosen or policy.engine_for(effective)
        if backend in ("thread", "process"):
            stats = self._apply_batch_sharded(
                net, policy, forced=True, backend=backend, engine=used_engine
            )
        elif policy.should_rebuild(effective, self.graph.num_edges):
            stats = self._rebuild_in_place(net)
            used_engine = "rebuild"
        elif backend != "serial" and policy.should_shard(effective):
            stats = self._apply_batch_sharded(
                net,
                policy,
                forced=False,
                backend=policy.backend_for(effective),
                engine=used_engine,
            )
        elif policy.should_loop(effective) and (
            chosen is None or chosen == self._maintenance_mode
        ):
            # Tiny batch: the batch machinery would cost more than it
            # shares; run the plain per-update loop (which dispatches to the
            # maintenance mode's own per-kind algorithms).
            stats = MaintenanceStats()
            for update in net:
                stats.merge(self.apply_update(update))
            used_engine = self._maintenance_mode
        else:
            stats = self._serial_engine(used_engine).apply(net.updates)
        stats.updates_processed += total - len(net)
        stats.extra["net_updates"] = len(net)
        if used_engine == "label_search":
            stats.extra["label_search_engine"] = 1
        return stats

    def _serial_engine(
        self, engine: str
    ) -> BatchedParetoEngine | BatchedLabelSearchEngine:
        """The serial batched engine of the given family."""
        return self._ls_batch_engine if engine == "label_search" else self._batch_engine

    def _apply_batch_sharded(
        self,
        net: UpdateBatch,
        policy: BatchPolicy,
        forced: bool,
        backend: str = "thread",
        engine: str = "pareto",
    ) -> MaintenanceStats:
        """Plan ``net`` into shards and run a worker-pool engine.

        Unless ``forced``, an unbalanced plan (most updates residual, or a
        single populated shard) falls back to the serial batched engine of
        the chosen family -- the plan's balance is the second key of the
        policy's crossover.  Every sharded engine additionally degrades to
        the serial engine for degenerate plans, so ``forced=True`` is
        always safe.  Both engines share one planner, so the plan computed
        here is the plan they run.
        """
        shard_engine = self._shard_backend(backend)
        plan = shard_engine.planner.plan(net)
        if not forced and not plan.worth_running(policy):
            stats = self._serial_engine(engine).apply(net.updates)
            stats.extra["sharded"] = 0
            return stats
        stats = shard_engine.apply(
            net.updates, plan=plan, max_workers=policy.max_workers, engine=engine
        )
        stats.extra["sharded"] = 1
        return stats

    def _shard_backend(self, backend: str) -> ShardBackend:
        """The thread engine, or the lazily created process backend.

        The process backend is constructed on first use (spawning worker
        processes is not free) and shares the thread engine's planner, so
        both pools run the identical partition of the vertex set.
        """
        if backend == "thread":
            return self._shard_engine
        if self._process_backend is None:
            from repro.core.parallel import ProcessShardBackend

            self._process_backend = ProcessShardBackend(
                self.graph,
                self.hierarchy,
                self.labels,
                planner=self._shard_engine.planner,
            )
        return self._process_backend

    def _rebuild_in_place(self, net: UpdateBatch) -> MaintenanceStats:
        """Apply ``net`` to the graph and rebuild the labels from scratch.

        The hierarchy is weight-independent, so only the labels are
        recomputed; the label buffer is overwritten in place to keep the
        maintenance engines (which hold a reference to it) -- and any
        resident worker processes mapping its shared buffer -- valid.
        """
        for update in net:
            self.graph.set_weight(update.u, update.v, update.new_weight)
        self.labels.load_from(build_labels(self.graph, self.hierarchy))
        stats = MaintenanceStats(updates_processed=len(net))
        stats.extra["rebuild_fallback"] = 1
        return stats

    def increase_edge(self, u: int, v: int, new_weight: float) -> MaintenanceStats:
        """Increase the weight of edge ``(u, v)`` to ``new_weight``."""
        old = self.graph.weight(u, v)
        if new_weight < old:
            raise UpdateError(
                f"increase_edge called with new weight {new_weight} below current {old}"
            )
        return self.apply_update(EdgeUpdate(u, v, old, new_weight))

    def decrease_edge(self, u: int, v: int, new_weight: float) -> MaintenanceStats:
        """Decrease the weight of edge ``(u, v)`` to ``new_weight``."""
        old = self.graph.weight(u, v)
        if new_weight > old:
            raise UpdateError(
                f"decrease_edge called with new weight {new_weight} above current {old}"
            )
        return self.apply_update(EdgeUpdate(u, v, old, new_weight))

    def remove_edge(self, u: int, v: int) -> MaintenanceStats:
        """Logically delete edge ``(u, v)`` by raising its weight to infinity.

        This is the Section 8 treatment of structural deletions.  The label
        entries of vertices that lose their last path to an ancestor become
        ``inf``, and queries fall back to other common ancestors.
        """
        old = self.graph.weight(u, v)
        if math.isinf(old):
            return MaintenanceStats()
        return self.apply_update(EdgeUpdate(u, v, old, math.inf))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> IndexStats:
        """Size statistics of this index (Table 4 row).

        When the index was built through :meth:`build` /
        :func:`open_network`, the stats carry the construction-time
        breakdown from the :class:`~repro.hierarchy.builder.BuildReport`:
        hierarchy seconds vs label seconds vs builder worker count.
        """
        report = self.build_report
        return IndexStats(
            method=f"STL ({self._maintenance_mode})",
            num_vertices=self.graph.num_vertices,
            num_label_entries=self.labels.num_entries(),
            memory=MemoryEstimate(distance_entries=self.labels.num_entries()),
            tree_height=self.hierarchy.height,
            construction_seconds=self.construction_seconds,
            hierarchy_seconds=report.hierarchy_seconds if report else 0.0,
            label_seconds=report.label_seconds if report else 0.0,
            construction_workers=report.workers if report else 0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StableTreeLabelling(vertices={self.graph.num_vertices}, "
            f"entries={self.labels.num_entries()}, "
            f"maintenance={self._maintenance_mode!r})"
        )


def open_network(
    graph: Graph,
    *,
    config: STLConfig | None = None,
    options: HierarchyOptions | None = None,
) -> StableTreeLabelling:
    """Open ``graph`` for querying and maintenance under one :class:`STLConfig`.

    The post-redesign entry point: build the stable tree hierarchy and the
    subgraph-distance labels, and return an index whose every later call --
    ``apply_batch``, ``batch_query``, the serving layer -- defaults to
    ``config``'s backend / engine / kernel / policy choices instead of
    per-call kwargs::

        stl = repro.open_network(graph, config=STLConfig(engine="label_search"))
        stl.apply_batch(batch)              # Label Search, no kwargs
        stl.batch_query(pairs)              # config's kernel

    ``config=None`` means :data:`repro.core.config.DEFAULT_CONFIG`: every
    choice deferred to the measured crossovers.  ``options`` tunes the
    hierarchy construction exactly as :meth:`StableTreeLabelling.build`
    does.  The maintenance algorithm family follows the config's engine
    selection (:attr:`STLConfig.maintenance`), and the build pipeline
    follows ``config.construction`` (``"parallel"`` routes through the
    process-parallel shared-memory builder of
    :mod:`repro.core.construction`).
    """
    cfg = config or DEFAULT_CONFIG
    timer = Timer()
    with timer.measure():
        hierarchy, labels, report = build_index(
            graph, options, construction=cfg.construction
        )
    return StableTreeLabelling(
        graph,
        hierarchy,
        labels,
        cfg.maintenance,  # type: ignore[arg-type]
        timer.elapsed,
        config=cfg,
        build_report=report,
    )
