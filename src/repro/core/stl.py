"""The public facade of Stable Tree Labelling.

:class:`StableTreeLabelling` ties the hierarchy, the label construction, the
query and the four maintenance algorithms into one object with the life cycle
a downstream user needs:

>>> from repro import StableTreeLabelling, generators
>>> graph = generators.grid_road_network(16, 16, seed=1)
>>> stl = StableTreeLabelling.build(graph)
>>> d = stl.query(0, graph.num_vertices - 1)
>>> stl.increase_edge(0, 1, new_weight=graph.weight(0, 1) * 2)
>>> stl.decrease_edge(0, 1, new_weight=graph.weight(0, 1) / 2)

Maintenance strategy defaults to Pareto Search (the paper's fastest variant);
``maintenance="label_search"`` selects the ancestor-centric Algorithms 1-2
instead, which is how the STL-L rows of Table 3 are produced.
"""

from __future__ import annotations

import math
from typing import Iterable, Literal

from repro.core.label_search import (
    LabelSearchDecrease,
    LabelSearchIncrease,
    MaintenanceStats,
)
from repro.core.labelling import STLLabels, build_labels
from repro.core.pareto_search import ParetoSearchDecrease, ParetoSearchIncrease
from repro.core.query import query_distance, query_with_hub
from repro.core.stats import IndexStats
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateKind
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import UpdateError
from repro.utils.memory import MemoryEstimate
from repro.utils.timer import Timer
from repro.utils.validation import check_vertex

MaintenanceMode = Literal["pareto", "label_search"]


class StableTreeLabelling:
    """Stable Tree Labelling index over a dynamic road network.

    Instances are normally created with :meth:`build`; the constructor is for
    advanced uses (pre-built hierarchies, deserialisation).
    """

    def __init__(
        self,
        graph: Graph,
        hierarchy: StableTreeHierarchy,
        labels: STLLabels,
        maintenance: MaintenanceMode = "pareto",
        construction_seconds: float = 0.0,
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels
        self.construction_seconds = construction_seconds
        self.set_maintenance(maintenance)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        graph: Graph,
        options: HierarchyOptions | None = None,
        maintenance: MaintenanceMode = "pareto",
    ) -> "StableTreeLabelling":
        """Build the index: stable tree hierarchy + subgraph-distance labels."""
        timer = Timer()
        with timer.measure():
            hierarchy = build_hierarchy(graph, options)
            labels = build_labels(graph, hierarchy)
        return cls(graph, hierarchy, labels, maintenance, timer.elapsed)

    def rebuild(self, options: HierarchyOptions | None = None) -> "StableTreeLabelling":
        """Construct a fresh index on the current graph (Figure 10 baseline)."""
        return StableTreeLabelling.build(self.graph, options, self._maintenance_mode)

    def set_maintenance(self, maintenance: MaintenanceMode) -> None:
        """Select the maintenance algorithm family ('pareto' or 'label_search')."""
        if maintenance not in ("pareto", "label_search"):
            raise ValueError(f"unknown maintenance mode {maintenance!r}")
        self._maintenance_mode: MaintenanceMode = maintenance
        if maintenance == "pareto":
            self._decrease = ParetoSearchDecrease(self.graph, self.hierarchy, self.labels)
            self._increase = ParetoSearchIncrease(self.graph, self.hierarchy, self.labels)
        else:
            self._decrease = LabelSearchDecrease(self.graph, self.hierarchy, self.labels)
            self._increase = LabelSearchIncrease(self.graph, self.hierarchy, self.labels)

    @property
    def maintenance_mode(self) -> MaintenanceMode:
        """The currently selected maintenance algorithm family."""
        return self._maintenance_mode

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, s: int, t: int) -> float:
        """Shortest-path distance between ``s`` and ``t`` (Equation 3).

        Vertex ids are not re-validated here: the query is the hot path of
        the whole library, and out-of-range ids fail loudly with an
        ``IndexError`` from the label lookup anyway.
        """
        return query_distance(self.hierarchy, self.labels, s, t)

    def query_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Distance plus the label index of the common ancestor realising it."""
        check_vertex(s, self.graph.num_vertices)
        check_vertex(t, self.graph.num_vertices)
        return query_with_hub(self.hierarchy, self.labels, s, t)

    def batch_query(self, pairs: Iterable[tuple[int, int]]) -> list[float]:
        """Answer many queries (convenience wrapper used by the harness)."""
        return [self.query(s, t) for s, t in pairs]

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def apply_update(self, update: EdgeUpdate) -> MaintenanceStats:
        """Apply one edge-weight update (dispatches on increase/decrease)."""
        if update.kind is UpdateKind.INCREASE:
            return self._increase.apply(update)
        if update.kind is UpdateKind.DECREASE:
            return self._decrease.apply(update)
        return MaintenanceStats(updates_processed=1)

    def apply_batch(self, updates: Iterable[EdgeUpdate]) -> MaintenanceStats:
        """Apply a batch of updates.

        Decreases and increases are grouped and handed to the respective
        algorithm, which is how the paper processes its mixed batches.
        """
        updates = list(updates)
        increases = [u for u in updates if u.kind is UpdateKind.INCREASE]
        decreases = [u for u in updates if u.kind is UpdateKind.DECREASE]
        stats = MaintenanceStats()
        if increases:
            stats.merge(self._increase.apply(increases))
        if decreases:
            stats.merge(self._decrease.apply(decreases))
        return stats

    def increase_edge(self, u: int, v: int, new_weight: float) -> MaintenanceStats:
        """Increase the weight of edge ``(u, v)`` to ``new_weight``."""
        old = self.graph.weight(u, v)
        if new_weight < old:
            raise UpdateError(
                f"increase_edge called with new weight {new_weight} below current {old}"
            )
        return self.apply_update(EdgeUpdate(u, v, old, new_weight))

    def decrease_edge(self, u: int, v: int, new_weight: float) -> MaintenanceStats:
        """Decrease the weight of edge ``(u, v)`` to ``new_weight``."""
        old = self.graph.weight(u, v)
        if new_weight > old:
            raise UpdateError(
                f"decrease_edge called with new weight {new_weight} above current {old}"
            )
        return self.apply_update(EdgeUpdate(u, v, old, new_weight))

    def remove_edge(self, u: int, v: int) -> MaintenanceStats:
        """Logically delete edge ``(u, v)`` by raising its weight to infinity.

        This is the Section 8 treatment of structural deletions.  The label
        entries of vertices that lose their last path to an ancestor become
        ``inf``, and queries fall back to other common ancestors.
        """
        old = self.graph.weight(u, v)
        if math.isinf(old):
            return MaintenanceStats()
        return self.apply_update(EdgeUpdate(u, v, old, math.inf))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> IndexStats:
        """Size statistics of this index (Table 4 row)."""
        return IndexStats(
            method=f"STL ({self._maintenance_mode})",
            num_vertices=self.graph.num_vertices,
            num_label_entries=self.labels.num_entries(),
            memory=MemoryEstimate(distance_entries=self.labels.num_entries()),
            tree_height=self.hierarchy.height,
            construction_seconds=self.construction_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StableTreeLabelling(vertices={self.graph.num_vertices}, "
            f"entries={self.labels.num_entries()}, "
            f"maintenance={self._maintenance_mode!r})"
        )
