"""The public facade of Stable Tree Labelling.

:class:`StableTreeLabelling` ties the hierarchy, the label construction, the
query and the four maintenance algorithms into one object with the life cycle
a downstream user needs:

>>> from repro import StableTreeLabelling, generators
>>> graph = generators.grid_road_network(16, 16, seed=1)
>>> stl = StableTreeLabelling.build(graph)
>>> d = stl.query(0, graph.num_vertices - 1)
>>> stl.increase_edge(0, 1, new_weight=graph.weight(0, 1) * 2)
>>> stl.decrease_edge(0, 1, new_weight=graph.weight(0, 1) / 2)

Maintenance strategy defaults to Pareto Search (the paper's fastest variant);
``maintenance="label_search"`` selects the ancestor-centric Algorithms 1-2
instead, which is how the STL-L rows of Table 3 are produced.
"""

from __future__ import annotations

import math
from typing import Iterable, Literal

from repro.core.batch import BatchedParetoEngine, BatchPolicy, normalize_engine
from repro.core.batch_label_search import BatchedLabelSearchEngine
from repro.core.shard import (
    ShardBackend,
    ShardedBatchEngine,
    ShardPlanner,
    normalize_parallel,
)
from repro.core.label_search import (
    LabelSearchDecrease,
    LabelSearchIncrease,
    MaintenanceStats,
)
from repro.core.labelling import STLLabels, build_labels
from repro.core.pareto_search import ParetoSearchDecrease, ParetoSearchIncrease
from repro.core.query import batch_query, query_distance, query_with_hub
from repro.core.stats import IndexStats
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch, UpdateKind
from repro.hierarchy.builder import HierarchyOptions, build_hierarchy
from repro.hierarchy.tree import StableTreeHierarchy
from repro.utils.errors import UpdateError
from repro.utils.memory import MemoryEstimate
from repro.utils.timer import Timer
from repro.utils.validation import check_vertex

MaintenanceMode = Literal["pareto", "label_search"]


class StableTreeLabelling:
    """Stable Tree Labelling index over a dynamic road network.

    Instances are normally created with :meth:`build`; the constructor is for
    advanced uses (pre-built hierarchies, deserialisation).
    """

    def __init__(
        self,
        graph: Graph,
        hierarchy: StableTreeHierarchy,
        labels: STLLabels,
        maintenance: MaintenanceMode = "pareto",
        construction_seconds: float = 0.0,
        batch_policy: BatchPolicy | None = None,
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.labels = labels
        self.construction_seconds = construction_seconds
        self.batch_policy = batch_policy or BatchPolicy()
        self.set_maintenance(maintenance)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        graph: Graph,
        options: HierarchyOptions | None = None,
        maintenance: MaintenanceMode = "pareto",
    ) -> "StableTreeLabelling":
        """Build the index: stable tree hierarchy + subgraph-distance labels."""
        timer = Timer()
        with timer.measure():
            hierarchy = build_hierarchy(graph, options)
            labels = build_labels(graph, hierarchy)
        return cls(graph, hierarchy, labels, maintenance, timer.elapsed)

    def rebuild(self, options: HierarchyOptions | None = None) -> "StableTreeLabelling":
        """Construct a fresh index on the current graph (Figure 10 baseline)."""
        return StableTreeLabelling.build(self.graph, options, self._maintenance_mode)

    def set_maintenance(self, maintenance: MaintenanceMode) -> None:
        """Select the maintenance algorithm family ('pareto' or 'label_search')."""
        if maintenance not in ("pareto", "label_search"):
            raise ValueError(f"unknown maintenance mode {maintenance!r}")
        self._maintenance_mode: MaintenanceMode = maintenance
        self._decrease: ParetoSearchDecrease | LabelSearchDecrease
        self._increase: ParetoSearchIncrease | LabelSearchIncrease
        if maintenance == "pareto":
            self._decrease = ParetoSearchDecrease(self.graph, self.hierarchy, self.labels)
            self._increase = ParetoSearchIncrease(self.graph, self.hierarchy, self.labels)
        else:
            self._decrease = LabelSearchDecrease(self.graph, self.hierarchy, self.labels)
            self._increase = LabelSearchIncrease(self.graph, self.hierarchy, self.labels)
        self._batch_engine = BatchedParetoEngine(self.graph, self.hierarchy, self.labels)
        self._ls_batch_engine = BatchedLabelSearchEngine(self.graph, self.hierarchy, self.labels)
        # The shard planner's regions are topology-only, so switching
        # maintenance modes keeps the (lazily computed) plan regions; the
        # bisection is only paid on the first sharded batch.  The process
        # backend (live worker processes bound to the same graph/label
        # objects) survives mode switches for the same reason.
        if hasattr(self, "_shard_engine"):
            planner = self._shard_engine.planner
        else:
            planner = ShardPlanner(self.graph)
            self._process_backend: ShardBackend | None = None
        self._shard_engine = ShardedBatchEngine(
            self.graph, self.hierarchy, self.labels, planner=planner
        )

    def close(self) -> None:
        """Release pooled resources (the process backend's workers).

        Idempotent and safe to skip: worker processes are daemonic, so an
        un-closed index cannot keep the interpreter alive.  Long-running
        services that build many indexes should still close each one.
        """
        if self._process_backend is not None:
            self._process_backend.close()
            self._process_backend = None

    @property
    def maintenance_mode(self) -> MaintenanceMode:
        """The currently selected maintenance algorithm family."""
        return self._maintenance_mode

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, s: int, t: int) -> float:
        """Shortest-path distance between ``s`` and ``t`` (Equation 3).

        Vertex ids are not fully re-validated here: the query is the hot path
        of the whole library.  Too-large ids fail loudly with an
        ``IndexError`` from the label lookup; negative ids are caught by a
        single-comparison guard in :func:`repro.core.query.query_distance`
        (Python's negative indexing would otherwise silently answer for
        vertex ``n + s``).
        """
        return query_distance(self.hierarchy, self.labels, s, t)

    def query_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Distance plus the label index of the common ancestor realising it."""
        check_vertex(s, self.graph.num_vertices)
        check_vertex(t, self.graph.num_vertices)
        return query_with_hub(self.hierarchy, self.labels, s, t)

    def batch_query(
        self, pairs: Iterable[tuple[int, int]], kernel: str | None = None
    ) -> list[float]:
        """Answer many queries (delegates to :func:`repro.core.query.batch_query`).

        ``kernel`` selects the query kernel: ``"vector"`` (the fused numpy
        gather + segment-min of :mod:`repro.core.kernels`, requires the
        ``repro[fast]`` extra), ``"scalar"`` (the pure-Python loop), or
        ``None`` for the import-time default.  Purely a performance choice:
        both kernels return entry-wise identical answers.
        """
        return batch_query(self.hierarchy, self.labels, list(pairs), kernel)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def apply_update(self, update: EdgeUpdate) -> MaintenanceStats:
        """Apply one edge-weight update (dispatches on increase/decrease)."""
        if update.kind is UpdateKind.INCREASE:
            return self._increase.apply(update)
        if update.kind is UpdateKind.DECREASE:
            return self._decrease.apply(update)
        return MaintenanceStats(updates_processed=1)

    def apply_batch(
        self,
        updates: Iterable[EdgeUpdate],
        policy: BatchPolicy | None = None,
        parallel: bool | str | None = None,
        engine: str | None = None,
    ) -> MaintenanceStats:
        """Apply a batch of updates with per-edge coalescing.

        Batch semantics:

        * **Coalescing** -- the batch is first folded into one *net* update
          per edge (:meth:`repro.graph.updates.UpdateBatch.coalesce`): an
          edge touched by both increases and decreases ends at the weight of
          its last update, never at a kind-grouped reordering of the chain.
          The net update's kind classifies the overall effect, so a chain
          that cancels out is a NEUTRAL no-op.
        * **Net-kind processing** -- net increases run before net decreases
          (disjoint edges, so the order only fixes which pass pays for which
          entry).  The :class:`BatchPolicy` crossover picks the processing
          strategy -- the per-update loop for tiny batches, a serial batched
          engine for moderate ones, and a worker-pool shard backend for
          large, well-spread ones (``stats.extra["sharded"]`` records the
          choice).
        * **Rebuild crossover** -- when the net batch exceeds
          ``policy.rebuild_fraction`` of the graph's edges (and
          ``policy.rebuild_min_updates``), maintaining is slower than
          reconstructing: the weights are applied and the labels are rebuilt
          from scratch in place (``stats.extra["rebuild_fallback"]`` records
          the fallback).  ``policy`` defaults to :attr:`batch_policy`.

        ``parallel`` selects the shard backend: ``"thread"`` or
        ``"process"`` force that worker-pool engine (bypassing the rebuild
        crossover -- an explicit request to exercise the parallel path, as
        the benchmarks do), ``"serial"`` or ``False`` forbid sharding,
        ``True`` keeps its historical meaning of ``"thread"``, and ``None``
        (default) lets the policy's batch-size, shard-balance and
        ``process_min_updates`` thresholds pick between the four
        strategies.  Any other value raises :class:`ValueError` naming the
        allowed set (merely-truthy values used to be swallowed silently).

        ``engine`` selects the batch engine family independently of the
        backend: ``"pareto"`` (the update-centric shared phases) or
        ``"label_search"`` (the ancestor-centric per-index queues of
        :mod:`repro.core.batch_label_search`).  ``None`` defers to the
        index's maintenance mode when it is ``label_search``, else to
        :meth:`BatchPolicy.engine_for` -- the engine half of the joint
        engine x backend crossover.  Every engine runs on every backend and
        all strategies produce entry-wise identical labels, so both choices
        are purely performance matters; ``stats.extra
        ["label_search_engine"]`` records a Label Search batch.

        ``updates_processed`` counts every update consumed from the input
        batch, including NEUTRAL updates and updates folded away by
        coalescing; ``stats.extra["net_updates"]`` reports the coalesced
        batch size.
        """
        backend = normalize_parallel(parallel)
        chosen = normalize_engine(engine)
        if chosen is None and self._maintenance_mode == "label_search":
            chosen = "label_search"
        batch = updates if isinstance(updates, UpdateBatch) else UpdateBatch(updates)
        total = len(batch)
        if total == 0:
            return MaintenanceStats()
        policy = policy or self.batch_policy
        net = batch.coalesce(self.graph)
        # NEUTRAL nets (cancelled chains) do no maintenance work, so they must
        # not push an otherwise-small batch over the rebuild crossover.
        effective = sum(1 for u in net if u.kind is not UpdateKind.NEUTRAL)
        used_engine = chosen or policy.engine_for(effective)
        if backend in ("thread", "process"):
            stats = self._apply_batch_sharded(
                net, policy, forced=True, backend=backend, engine=used_engine
            )
        elif policy.should_rebuild(effective, self.graph.num_edges):
            stats = self._rebuild_in_place(net)
            used_engine = "rebuild"
        elif backend != "serial" and policy.should_shard(effective):
            stats = self._apply_batch_sharded(
                net,
                policy,
                forced=False,
                backend=policy.backend_for(effective),
                engine=used_engine,
            )
        elif policy.should_loop(effective) and (
            chosen is None or chosen == self._maintenance_mode
        ):
            # Tiny batch: the batch machinery would cost more than it
            # shares; run the plain per-update loop (which dispatches to the
            # maintenance mode's own per-kind algorithms).
            stats = MaintenanceStats()
            for update in net:
                stats.merge(self.apply_update(update))
            used_engine = self._maintenance_mode
        else:
            stats = self._serial_engine(used_engine).apply(net.updates)
        stats.updates_processed += total - len(net)
        stats.extra["net_updates"] = len(net)
        if used_engine == "label_search":
            stats.extra["label_search_engine"] = 1
        return stats

    def _serial_engine(
        self, engine: str
    ) -> BatchedParetoEngine | BatchedLabelSearchEngine:
        """The serial batched engine of the given family."""
        return self._ls_batch_engine if engine == "label_search" else self._batch_engine

    def _apply_batch_sharded(
        self,
        net: UpdateBatch,
        policy: BatchPolicy,
        forced: bool,
        backend: str = "thread",
        engine: str = "pareto",
    ) -> MaintenanceStats:
        """Plan ``net`` into shards and run a worker-pool engine.

        Unless ``forced``, an unbalanced plan (most updates residual, or a
        single populated shard) falls back to the serial batched engine of
        the chosen family -- the plan's balance is the second key of the
        policy's crossover.  Every sharded engine additionally degrades to
        the serial engine for degenerate plans, so ``forced=True`` is
        always safe.  Both engines share one planner, so the plan computed
        here is the plan they run.
        """
        shard_engine = self._shard_backend(backend)
        plan = shard_engine.planner.plan(net)
        if not forced and not plan.worth_running(policy):
            stats = self._serial_engine(engine).apply(net.updates)
            stats.extra["sharded"] = 0
            return stats
        stats = shard_engine.apply(
            net.updates, plan=plan, max_workers=policy.max_workers, engine=engine
        )
        stats.extra["sharded"] = 1
        return stats

    def _shard_backend(self, backend: str) -> ShardBackend:
        """The thread engine, or the lazily created process backend.

        The process backend is constructed on first use (spawning worker
        processes is not free) and shares the thread engine's planner, so
        both pools run the identical partition of the vertex set.
        """
        if backend == "thread":
            return self._shard_engine
        if self._process_backend is None:
            from repro.core.parallel import ProcessShardBackend

            self._process_backend = ProcessShardBackend(
                self.graph,
                self.hierarchy,
                self.labels,
                planner=self._shard_engine.planner,
            )
        return self._process_backend

    def _rebuild_in_place(self, net: UpdateBatch) -> MaintenanceStats:
        """Apply ``net`` to the graph and rebuild the labels from scratch.

        The hierarchy is weight-independent, so only the labels are
        recomputed; the label buffer is overwritten in place to keep the
        maintenance engines (which hold a reference to it) -- and any
        resident worker processes mapping its shared buffer -- valid.
        """
        for update in net:
            self.graph.set_weight(update.u, update.v, update.new_weight)
        self.labels.load_from(build_labels(self.graph, self.hierarchy))
        stats = MaintenanceStats(updates_processed=len(net))
        stats.extra["rebuild_fallback"] = 1
        return stats

    def increase_edge(self, u: int, v: int, new_weight: float) -> MaintenanceStats:
        """Increase the weight of edge ``(u, v)`` to ``new_weight``."""
        old = self.graph.weight(u, v)
        if new_weight < old:
            raise UpdateError(
                f"increase_edge called with new weight {new_weight} below current {old}"
            )
        return self.apply_update(EdgeUpdate(u, v, old, new_weight))

    def decrease_edge(self, u: int, v: int, new_weight: float) -> MaintenanceStats:
        """Decrease the weight of edge ``(u, v)`` to ``new_weight``."""
        old = self.graph.weight(u, v)
        if new_weight > old:
            raise UpdateError(
                f"decrease_edge called with new weight {new_weight} above current {old}"
            )
        return self.apply_update(EdgeUpdate(u, v, old, new_weight))

    def remove_edge(self, u: int, v: int) -> MaintenanceStats:
        """Logically delete edge ``(u, v)`` by raising its weight to infinity.

        This is the Section 8 treatment of structural deletions.  The label
        entries of vertices that lose their last path to an ancestor become
        ``inf``, and queries fall back to other common ancestors.
        """
        old = self.graph.weight(u, v)
        if math.isinf(old):
            return MaintenanceStats()
        return self.apply_update(EdgeUpdate(u, v, old, math.inf))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> IndexStats:
        """Size statistics of this index (Table 4 row)."""
        return IndexStats(
            method=f"STL ({self._maintenance_mode})",
            num_vertices=self.graph.num_vertices,
            num_label_entries=self.labels.num_entries(),
            memory=MemoryEstimate(distance_entries=self.labels.num_entries()),
            tree_height=self.hierarchy.height,
            construction_seconds=self.construction_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StableTreeLabelling(vertices={self.graph.num_vertices}, "
            f"entries={self.labels.num_entries()}, "
            f"maintenance={self._maintenance_mode!r})"
        )
