"""The one configuration object of the public API.

Eight PRs of growth left :meth:`repro.core.stl.StableTreeLabelling` with a
pile of accreted per-call knobs -- ``apply_batch(parallel=..., engine=...,
policy=...)``, ``batch_query(kernel=...)``, ``build(maintenance=...)`` --
each validated in a different module with a different failure mode.
:class:`STLConfig` subsumes them into one frozen dataclass with one shared
validator:

========== =========================================== ====================
field      selects                                     values
========== =========================================== ====================
backend    shard backend for batch maintenance         ``None`` / ``"serial"``
                                                       / ``"thread"`` /
                                                       ``"process"``
engine     batch engine family                         ``None`` / ``"pareto"``
                                                       / ``"label_search"``
kernel     query kernel for ``batch_query``            ``None`` / ``"scalar"``
                                                       / ``"vector"``
policy     crossover thresholds                        a :class:`BatchPolicy`
                                                       or ``None``
construction  index build pipeline                     ``None`` / ``"serial"``
                                                       / ``"parallel"``
========== =========================================== ====================

``None`` always means "let the measured crossovers decide" -- the same
meaning the old per-call kwargs gave it.  Validation happens **at
construction**: a typo'd backend name fails where the config is written,
not batches later inside ``apply_batch``, and every validation failure is a
:class:`repro.utils.errors.ConfigError` (a ``ValueError`` subclass, so
pre-redesign ``except ValueError`` handlers keep working).

Instances are immutable and hashable; derive variants with
:meth:`STLConfig.replace`::

    base = STLConfig(engine="label_search")
    forced = base.replace(backend="process")

The facade :func:`repro.open_network` attaches a config to a new index, and
the per-call ``config=`` parameters of ``apply_batch`` / ``batch_query``
override it batch by batch.  The old kwargs still work through a
deprecation shim (see docs/api.md for the migration table) but warn.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.core.batch import BatchPolicy, normalize_engine
from repro.core.construction import normalize_construction
from repro.core.kernels import normalize_kernel
from repro.core.shard import normalize_parallel
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class STLConfig:
    """Frozen configuration for an STL index (see the module docstring).

    All fields default to ``None`` -- "decide by measured crossover" -- so
    ``STLConfig()`` is the legacy default behaviour.  ``backend`` also
    accepts the legacy boolean spellings of the old ``parallel=`` kwarg
    (``True`` -> ``"thread"``, ``False`` -> ``"serial"``); they are
    normalised at construction so two spellings of one config compare
    equal.
    """

    backend: str | bool | None = None
    engine: str | None = None
    kernel: str | None = None
    policy: BatchPolicy | None = None
    construction: str | None = None

    def __post_init__(self) -> None:
        # One shared validator: the same normalizers the per-call kwargs
        # used, run once at construction.  ``backend`` is stored normalised
        # (booleans folded to their names) so equality and hashing see one
        # canonical spelling.
        object.__setattr__(self, "backend", normalize_parallel(self.backend))
        normalize_engine(self.engine)
        # ``kernel`` is validated for *name* here but availability
        # (numpy present) is checked too: a config that names the vector
        # kernel on an interpreter that cannot run it is a configuration
        # error at the config site, not at the first query.
        if self.kernel is not None:
            normalize_kernel(self.kernel)
        if self.policy is not None and not isinstance(self.policy, BatchPolicy):
            raise ConfigError(
                f"policy must be a BatchPolicy or None, got {type(self.policy).__name__}"
            )
        # ``construction`` picks the index build pipeline (serial recursion
        # vs the process-parallel shared-memory builder); ``None`` defers to
        # the instance-size/CPU-count heuristic at build time.
        normalize_construction(self.construction)

    @property
    def maintenance(self) -> str:
        """The per-update maintenance mode this config implies.

        The ``engine`` field names the batch engine family; the per-update
        algorithms of the same family serve single updates, so the two
        selections collapse into one: ``"label_search"`` when the engine is
        Label Search, the default ``"pareto"`` otherwise.
        """
        return "label_search" if self.engine == "label_search" else "pareto"

    def replace(self, **changes: Any) -> "STLConfig":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """Compact human-readable summary (used by service stats/logs)."""
        parts = [
            f"{name}={getattr(self, name)!r}"
            for name in ("backend", "engine", "kernel", "construction")
            if getattr(self, name) is not None
        ]
        if self.policy is not None:
            parts.append("policy=custom")
        return "STLConfig(" + ", ".join(parts) + ")" if parts else "STLConfig(auto)"


#: The config every index without an explicit one runs under.
DEFAULT_CONFIG = STLConfig()
