"""Memory accounting for distance labellings and indexes.

The paper's Table 4 compares *labelling sizes* across methods.  Because every
method here runs in the same Python substrate, we report two measures:

* ``entries`` -- the number of stored distance entries (substrate-independent,
  directly comparable with the paper's "# Label Entries" column), and
* ``bytes`` -- an estimate assuming the compact C++ layout the paper uses
  (4-byte distances, 4-byte vertex ids), so the "Labelling Size" column can be
  reproduced without being dominated by CPython object overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes per stored distance value in the reference C++ layout.
BYTES_PER_DISTANCE = 4
#: Bytes per stored vertex id / position entry in the reference C++ layout.
BYTES_PER_VERTEX_ID = 4


@dataclass(frozen=True)
class MemoryEstimate:
    """Size estimate of an index in entries and bytes."""

    distance_entries: int
    id_entries: int = 0
    auxiliary_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Estimated total bytes in a compact (C++-like) layout."""
        return (
            self.distance_entries * BYTES_PER_DISTANCE
            + self.id_entries * BYTES_PER_VERTEX_ID
            + self.auxiliary_bytes
        )

    @property
    def total_entries(self) -> int:
        """Total number of stored entries of any kind."""
        return self.distance_entries + self.id_entries

    def __add__(self, other: "MemoryEstimate") -> "MemoryEstimate":
        return MemoryEstimate(
            distance_entries=self.distance_entries + other.distance_entries,
            id_entries=self.id_entries + other.id_entries,
            auxiliary_bytes=self.auxiliary_bytes + other.auxiliary_bytes,
        )


def format_bytes(num_bytes: float) -> str:
    """Render a byte count the way the paper's tables do (MB / GB)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_count(count: float) -> str:
    """Render an entry count the way the paper does (e.g. ``30 M``, ``1.2 B``)."""
    value = float(count)
    if value >= 1e9:
        return f"{value / 1e9:.1f} B"
    if value >= 1e6:
        return f"{value / 1e6:.1f} M"
    if value >= 1e3:
        return f"{value / 1e3:.1f} K"
    return f"{int(value)}"
