"""Deterministic random-number helpers.

All stochastic behaviour in the library (graph generation, workload sampling)
flows through :func:`make_rng` so experiments are reproducible from a seed.
"""

from __future__ import annotations

import random


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a :class:`random.Random` for the given seed.

    Accepts three forms so that callers can pass seeds around freely:

    * ``None`` -- a fresh, OS-seeded generator (non-deterministic),
    * an ``int`` -- a deterministic generator seeded with that value,
    * an existing ``random.Random`` -- returned unchanged, which lets nested
      generators share a single stream.
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(f"seed must be None, an int or a random.Random, got {type(seed)!r}")
    return random.Random(seed)


def spawn_rng(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a workload wants to hand sub-generators to parallel components
    without the components perturbing each other's streams.
    """
    return random.Random(rng.getrandbits(64))
