"""Exception hierarchy for the repro package.

Every error raised by the library derives from one root, :class:`STLError`,
so callers can catch library failures without also swallowing programming
errors.  The hierarchy (see docs/api.md for the full mapping of public entry
points to error classes)::

    STLError
    +-- GraphError
    |   +-- VertexNotFoundError
    |   +-- EdgeNotFoundError
    |   +-- InvalidWeightError
    +-- PartitionError
    +-- HierarchyError
    +-- LabellingError
    +-- UpdateError
    +-- ConfigError          (also a ValueError)
    +-- SnapshotError
    +-- ServiceError
    +-- SerializationError
    +-- WorkloadError
    +-- ExperimentError

:class:`ConfigError` doubles as a :class:`ValueError`: the option validators
(``normalize_parallel`` / ``normalize_engine`` / ``normalize_kernel`` and the
:class:`repro.core.config.STLConfig` constructor) historically raised bare
``ValueError``\\ s, so existing ``except ValueError`` call sites keep working
while new code can catch the library root instead.

``ReproError`` is the historical name of the root and is kept as an alias --
the two names are the *same class*, so ``except ReproError`` and
``except STLError`` are interchangeable.
"""


class STLError(Exception):
    """Base class for all errors raised by the repro package."""


#: Historical alias of :class:`STLError` (the pre-serving-layer root name).
ReproError = STLError


class GraphError(ReproError):
    """Raised for invalid graph operations (unknown vertices, bad weights)."""


class VertexNotFoundError(GraphError):
    """Raised when a vertex id is outside the graph's vertex range."""


class EdgeNotFoundError(GraphError):
    """Raised when an operation refers to an edge that does not exist."""


class InvalidWeightError(GraphError):
    """Raised when an edge weight is negative, NaN or otherwise invalid."""


class PartitionError(ReproError):
    """Raised when a partitioner cannot produce a valid balanced separator."""


class HierarchyError(ReproError):
    """Raised when a tree hierarchy violates its structural invariants."""


class LabellingError(ReproError):
    """Raised when a distance labelling is inconsistent or incomplete."""


class UpdateError(ReproError):
    """Raised when a dynamic update cannot be applied to an index."""


class ConfigError(STLError, ValueError):
    """Raised for invalid configuration: bad backend/engine/kernel names,
    inconsistent :class:`repro.core.config.STLConfig` fields, unknown
    maintenance modes.  Subclasses :class:`ValueError` because the option
    validators raised bare ``ValueError`` before the config redesign and
    existing ``except ValueError`` handlers must keep catching it."""


class SnapshotError(STLError):
    """Raised when a label snapshot is used after disposal, fails
    validation, or cannot be produced from the index's current state."""


class ServiceError(STLError):
    """Raised by the query service for lifecycle misuse (querying a stopped
    service, submitting to a full queue with ``wait=False``) and by the wire
    front for malformed requests."""


class SerializationError(ReproError):
    """Raised when an index cannot be saved to or loaded from disk."""


class WorkloadError(ReproError):
    """Raised when a workload generator receives unsatisfiable parameters."""


class ExperimentError(ReproError):
    """Raised when an experiment driver is misconfigured."""
