"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without also swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for invalid graph operations (unknown vertices, bad weights)."""


class VertexNotFoundError(GraphError):
    """Raised when a vertex id is outside the graph's vertex range."""


class EdgeNotFoundError(GraphError):
    """Raised when an operation refers to an edge that does not exist."""


class InvalidWeightError(GraphError):
    """Raised when an edge weight is negative, NaN or otherwise invalid."""


class PartitionError(ReproError):
    """Raised when a partitioner cannot produce a valid balanced separator."""


class HierarchyError(ReproError):
    """Raised when a tree hierarchy violates its structural invariants."""


class LabellingError(ReproError):
    """Raised when a distance labelling is inconsistent or incomplete."""


class UpdateError(ReproError):
    """Raised when a dynamic update cannot be applied to an index."""


class SerializationError(ReproError):
    """Raised when an index cannot be saved to or loaded from disk."""


class WorkloadError(ReproError):
    """Raised when a workload generator receives unsatisfiable parameters."""


class ExperimentError(ReproError):
    """Raised when an experiment driver is misconfigured."""
