"""Argument validation helpers shared across the library."""

from __future__ import annotations

import math

from repro.utils.errors import InvalidWeightError, VertexNotFoundError


def check_non_negative_weight(weight: float) -> float:
    """Validate an edge weight and return it as ``float``.

    Road-network edge weights (travel times / lengths) must be finite and
    non-negative; Dijkstra-family searches rely on this.
    """
    value = float(weight)
    if math.isnan(value) or math.isinf(value):
        raise InvalidWeightError(f"edge weight must be finite, got {weight!r}")
    if value < 0:
        raise InvalidWeightError(f"edge weight must be non-negative, got {weight!r}")
    return value


def check_vertex(vertex: int, num_vertices: int) -> int:
    """Validate that ``vertex`` is an integer id inside ``[0, num_vertices)``."""
    if isinstance(vertex, bool) or not isinstance(vertex, int):
        raise VertexNotFoundError(f"vertex id must be an int, got {vertex!r}")
    if not 0 <= vertex < num_vertices:
        raise VertexNotFoundError(
            f"vertex {vertex} out of range for graph with {num_vertices} vertices"
        )
    return vertex


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in ``[0, 1]``."""
    value = float(value)
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_positive_int(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value
