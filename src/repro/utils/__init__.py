"""Shared utilities: timing, memory accounting, validation and RNG helpers."""

from repro.utils.timer import Timer, timed
from repro.utils.rng import make_rng
from repro.utils.validation import (
    check_non_negative_weight,
    check_vertex,
    check_probability,
)

__all__ = [
    "Timer",
    "timed",
    "make_rng",
    "check_non_negative_weight",
    "check_vertex",
    "check_probability",
]
