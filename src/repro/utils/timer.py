"""Lightweight wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    A ``Timer`` can be started and stopped repeatedly; ``elapsed`` accumulates
    across runs.  It is deliberately simple -- the experiment harness cares
    about totals and averages, not about nested profiling.

    Example::

        timer = Timer()
        with timer.measure():
            do_work()
        print(timer.elapsed, timer.count, timer.average)
    """

    elapsed: float = 0.0
    count: int = 0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the duration of the last run in seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before Timer.start()")
        duration = time.perf_counter() - self._start
        self.elapsed += duration
        self.count += 1
        self._start = None
        return duration

    @contextmanager
    def measure(self):
        """Context manager measuring one run."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    @property
    def average(self) -> float:
        """Average seconds per measured run (0.0 if nothing was measured)."""
        if self.count == 0:
            return 0.0
        return self.elapsed / self.count

    @property
    def elapsed_ms(self) -> float:
        """Total elapsed time in milliseconds."""
        return self.elapsed * 1e3

    @property
    def average_ms(self) -> float:
        """Average milliseconds per measured run."""
        return self.average * 1e3

    @property
    def average_us(self) -> float:
        """Average microseconds per measured run."""
        return self.average * 1e6

    def reset(self) -> None:
        """Forget all accumulated measurements."""
        self.elapsed = 0.0
        self.count = 0
        self._start = None


@contextmanager
def timed():
    """Context manager yielding a single-run :class:`Timer`.

    Example::

        with timed() as t:
            do_work()
        print(t.elapsed)
    """
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()
