"""A* search with a Euclidean lower-bound heuristic.

Included as a second search-based point of comparison for the examples (route
planning demos); requires vertex coordinates and weights that are at least the
Euclidean distance scaled by ``speed`` (travel-time semantics).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush

from repro.graph.graph import Graph
from repro.utils.errors import GraphError

UNREACHABLE = math.inf


def astar_distance(graph: Graph, source: int, target: int, max_speed: float = 1.0) -> float:
    """Shortest-path distance using A* with a Euclidean / max-speed heuristic.

    ``max_speed`` must be an upper bound on travel speed so that the heuristic
    ``euclidean(v, target) / max_speed`` never overestimates the remaining
    travel time; with the default generators a value of 1.0 is admissible only
    for unit-speed graphs, so callers should pass the generator's top speed.
    """
    if graph.coordinates is None:
        raise GraphError("A* requires vertex coordinates")
    if source == target:
        return 0.0
    coords = graph.coordinates
    tx, ty = coords[target]

    def heuristic(v: int) -> float:
        x, y = coords[v]
        return math.hypot(x - tx, y - ty) / max_speed

    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    closed: set[int] = set()
    while heap:
        _, v = heappop(heap)
        if v == target:
            return dist[v]
        if v in closed:
            continue
        closed.add(v)
        for nbr, weight in graph.neighbors(v):
            if math.isinf(weight) or nbr in closed:
                continue
            nd = dist[v] + weight
            if nd < dist.get(nbr, UNREACHABLE):
                dist[nbr] = nd
                heappush(heap, (nd + heuristic(nbr), nbr))
    return UNREACHABLE
