"""Dijkstra's algorithm and the restricted variants used by label construction.

Three variants matter for this library:

* :func:`dijkstra` -- full single-source search (ground truth for tests and
  the construction of H2H-style baselines),
* :func:`dijkstra_with_target` -- single-pair search with early termination
  (the classical query baseline),
* :func:`dijkstra_rank_restricted` -- the search used to build STL labels: it
  only expands vertices whose label index (rank) is **at least** that of the
  source, which by the separator property of the stable tree hierarchy keeps
  the search inside the subgraph ``G[Desc(source)]`` (Remark 1 of the paper).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable, Sequence

from repro.graph.graph import Graph

#: Distance value used for unreachable vertices.
UNREACHABLE = math.inf


def dijkstra(
    graph: Graph,
    source: int,
    with_parents: bool = False,
) -> list[float] | tuple[list[float], list[int]]:
    """Single-source shortest-path distances from ``source``.

    Returns a dense distance list (``math.inf`` for unreachable vertices) and,
    if ``with_parents`` is set, a parent list for path reconstruction
    (``-1`` for the source and unreachable vertices).
    """
    n = graph.num_vertices
    dist: list[float] = [UNREACHABLE] * n
    parent: list[int] = [-1] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    adjacency = graph.adjacency()
    while heap:
        d, v = heappop(heap)
        if d > dist[v]:
            continue
        for nbr, weight in adjacency[v]:
            if math.isinf(weight):
                continue
            nd = d + weight
            if nd < dist[nbr]:
                dist[nbr] = nd
                parent[nbr] = v
                heappush(heap, (nd, nbr))
    if with_parents:
        return dist, parent
    return dist


def dijkstra_distance(graph: Graph, source: int, target: int) -> float:
    """Shortest-path distance from ``source`` to ``target`` (``inf`` if disconnected)."""
    return dijkstra_with_target(graph, source, target)


def dijkstra_with_target(graph: Graph, source: int, target: int) -> float:
    """Single-pair Dijkstra with early termination at ``target``."""
    if source == target:
        return 0.0
    n = graph.num_vertices
    dist: list[float] = [UNREACHABLE] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    adjacency = graph.adjacency()
    while heap:
        d, v = heappop(heap)
        if v == target:
            return d
        if d > dist[v]:
            continue
        for nbr, weight in adjacency[v]:
            if math.isinf(weight):
                continue
            nd = d + weight
            if nd < dist[nbr]:
                dist[nbr] = nd
                heappush(heap, (nd, nbr))
    return UNREACHABLE


def dijkstra_rank_restricted(
    graph: Graph,
    source: int,
    rank: Sequence[int],
    min_rank: int | None = None,
) -> dict[int, float]:
    """Dijkstra from ``source`` expanding only vertices with rank >= ``min_rank``.

    This is the construction search of STL (Remark 1): with ``rank`` being the
    label index tau and ``min_rank = rank[source]``, the search never leaves
    ``G[Desc(source)]`` because every path escaping the source's subtree must
    pass through a separator vertex of strictly smaller rank.

    Returns a sparse ``{vertex: distance}`` dict over the vertices reached.
    """
    threshold = rank[source] if min_rank is None else min_rank
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    adjacency = graph.adjacency()
    while heap:
        d, v = heappop(heap)
        if d > dist.get(v, UNREACHABLE):
            continue
        for nbr, weight in adjacency[v]:
            if math.isinf(weight) or rank[nbr] < threshold:
                continue
            nd = d + weight
            if nd < dist.get(nbr, UNREACHABLE):
                dist[nbr] = nd
                heappush(heap, (nd, nbr))
    return dist


def dijkstra_rank_restricted_into(
    adjacency: Sequence[Sequence[tuple[int, float]]],
    source: int,
    rank: Sequence[int],
    entries: Sequence[float],
    offsets: Sequence[int],
    label_index: int,
    min_rank: int | None = None,
) -> int:
    """Rank-restricted Dijkstra writing distances straight into a CSR buffer.

    The label-construction variant of :func:`dijkstra_rank_restricted`: each
    vertex ``x`` it settles gets ``entries[offsets[x] + label_index]`` set to
    its distance, *at settle time*, instead of the search materialising a
    ``{vertex: distance}`` dict that the caller then iterates a second time.
    A vertex is settled exactly once (pushes are strict improvements, so of
    all heap entries for ``x`` only the smallest survives the staleness
    gate), so every entry is written exactly once and the write happens while
    the vertex is cache-hot from the pop.

    ``entries`` may be a private ``array('d')`` or a ``'d'``-format
    ``memoryview`` over a ``multiprocessing.shared_memory`` segment -- the
    parallel construction workers pass the latter, which is what lets them
    build labels with zero result pickling.  Returns the number of entries
    written (``|Desc(source)|`` reachable vertices, source included).
    """
    threshold = rank[source] if min_rank is None else min_rank
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    # Local bindings: the relaxation loop runs once per edge per settled
    # vertex, so even the global-name lookups of ``heappush``/``math.isinf``
    # are measurable at road-network scale.
    get = dist.get
    push = heappush
    pop = heappop
    isinf = math.isinf
    inf = UNREACHABLE
    written = 0
    while heap:
        d, v = pop(heap)
        if d > get(v, inf):
            continue
        entries[offsets[v] + label_index] = d  # type: ignore[index]
        written += 1
        for nbr, weight in adjacency[v]:
            if isinf(weight) or rank[nbr] < threshold:
                continue
            nd = d + weight
            if nd < get(nbr, inf):
                dist[nbr] = nd
                push(heap, (nd, nbr))
    return written


def dijkstra_subset(
    graph: Graph,
    source: int,
    allowed: Callable[[int], bool],
) -> dict[int, float]:
    """Dijkstra restricted to vertices for which ``allowed(vertex)`` is true.

    ``source`` is always allowed.  Used by the baselines and by tests that
    need subgraph distances without materialising induced subgraphs.
    """
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    adjacency = graph.adjacency()
    while heap:
        d, v = heappop(heap)
        if d > dist.get(v, UNREACHABLE):
            continue
        for nbr, weight in adjacency[v]:
            if math.isinf(weight) or (nbr != source and not allowed(nbr)):
                continue
            nd = d + weight
            if nd < dist.get(nbr, UNREACHABLE):
                dist[nbr] = nd
                heappush(heap, (nd, nbr))
    return dist
