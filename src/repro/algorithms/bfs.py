"""Breadth-first utilities used by the partitioner and the generators."""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Sequence

from repro.graph.graph import Graph


def bfs_distances(
    graph: Graph, source: int, allowed: Iterable[int] | None = None
) -> dict[int, int]:
    """Hop distances from ``source`` (optionally restricted to ``allowed`` vertices)."""
    allowed_set = None if allowed is None else set(allowed)
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for nbr, weight in graph.neighbors(v):
            if math.isinf(weight):
                continue
            if allowed_set is not None and nbr not in allowed_set:
                continue
            if nbr not in dist:
                dist[nbr] = dist[v] + 1
                queue.append(nbr)
    return dist


def bfs_order(graph: Graph, source: int, allowed: Iterable[int] | None = None) -> list[int]:
    """Vertices in BFS visiting order from ``source``."""
    allowed_set = None if allowed is None else set(allowed)
    seen = {source}
    order = [source]
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for nbr, weight in graph.neighbors(v):
            if math.isinf(weight):
                continue
            if allowed_set is not None and nbr not in allowed_set:
                continue
            if nbr not in seen:
                seen.add(nbr)
                order.append(nbr)
                queue.append(nbr)
    return order


def double_sweep_pseudo_peripheral(
    graph: Graph, vertices: Sequence[int], sweeps: int = 2
) -> tuple[int, int]:
    """Approximate a diameter pair of the subgraph on ``vertices`` by BFS sweeps.

    The BFS-level bisector grows level sets from a pseudo-peripheral vertex; a
    couple of sweeps from an arbitrary start give endpoints far apart enough
    for balanced level cuts on road-like graphs.
    """
    if not vertices:
        raise ValueError("vertices must be non-empty")
    allowed = set(vertices)
    start = vertices[0]
    far = start
    for _ in range(max(1, sweeps)):
        dist = bfs_distances(graph, far, allowed)
        far_next = max(dist, key=lambda v: (dist[v], v))
        if far_next == far:
            break
        start, far = far, far_next
    return start, far
