"""Bidirectional Dijkstra -- the index-free query baseline.

The paper's introduction cites bidirectional Dijkstra as the classical
approach that labelling methods improve upon; the
:class:`repro.baselines.dijkstra_oracle.DijkstraOracle` uses this search.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush

from repro.graph.graph import Graph

UNREACHABLE = math.inf


def bidirectional_dijkstra(graph: Graph, source: int, target: int) -> float:
    """Shortest-path distance via simultaneous forward/backward search.

    The search alternates between the frontier with the smaller tentative
    radius and stops when the sum of the two radii exceeds the best meeting
    distance found so far -- the standard correctness condition for
    non-negative weights.
    """
    if source == target:
        return 0.0

    dist_f: dict[int, float] = {source: 0.0}
    dist_b: dict[int, float] = {target: 0.0}
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, target)]
    adjacency = graph.adjacency()
    best = UNREACHABLE

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        # Expand the side with the smaller next key to keep frontiers balanced.
        if heap_f[0][0] <= heap_b[0][0]:
            best = _expand(adjacency, heap_f, dist_f, settled_f, dist_b, best)
        else:
            best = _expand(adjacency, heap_b, dist_b, settled_b, dist_f, best)

    return best


def _expand(
    adjacency: list[list[tuple[int, float]]],
    heap: list[tuple[float, int]],
    dist_this: dict[int, float],
    settled_this: set[int],
    dist_other: dict[int, float],
    best: float,
) -> float:
    d, v = heappop(heap)
    if v in settled_this or d > dist_this.get(v, UNREACHABLE):
        return best
    settled_this.add(v)
    other = dist_other.get(v)
    if other is not None and d + other < best:
        best = d + other
    for nbr, weight in adjacency[v]:
        if math.isinf(weight) or nbr in settled_this:
            continue
        nd = d + weight
        if nd < dist_this.get(nbr, UNREACHABLE):
            dist_this[nbr] = nd
            heappush(heap, (nd, nbr))
        meeting = dist_other.get(nbr)
        if meeting is not None and nd + meeting < best:
            best = nd + meeting
    return best
