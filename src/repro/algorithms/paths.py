"""Path reconstruction and validation helpers."""

from __future__ import annotations

from typing import Sequence

from repro.graph.graph import Graph
from repro.utils.errors import GraphError


def reconstruct_path(parent: Sequence[int], source: int, target: int) -> list[int]:
    """Rebuild the path ``source -> target`` from a Dijkstra parent array.

    Returns an empty list when ``target`` is unreachable.
    """
    if source == target:
        return [source]
    if parent[target] == -1:
        return []
    path = [target]
    v = target
    while v != source:
        v = parent[v]
        if v == -1:
            return []
        path.append(v)
        if len(path) > len(parent):
            raise GraphError("parent array contains a cycle")
    path.reverse()
    return path


def path_weight(graph: Graph, path: Sequence[int]) -> float:
    """Total weight of a vertex path; raises if consecutive vertices are not adjacent."""
    if len(path) < 2:
        return 0.0
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += graph.weight(u, v)
    return total


def is_valid_path(graph: Graph, path: Sequence[int]) -> bool:
    """Whether consecutive vertices of ``path`` are connected by edges."""
    if len(path) < 2:
        return True
    return all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))
