"""Search-based shortest-path algorithms (ground truth and query baselines)."""

from repro.algorithms.dijkstra import (
    dijkstra,
    dijkstra_distance,
    dijkstra_rank_restricted,
    dijkstra_with_target,
)
from repro.algorithms.bidirectional import bidirectional_dijkstra
from repro.algorithms.bfs import bfs_distances, bfs_order, double_sweep_pseudo_peripheral
from repro.algorithms.astar import astar_distance
from repro.algorithms.paths import reconstruct_path, path_weight

__all__ = [
    "dijkstra",
    "dijkstra_distance",
    "dijkstra_rank_restricted",
    "dijkstra_with_target",
    "bidirectional_dijkstra",
    "bfs_distances",
    "bfs_order",
    "double_sweep_pseudo_peripheral",
    "astar_distance",
    "reconstruct_path",
    "path_weight",
]
