"""Connected-component utilities.

Road-network datasets are connected, but synthetic generators, induced
subgraphs during hierarchy construction and ``inf``-weight edge deletions all
produce graphs where connectivity has to be re-established or checked.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Sequence

from repro.graph.graph import Graph


def connected_components(graph: Graph, vertices: Iterable[int] | None = None) -> list[list[int]]:
    """Connected components of ``graph`` (optionally restricted to ``vertices``).

    Edges with infinite weight are treated as absent, matching the paper's
    modelling of edge deletions.  Components are returned largest-first; each
    component lists vertices in ascending order.
    """
    if vertices is None:
        allowed: Sequence[int] | None = None
        candidates: Iterable[int] = graph.vertices()
    else:
        allowed_set = set(vertices)
        allowed = allowed_set  # type: ignore[assignment]
        candidates = sorted(allowed_set)

    visited: set[int] = set()
    components: list[list[int]] = []
    for start in candidates:
        if start in visited:
            continue
        component = _bfs_component(graph, start, allowed, visited)
        components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components


def _bfs_component(
    graph: Graph,
    start: int,
    allowed: set[int] | None,
    visited: set[int],
) -> list[int]:
    queue = deque([start])
    visited.add(start)
    component = [start]
    while queue:
        v = queue.popleft()
        for nbr, weight in graph.neighbors(v):
            if math.isinf(weight):
                continue
            if allowed is not None and nbr not in allowed:
                continue
            if nbr not in visited:
                visited.add(nbr)
                component.append(nbr)
                queue.append(nbr)
    return component


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    if graph.num_vertices == 0:
        return True
    components = connected_components(graph)
    return len(components) == 1


def largest_component(graph: Graph) -> tuple[Graph, dict[int, int]]:
    """Return the induced subgraph on the largest component plus an id mapping."""
    components = connected_components(graph)
    if not components:
        return Graph(0), {}
    return graph.induced_subgraph(components[0])
