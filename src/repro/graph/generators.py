"""Synthetic road-network generators.

The paper evaluates on DIMACS / PTV road networks which are not shippable in
an offline reproduction, so this module provides generators that reproduce the
structural properties that matter for separator-based labellings:

* sparse, near-planar topology with average degree around 2.5-3,
* small balanced vertex separators (roughly ``sqrt(n)``),
* positive travel-time weights with moderate variance,
* a mild hierarchy of "fast" arterial roads.

Three families are provided:

``grid_road_network``
    A perturbed grid: the classic stand-in for a dense urban street network.

``city_road_network``
    Several grid "cities" connected by long arterial highways, with random
    street removals ("rivers" / missing links).  This mimics the multi-city
    structure of the DIMACS state-level datasets.

``delaunay_road_network``
    Random points triangulated via Delaunay and sparsified -- a stand-in for
    rural / suburban networks with irregular geometry.

``highway_grid_network``
    A single perturbed grid sized by vertex count (10k-200k) with a sparse
    lattice of fast arterial highways -- the paper-scale input for the
    streaming benchmark, cheap enough to generate in pure Python.

``random_connected_graph``
    Small random connected graphs used by the property-based tests; not
    road-like, but great for adversarial coverage of the algorithms.
"""

from __future__ import annotations

import math
import random

from repro.graph.components import largest_component
from repro.graph.graph import Graph
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int, check_probability


def _euclidean(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _travel_time(
    distance: float, rng: random.Random, speed: float = 1.0, jitter: float = 0.3
) -> float:
    """Convert a geometric distance into a noisy travel-time weight.

    Weights are integer-valued floats (deciseconds, say): DIMACS road networks
    use integer travel times, integer weights create the shortest-path ties
    that exercise the equality-based affected-vertex detection of the
    weight-increase maintenance algorithms, and integer-valued floats keep
    distance sums exact, which those equality checks rely on.
    """
    noise = 1.0 + rng.uniform(-jitter, jitter)
    value = max(round(10.0 * distance * noise / speed), 1)
    return float(value)


def grid_road_network(
    rows: int,
    cols: int,
    seed: int | random.Random | None = 0,
    drop_probability: float = 0.05,
    diagonal_probability: float = 0.05,
) -> Graph:
    """Generate a perturbed ``rows x cols`` grid road network.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the graph has ``rows * cols`` vertices (possibly
        fewer if dropped edges disconnect a corner -- the largest component is
        returned with dense ids).
    seed:
        Seed or RNG for reproducibility.
    drop_probability:
        Probability that a grid edge is missing (dead ends, rivers).
    diagonal_probability:
        Probability that a diagonal shortcut street is added in a grid cell.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    check_probability(drop_probability, "drop_probability")
    check_probability(diagonal_probability, "diagonal_probability")
    rng = make_rng(seed)

    num_vertices = rows * cols
    coordinates = []
    for r in range(rows):
        for c in range(cols):
            # Small positional jitter so coordinates are not perfectly collinear.
            coordinates.append((c + rng.uniform(-0.2, 0.2), r + rng.uniform(-0.2, 0.2)))

    graph = Graph(num_vertices, coordinates)
    index = lambda r, c: r * cols + c  # noqa: E731 - tiny local helper

    for r in range(rows):
        for c in range(cols):
            v = index(r, c)
            if c + 1 < cols and rng.random() >= drop_probability:
                u = index(r, c + 1)
                graph.add_edge(v, u, _travel_time(_euclidean(coordinates[v], coordinates[u]), rng))
            if r + 1 < rows and rng.random() >= drop_probability:
                u = index(r + 1, c)
                graph.add_edge(v, u, _travel_time(_euclidean(coordinates[v], coordinates[u]), rng))
            if r + 1 < rows and c + 1 < cols and rng.random() < diagonal_probability:
                u = index(r + 1, c + 1)
                graph.add_edge(v, u, _travel_time(_euclidean(coordinates[v], coordinates[u]), rng))

    connected, _ = largest_component(graph)
    return connected


def city_road_network(
    num_cities: int = 4,
    city_rows: int = 12,
    city_cols: int = 12,
    seed: int | random.Random | None = 0,
    highway_speed: float = 3.0,
    drop_probability: float = 0.08,
) -> Graph:
    """Generate a multi-city road network with arterial highways.

    Each city is a perturbed grid; cities are placed on a ring and connected
    by a small number of fast highway edges (travel time divided by
    ``highway_speed``).  The result resembles a state-level DIMACS network:
    dense urban cores with sparse long-distance connections, which is exactly
    the structure that gives separator-based hierarchies small high-level
    cuts.
    """
    check_positive_int(num_cities, "num_cities")
    rng = make_rng(seed)

    city_graphs = [
        grid_road_network(
            city_rows,
            city_cols,
            seed=rng,
            drop_probability=drop_probability,
            diagonal_probability=0.05,
        )
        for _ in range(num_cities)
    ]

    total_vertices = sum(g.num_vertices for g in city_graphs)
    coordinates: list[tuple[float, float]] = []
    edges: list[tuple[int, int, float]] = []
    offsets: list[int] = []
    spacing = max(city_rows, city_cols) * 3.0

    offset = 0
    for i, city in enumerate(city_graphs):
        offsets.append(offset)
        angle = 2 * math.pi * i / num_cities
        centre = (spacing * math.cos(angle), spacing * math.sin(angle))
        assert city.coordinates is not None
        for x, y in city.coordinates:
            coordinates.append((x + centre[0], y + centre[1]))
        for u, v, w in city.edges():
            edges.append((u + offset, v + offset, w))
        offset += city.num_vertices

    graph = Graph(total_vertices, coordinates)
    for u, v, w in edges:
        graph.add_edge(u, v, w)

    # Connect consecutive cities on the ring with a few highways each, plus one
    # cross-ring highway to create alternative long-distance routes.
    highway_pairs = [(i, (i + 1) % num_cities) for i in range(num_cities)]
    if num_cities > 3:
        highway_pairs.append((0, num_cities // 2))
    for a, b in highway_pairs:
        for _ in range(2):
            u = offsets[a] + rng.randrange(city_graphs[a].num_vertices)
            v = offsets[b] + rng.randrange(city_graphs[b].num_vertices)
            if u == v or graph.has_edge(u, v):
                continue
            distance = _euclidean(coordinates[u], coordinates[v])
            graph.add_edge(u, v, _travel_time(distance, rng, speed=highway_speed, jitter=0.1))

    connected, _ = largest_component(graph)
    return connected


def highway_grid_network(
    num_vertices: int,
    seed: int | random.Random | None = 0,
    drop_probability: float = 0.03,
    highway_spacing: int = 16,
    highway_stride: int = 4,
    highway_speed: float = 3.0,
) -> Graph:
    """Generate a paper-scale grid-plus-highway road network.

    A near-square perturbed grid of about ``num_vertices`` vertices overlaid
    with a sparse lattice of arterial highways: every ``highway_spacing``-th
    row and column carries fast skip edges connecting every
    ``highway_stride``-th intersection (travel time divided by
    ``highway_speed``).  The arterials reproduce the property that makes
    separator hierarchies shine on real road networks -- long-distance routes
    funnel through a small set of fast corridors -- while staying O(n) to
    generate, so the streaming benchmark can sweep 10k-200k vertices in pure
    Python.  Deterministic for a given ``seed``; the largest component is
    returned with dense ids.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(highway_spacing, "highway_spacing")
    check_positive_int(highway_stride, "highway_stride")
    check_probability(drop_probability, "drop_probability")
    rng = make_rng(seed)

    cols = max(2, round(math.sqrt(num_vertices)))
    rows = max(2, -(-num_vertices // cols))  # ceil division
    total = rows * cols
    coordinates = []
    for r in range(rows):
        for c in range(cols):
            coordinates.append((c + rng.uniform(-0.2, 0.2), r + rng.uniform(-0.2, 0.2)))

    graph = Graph(total, coordinates)
    for r in range(rows):
        base = r * cols
        for c in range(cols):
            v = base + c
            if c + 1 < cols and rng.random() >= drop_probability:
                graph.add_edge(v, v + 1, _travel_time(_euclidean(coordinates[v], coordinates[v + 1]), rng))
            if r + 1 < rows and rng.random() >= drop_probability:
                u = v + cols
                graph.add_edge(v, u, _travel_time(_euclidean(coordinates[v], coordinates[u]), rng))

    # Arterial lattice: fast skip edges along every spacing-th row/column.
    # Jitter is kept low so arterials are reliably faster than the streets
    # they bypass (otherwise they would not attract long-distance routes).
    for r in range(0, rows, highway_spacing):
        base = r * cols
        for c in range(0, cols - highway_stride, highway_stride):
            v, u = base + c, base + c + highway_stride
            distance = _euclidean(coordinates[v], coordinates[u])
            graph.add_edge(v, u, _travel_time(distance, rng, speed=highway_speed, jitter=0.05))
    for c in range(0, cols, highway_spacing):
        for r in range(0, rows - highway_stride, highway_stride):
            v, u = r * cols + c, (r + highway_stride) * cols + c
            distance = _euclidean(coordinates[v], coordinates[u])
            graph.add_edge(v, u, _travel_time(distance, rng, speed=highway_speed, jitter=0.05))

    connected, _ = largest_component(graph)
    return connected


def delaunay_road_network(
    num_vertices: int,
    seed: int | random.Random | None = 0,
    keep_probability: float = 0.75,
) -> Graph:
    """Generate an irregular road network from a Delaunay triangulation.

    Random points in the unit square are triangulated (via ``scipy.spatial``)
    and each triangulation edge is kept with ``keep_probability``; the largest
    connected component is returned.  Falls back to a k-nearest-neighbour
    construction when SciPy is unavailable.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_probability(keep_probability, "keep_probability")
    rng = make_rng(seed)

    points = [(rng.random() * 100.0, rng.random() * 100.0) for _ in range(num_vertices)]

    edge_set: set[tuple[int, int]] = set()
    try:
        from scipy.spatial import Delaunay  # pylint: disable=import-outside-toplevel
        import numpy as np  # pylint: disable=import-outside-toplevel

        triangulation = Delaunay(np.array(points))
        for simplex in triangulation.simplices:
            a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
            for u, v in ((a, b), (b, c), (a, c)):
                edge_set.add((u, v) if u < v else (v, u))
    except Exception:  # pragma: no cover - scipy is installed in CI, this is a fallback
        for v in range(num_vertices):
            by_distance = sorted(
                (u for u in range(num_vertices) if u != v),
                key=lambda u: _euclidean(points[v], points[u]),
            )
            for u in by_distance[:3]:
                edge_set.add((u, v) if u < v else (v, u))

    graph = Graph(num_vertices, points)
    for u, v in sorted(edge_set):
        if rng.random() <= keep_probability:
            graph.add_edge(u, v, _travel_time(_euclidean(points[u], points[v]), rng))

    connected, _ = largest_component(graph)
    return connected


def random_connected_graph(
    num_vertices: int,
    extra_edge_probability: float = 0.1,
    seed: int | random.Random | None = 0,
    max_weight: float = 10.0,
    integer_weights: bool = True,
) -> Graph:
    """Small random connected graph for property-based tests.

    A random spanning tree guarantees connectivity; extra edges are added
    independently with ``extra_edge_probability``.  ``integer_weights``
    produces many shortest-path ties, which stresses the equality-based
    affected-vertex detection of the maintenance algorithms.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_probability(extra_edge_probability, "extra_edge_probability")
    rng = make_rng(seed)

    def draw_weight() -> float:
        if integer_weights:
            return float(rng.randint(1, int(max_weight)))
        return round(rng.uniform(0.5, max_weight), 2)

    graph = Graph(num_vertices)
    order = list(range(num_vertices))
    rng.shuffle(order)
    for i in range(1, num_vertices):
        parent = order[rng.randrange(i)]
        graph.add_edge(order[i], parent, draw_weight())
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if not graph.has_edge(u, v) and rng.random() < extra_edge_probability:
                graph.add_edge(u, v, draw_weight())
    return graph


def paper_example_graph() -> Graph:
    """The 16-vertex example road network of Figure 2 in the paper.

    Vertex ids follow the paper (1-16) shifted down by one to 0-15.  This
    graph is used by tests that cross-check labels and updates against the
    worked examples in Sections 4 and 5.
    """
    # Edges transcribed from Figure 2: (u, v, weight), 1-based ids.
    edges_1based = [
        (1, 9, 4),
        (1, 7, 3),
        (1, 12, 3),
        (2, 7, 2),
        (2, 3, 3),
        (3, 7, 4),
        (3, 14, 3),
        (3, 16, 3),
        (4, 12, 4),
        (4, 11, 3),
        (4, 13, 2),
        (5, 9, 6),
        (5, 15, 6),
        (6, 16, 9),
        (6, 15, 2),
        (7, 9, 7),
        (8, 12, 6),
        (8, 13, 4),
        (9, 14, 3),
        (10, 12, 2),
        (10, 11, 3),
        (11, 13, 8),
        (12, 15, 2),
        (13, 15, 5),
        (14, 16, 2),
        (15, 16, 3),
    ]
    graph = Graph(16)
    for u, v, w in edges_1based:
        graph.add_edge(u - 1, v - 1, float(w))
    return graph


def scaled_datasets(seed: int = 2025) -> dict[str, Graph]:
    """Convenience wrapper returning the Table 2 analogue datasets.

    See :mod:`repro.workloads.datasets` for the registry with metadata; this
    helper only exists so examples can grab the small datasets in one call.
    """
    from repro.workloads.datasets import DATASETS, build_dataset

    return {name: build_dataset(name, seed=seed) for name in list(DATASETS)[:4]}
