"""Undirected weighted graph with O(1) edge-weight updates.

This is the substrate every index in the library is built on.  Vertices are
dense integer ids ``0 .. n-1``; the adjacency structure is a list of
``(neighbour, weight)`` lists, which is the representation all the Dijkstra
variants and maintenance searches iterate over.

The class models exactly the dynamic road network of the paper: the *topology*
is fixed after construction (edges are added up front), while *edge weights*
change over time via :meth:`Graph.set_weight`.  Structural changes (Section 8
of the paper) are modelled on top of this by setting weights to infinity
(deletion) or by rebuilding sub-hierarchies (insertion, see
``repro.core.structural``).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.utils.errors import EdgeNotFoundError, GraphError
from repro.utils.validation import check_non_negative_weight, check_vertex

#: Weight used to represent a logically deleted edge (Section 8).
INFINITE_WEIGHT = math.inf


class Graph:
    """Undirected, weighted, dynamic graph over dense integer vertex ids.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.
    coordinates:
        Optional list of ``(x, y)`` coordinates, one per vertex.  Road-network
        generators always provide coordinates; the geometric partitioner uses
        them, and everything else ignores them.

    Notes
    -----
    * Parallel edges are not allowed; adding an existing edge overwrites its
      weight.
    * Self loops are rejected -- they never participate in shortest paths on
    	road networks and would complicate the maintenance algorithms.
    """

    __slots__ = (
        "_adjacency",
        "_edge_index",
        "_coordinates",
        "_num_edges",
        "_weight_log",
        "_log_start",
        "_structure_version",
    )

    def __init__(self, num_vertices: int, coordinates: Sequence[tuple[float, float]] | None = None):
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._adjacency: list[list[tuple[int, float]]] = [[] for _ in range(num_vertices)]
        # (u, v) with u < v  ->  position of v in adjacency[u]
        self._edge_index: dict[tuple[int, int], int] = {}
        self._num_edges = 0
        # Bounded log of weight writes, consumed by observers (the resident
        # process-pool workers) that mirror adjacency state incrementally.
        self._weight_log: list[tuple[int, int, float]] = []
        self._log_start = 0
        self._structure_version = 0
        if coordinates is not None:
            coordinates = [(float(x), float(y)) for x, y in coordinates]
            if len(coordinates) != num_vertices:
                raise GraphError(
                    f"coordinates has {len(coordinates)} entries for {num_vertices} vertices"
                )
        self._coordinates: list[tuple[float, float]] | None = coordinates

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    @property
    def coordinates(self) -> list[tuple[float, float]] | None:
        """Per-vertex ``(x, y)`` coordinates, or ``None`` if unavailable."""
        return self._coordinates

    def vertices(self) -> range:
        """Iterate over all vertex ids."""
        return range(self.num_vertices)

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Edge manipulation
    # ------------------------------------------------------------------ #

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add the undirected edge ``(u, v)`` or overwrite its weight."""
        check_vertex(u, self.num_vertices)
        check_vertex(v, self.num_vertices)
        if u == v:
            raise GraphError(f"self loops are not allowed (vertex {u})")
        weight = check_non_negative_weight(weight)
        key = self._key(u, v)
        if key in self._edge_index:
            self._set_weight_by_key(key, weight)
            return
        self._edge_index[key] = len(self._adjacency[key[0]])
        self._adjacency[u].append((v, weight))
        self._adjacency[v].append((u, weight))
        self._num_edges += 1
        self._structure_version += 1

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        if u == v:
            return False
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            return False
        return self._key(u, v) in self._edge_index

    def weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``(u, v)``.

        Raises :class:`EdgeNotFoundError` if the edge does not exist.
        """
        key = self._key(u, v)
        pos = self._edge_index.get(key)
        if pos is None:
            raise EdgeNotFoundError(f"edge ({u}, {v}) does not exist")
        return self._adjacency[key[0]][pos][1]

    def _set_weight_by_key(self, key: tuple[int, int], weight: float) -> None:
        a, b = key
        pos = self._edge_index[key]
        self._adjacency[a][pos] = (b, weight)
        self._log_weight_write(a, b, weight)
        # The reverse entry has to be located by scanning b's adjacency once;
        # road networks have tiny degrees so the scan is effectively O(1).
        adj_b = self._adjacency[b]
        for i, (nbr, _) in enumerate(adj_b):
            if nbr == a:
                adj_b[i] = (a, weight)
                return
        raise AssertionError("edge index out of sync with adjacency lists")

    def _log_weight_write(self, a: int, b: int, weight: float) -> None:
        log = self._weight_log
        log.append((a, b, weight))
        # Keep the log bounded: once it outgrows the graph itself, drop the
        # older half.  Observers whose cursor falls before the trimmed start
        # get ``None`` from :meth:`weight_changes_since` and must resync.
        if len(log) > max(256, 2 * self._num_edges):
            drop = len(log) // 2
            del log[:drop]
            self._log_start += drop

    def set_weight(self, u: int, v: int, weight: float) -> float:
        """Set the weight of an existing edge and return the previous weight.

        Setting the weight to ``math.inf`` models an edge deletion (Section 8
        of the paper): searches and maintenance algorithms skip infinite
        edges, so the edge is logically absent while the topology -- and with
        it the stable tree hierarchy -- stays untouched.
        """
        key = self._key(u, v)
        pos = self._edge_index.get(key)
        if pos is None:
            raise EdgeNotFoundError(f"edge ({u}, {v}) does not exist")
        if math.isinf(weight) and weight > 0:
            new_weight = INFINITE_WEIGHT
        else:
            new_weight = check_non_negative_weight(weight)
        old_weight = self._adjacency[key[0]][pos][1]
        self._set_weight_by_key(key, new_weight)
        return old_weight

    # ------------------------------------------------------------------ #
    # Change log (incremental adjacency mirroring)
    # ------------------------------------------------------------------ #

    @property
    def structure_version(self) -> int:
        """Counter bumped whenever a *new* edge is added.

        Weight writes never change it.  An observer mirroring the adjacency
        (a resident worker process) compares the version it last saw against
        the current one: a mismatch means the topology changed, so the
        weight-delta log alone cannot bring its mirror up to date and a full
        resync of the affected rows is required.
        """
        return self._structure_version

    def weight_log_position(self) -> int:
        """Monotone cursor over all weight writes ever applied.

        Capture it before handing adjacency state to an observer; later,
        :meth:`weight_changes_since` returns exactly the writes that happened
        after the capture.
        """
        return self._log_start + len(self._weight_log)

    def weight_changes_since(self, position: int) -> list[tuple[int, int, float]] | None:
        """Weight writes applied since ``position``, oldest first.

        Each item is ``(u, v, weight)`` with ``u < v`` -- the *absolute* new
        weight, so replaying a change twice is idempotent.  Returns ``None``
        when the log has been trimmed past ``position`` (the caller must
        resync from the full adjacency instead).
        """
        if position < self._log_start:
            return None
        return self._weight_log[position - self._log_start :]

    # ------------------------------------------------------------------ #
    # Neighbour access
    # ------------------------------------------------------------------ #

    def neighbors(self, v: int) -> list[tuple[int, float]]:
        """List of ``(neighbour, weight)`` pairs of ``v``.

        The returned list is the internal adjacency list; callers must not
        mutate it.  Exposing it directly keeps the hot loops in the search
        algorithms allocation-free.
        """
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Number of incident edges of ``v``."""
        return len(self._adjacency[v])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over undirected edges as ``(u, v, weight)`` with ``u < v``."""
        for (u, v), pos in self._edge_index.items():
            yield u, v, self._adjacency[u][pos][1]

    def adjacency(self) -> list[list[tuple[int, float]]]:
        """The raw adjacency structure (read-only by convention)."""
        return self._adjacency

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def copy(self) -> "Graph":
        """Deep copy of the graph (topology, weights and coordinates)."""
        clone = Graph(self.num_vertices, self._coordinates)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def induced_subgraph(self, vertices: Iterable[int]) -> tuple["Graph", dict[int, int]]:
        """Return the induced subgraph on ``vertices`` plus an id mapping.

        The subgraph uses fresh dense ids; the returned dict maps original ids
        to subgraph ids.
        """
        vertex_list = sorted(set(vertices))
        for v in vertex_list:
            check_vertex(v, self.num_vertices)
        mapping = {v: i for i, v in enumerate(vertex_list)}
        coords = None
        if self._coordinates is not None:
            coords = [self._coordinates[v] for v in vertex_list]
        sub = Graph(len(vertex_list), coords)
        for v in vertex_list:
            for nbr, w in self._adjacency[v]:
                if nbr > v and nbr in mapping:
                    sub.add_edge(mapping[v], mapping[nbr], w)
        return sub, mapping

    def total_weight(self) -> float:
        """Sum of all edge weights (ignores infinite weights)."""
        return sum(w for _, _, w in self.edges() if not math.isinf(w))

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int, float]],
        coordinates: Sequence[tuple[float, float]] | None = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v, weight)`` triples."""
        graph = cls(num_vertices, coordinates)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    def to_networkx(self):  # pragma: no cover - exercised in tests that import networkx
        """Convert to a :class:`networkx.Graph` (test / interop helper)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.vertices())
        for u, v, w in self.edges():
            nx_graph.add_edge(u, v, weight=w)
        return nx_graph
