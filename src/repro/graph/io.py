"""Graph I/O in the formats used by the road-network community.

Two formats are supported:

* the 9th DIMACS Implementation Challenge format (``.gr`` graph files plus
  optional ``.co`` coordinate files), which is what the paper's datasets ship
  in, so users with the real data can drop it straight into this library, and
* a trivial whitespace edge-list format for quick experiments.
"""

from __future__ import annotations

import os
from typing import Iterable, TextIO

from repro.graph.graph import Graph
from repro.utils.errors import GraphError


# --------------------------------------------------------------------------- #
# DIMACS 9th challenge format
# --------------------------------------------------------------------------- #

def write_dimacs(graph: Graph, path: str, comment: str = "repro export") -> None:
    """Write ``graph`` in DIMACS ``.gr`` format.

    Each undirected edge is written as two arc lines (``a u v w``), matching
    the convention of the challenge files.  Vertex ids are shifted to 1-based.
    """
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"c {comment}\n")
        handle.write(f"p sp {graph.num_vertices} {2 * graph.num_edges}\n")
        for u, v, w in graph.edges():
            weight = int(round(w)) if float(w).is_integer() else w
            handle.write(f"a {u + 1} {v + 1} {weight}\n")
            handle.write(f"a {v + 1} {u + 1} {weight}\n")


def write_dimacs_coordinates(graph: Graph, path: str) -> None:
    """Write vertex coordinates in DIMACS ``.co`` format (scaled to integers)."""
    if graph.coordinates is None:
        raise GraphError("graph has no coordinates to write")
    with open(path, "w", encoding="ascii") as handle:
        handle.write("c repro coordinate export\n")
        handle.write(f"p aux sp co {graph.num_vertices}\n")
        for v, (x, y) in enumerate(graph.coordinates):
            handle.write(f"v {v + 1} {int(round(x * 1e6))} {int(round(y * 1e6))}\n")


def read_dimacs(path: str, coordinate_path: str | None = None) -> Graph:
    """Read a DIMACS ``.gr`` file (optionally with a ``.co`` coordinate file).

    Arc lines appearing in both directions are merged into single undirected
    edges; when both directions carry different weights the smaller one wins
    (the challenge files are symmetric, so this only matters for hand-edited
    inputs).
    """
    num_vertices = 0
    edges: dict[tuple[int, int], float] = {}
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 4 or parts[1] != "sp":
                    raise GraphError(f"unsupported DIMACS problem line: {line!r}")
                num_vertices = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphError(f"malformed arc line: {line!r}")
                u, v, w = int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])
                if u == v:
                    continue
                key = (u, v) if u < v else (v, u)
                if key in edges:
                    edges[key] = min(edges[key], w)
                else:
                    edges[key] = w
            else:
                raise GraphError(f"unrecognised DIMACS line: {line!r}")

    coordinates = None
    if coordinate_path is not None:
        coordinates = _read_dimacs_coordinates(coordinate_path, num_vertices)

    graph = Graph(num_vertices, coordinates)
    for (u, v), w in edges.items():
        graph.add_edge(u, v, w)
    return graph


def _read_dimacs_coordinates(path: str, num_vertices: int) -> list[tuple[float, float]]:
    coordinates = [(0.0, 0.0)] * num_vertices
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("c", "p")):
                continue
            parts = line.split()
            if parts[0] != "v" or len(parts) != 4:
                raise GraphError(f"malformed coordinate line: {line!r}")
            v = int(parts[1]) - 1
            if not 0 <= v < num_vertices:
                raise GraphError(f"coordinate line refers to unknown vertex {v + 1}")
            coordinates[v] = (float(parts[2]) / 1e6, float(parts[3]) / 1e6)
    return coordinates


# --------------------------------------------------------------------------- #
# Plain edge-list format
# --------------------------------------------------------------------------- #

def write_edge_list(graph: Graph, path_or_handle: str | TextIO) -> None:
    """Write ``graph`` as ``u v weight`` lines (0-based vertex ids)."""

    def _write(handle: TextIO) -> None:
        handle.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")

    if isinstance(path_or_handle, (str, os.PathLike)):
        with open(path_or_handle, "w", encoding="ascii") as handle:
            _write(handle)
    else:
        _write(path_or_handle)


def read_edge_list(path_or_handle: str | TextIO) -> Graph:
    """Read a graph written by :func:`write_edge_list`."""

    def _read(handle: Iterable[str]) -> Graph:
        lines = iter(handle)
        header = next(lines).split()
        num_vertices = int(header[0])
        graph = Graph(num_vertices)
        for line in lines:
            line = line.strip()
            if not line:
                continue
            u_str, v_str, w_str = line.split()
            graph.add_edge(int(u_str), int(v_str), float(w_str))
        return graph

    if isinstance(path_or_handle, (str, os.PathLike)):
        with open(path_or_handle, "r", encoding="ascii") as handle:
            return _read(handle)
    return _read(path_or_handle)
