"""Edge-weight update model for dynamic road networks.

The paper considers two kinds of updates (Section 3): edge-weight *increases*
and *decreases*.  :class:`EdgeUpdate` captures a single update together with
the old weight so it can be classified and rolled back, and
:class:`UpdateBatch` captures the batches used throughout the evaluation
(Tables 3, Figures 8 and 10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.graph.graph import Graph
from repro.utils.errors import UpdateError


class UpdateKind(enum.Enum):
    """Classification of a weight update."""

    INCREASE = "increase"
    DECREASE = "decrease"
    NEUTRAL = "neutral"


@dataclass(frozen=True)
class EdgeUpdate:
    """A single edge-weight update ``(u, v): old_weight -> new_weight``."""

    u: int
    v: int
    old_weight: float
    new_weight: float

    @property
    def kind(self) -> UpdateKind:
        """Whether this update increases, decreases or preserves the weight."""
        if self.new_weight > self.old_weight:
            return UpdateKind.INCREASE
        if self.new_weight < self.old_weight:
            return UpdateKind.DECREASE
        return UpdateKind.NEUTRAL

    @property
    def delta(self) -> float:
        """Signed weight change ``new - old``."""
        return self.new_weight - self.old_weight

    def reversed(self) -> "EdgeUpdate":
        """The update that undoes this one (used to restore batches)."""
        return EdgeUpdate(self.u, self.v, self.new_weight, self.old_weight)

    def apply(self, graph: Graph) -> None:
        """Apply the update to ``graph`` (validates the recorded old weight)."""
        current = graph.weight(self.u, self.v)
        if current != self.old_weight:
            raise UpdateError(
                f"edge ({self.u}, {self.v}) has weight {current}, "
                f"update expected {self.old_weight}"
            )
        graph.set_weight(self.u, self.v, self.new_weight)

    @classmethod
    def scaling(cls, graph: Graph, u: int, v: int, factor: float) -> "EdgeUpdate":
        """Create an update multiplying the current weight of ``(u, v)`` by ``factor``."""
        old = graph.weight(u, v)
        return cls(u, v, old, old * factor)

    @classmethod
    def setting(cls, graph: Graph, u: int, v: int, new_weight: float) -> "EdgeUpdate":
        """Create an update setting the weight of ``(u, v)`` to ``new_weight``."""
        old = graph.weight(u, v)
        return cls(u, v, old, new_weight)


class UpdateBatch:
    """An ordered batch of edge-weight updates.

    Batches are how the paper's evaluation exercises maintenance: a batch of
    1,000 random edges is increased (weight x2), the indexes are updated, and
    the batch is then restored to measure the decrease case.
    """

    def __init__(self, updates: Iterable[EdgeUpdate] = ()):
        self._updates: list[EdgeUpdate] = list(updates)

    def __len__(self) -> int:
        """Number of updates in the batch."""
        return len(self._updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        """Iterate the updates in application order."""
        return iter(self._updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        """The update at position ``index`` (application order)."""
        return self._updates[index]

    def append(self, update: EdgeUpdate) -> None:
        """Add an update to the end of the batch."""
        self._updates.append(update)

    @property
    def updates(self) -> Sequence[EdgeUpdate]:
        """The updates in application order."""
        return tuple(self._updates)

    def increases(self) -> "UpdateBatch":
        """The sub-batch of weight increases."""
        return UpdateBatch(u for u in self._updates if u.kind is UpdateKind.INCREASE)

    def decreases(self) -> "UpdateBatch":
        """The sub-batch of weight decreases."""
        return UpdateBatch(u for u in self._updates if u.kind is UpdateKind.DECREASE)

    def reversed(self) -> "UpdateBatch":
        """The batch that restores every edge to its old weight (reverse order)."""
        return UpdateBatch(u.reversed() for u in reversed(self._updates))

    def coalesce(self, graph: Graph) -> "UpdateBatch":
        """Fold the batch into one *net* update per edge, in first-touch order.

        Applying a batch that touches the same edge several times must leave
        the edge at the weight of its **last** update, whatever the mix of
        increases and decreases in between.  Grouping by kind (all increases
        first, then all decreases) silently reorders such batches and lands on
        the wrong final weight; coalescing is the principled alternative: per
        edge, the whole update chain collapses to a single
        :class:`EdgeUpdate` whose ``old_weight`` is the edge's *current*
        weight in ``graph`` and whose ``new_weight`` is the chain's final
        weight.  The net update's :attr:`EdgeUpdate.kind` then classifies the
        overall effect (a NEUTRAL net update means the chain cancelled out).

        **Ordering guarantee:** the returned batch lists one net update per
        distinct edge in *first-seen* order -- the position of an edge's
        first touch in this batch -- regardless of how often or with which
        kinds the edge is touched later.  Downstream consumers rely on this
        being deterministic: :class:`repro.core.shard.ShardPlanner` splits
        the net batch into per-region sub-batches by iterating it in order,
        so a stable coalesce order is what makes shard plans (and the
        parallel schedule built from them) reproducible run to run.

        The chain is validated while folding: each update's ``old_weight``
        must match the previous update's ``new_weight`` (or the graph's
        current weight for the first touch), mirroring the validation of
        :meth:`EdgeUpdate.apply`.  Raises :class:`UpdateError` on mismatch.
        """
        pending: dict[tuple[int, int], EdgeUpdate] = {}
        order: list[tuple[int, int]] = []
        for update in self._updates:
            key = (update.u, update.v) if update.u < update.v else (update.v, update.u)
            prev = pending.get(key)
            if prev is None:
                expected_old = graph.weight(update.u, update.v)
            else:
                expected_old = prev.new_weight
            if update.old_weight != expected_old:
                raise UpdateError(
                    f"edge ({update.u}, {update.v}) has weight {expected_old}, "
                    f"update expected {update.old_weight}"
                )
            if prev is None:
                order.append(key)
                pending[key] = EdgeUpdate(update.u, update.v, expected_old, update.new_weight)
            else:
                pending[key] = EdgeUpdate(prev.u, prev.v, prev.old_weight, update.new_weight)
        return UpdateBatch(pending[key] for key in order)

    def apply(self, graph: Graph) -> None:
        """Apply every update in order to ``graph``."""
        for update in self._updates:
            update.apply(graph)

    def rollback(self, graph: Graph) -> None:
        """Undo every update (in reverse order) on ``graph``."""
        self.reversed().apply(graph)

    def edges(self) -> list[tuple[int, int]]:
        """The distinct edges touched by this batch, in first-touch order."""
        seen: set[tuple[int, int]] = set()
        ordered: list[tuple[int, int]] = []
        for update in self._updates:
            key = (update.u, update.v) if update.u < update.v else (update.v, update.u)
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        return ordered
