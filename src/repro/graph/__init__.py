"""Weighted dynamic graphs, synthetic road-network generators and I/O."""

from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch, UpdateKind
from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph import generators, io

__all__ = [
    "Graph",
    "EdgeUpdate",
    "UpdateBatch",
    "UpdateKind",
    "connected_components",
    "is_connected",
    "largest_component",
    "generators",
    "io",
]
