"""Figure 10 -- batched maintenance vs full reconstruction.

A stream of updates (each edge's weight is doubled, then restored) is
processed in groups of growing size; the cumulative maintenance time of STL
(Pareto Search) is compared against the time to rebuild the labelling from
scratch.  The paper's observation -- maintenance stays below reconstruction
even for the largest group -- is the headline argument for incremental
maintenance.

Four maintenance flavours are measured per group:

* the historical **per-update loop** (``apply_update`` per stream entry),
* the **batched path** (``apply_batch`` on the increase half, then on the
  decrease half), which coalesces per edge, shares the mark/repair phases of
  Pareto Search across the whole group, and auto-falls back to an in-place
  label rebuild past the :class:`repro.core.batch.BatchPolicy` crossover
  (reported in the ``rebuild fallbacks`` row),
* the **thread-sharded path** (``apply_batch(..., parallel="thread")``),
  which splits each half along the :class:`repro.core.shard.ShardPlanner`
  partition and runs the per-region sub-batches on a thread pool
  (:class:`repro.core.shard.ShardedBatchEngine`), falling back to the serial
  engine for degenerate plans, and
* the **process-sharded path** (``apply_batch(..., parallel="process")``),
  which ships each region's label rows to a worker process that owns them
  (:class:`repro.core.parallel.ProcessShardBackend`) -- the only flavour
  whose searches run outside the GIL.

Each batched/sharded flavour is additionally measured with the **Label
Search engine** (``apply_batch(..., engine="label_search")``, the batched
Algorithms 1-2 of :mod:`repro.core.batch_label_search`), giving the full
engine x backend matrix per group: ``STL batched`` vs ``STL-LS batched``
compares the engine families serially, the sharded rows compare them on the
worker-pool backends.  The Pareto rows pin ``engine="pareto"`` explicitly so
the policy's engine crossover can never reroute a labelled series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stl import StableTreeLabelling
from repro.experiments.harness import ExperimentConfig, measure_batched_seconds
from repro.experiments.reporting import format_series
from repro.utils.timer import Timer
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import mixed_update_stream


@dataclass
class Figure10Series:
    """Per-dataset maintenance-vs-reconstruction comparison."""

    network: str
    group_sizes: list[int] = field(default_factory=list)
    maintenance_seconds: list[float] = field(default_factory=list)
    batched_seconds: list[float] = field(default_factory=list)
    sharded_seconds: list[float] = field(default_factory=list)
    process_seconds: list[float] = field(default_factory=list)
    ls_batched_seconds: list[float] = field(default_factory=list)
    ls_sharded_seconds: list[float] = field(default_factory=list)
    ls_process_seconds: list[float] = field(default_factory=list)
    rebuild_fallbacks: list[int] = field(default_factory=list)
    reconstruction_seconds: float = 0.0

    def as_series(self) -> dict[str, list[float]]:
        return {
            "STL per-update [s]": self.maintenance_seconds,
            "STL batched [s]": self.batched_seconds,
            "STL sharded [s]": self.sharded_seconds,
            "STL process-sharded [s]": self.process_seconds,
            "STL-LS batched [s]": self.ls_batched_seconds,
            "STL-LS sharded [s]": self.ls_sharded_seconds,
            "STL-LS process-sharded [s]": self.ls_process_seconds,
            "Rebuild fallbacks": [float(n) for n in self.rebuild_fallbacks],
            "Reconstruction [s]": [self.reconstruction_seconds] * len(self.group_sizes),
        }


def run_figure10(
    config: ExperimentConfig | None = None,
    group_sizes: tuple[int, ...] = (25, 50, 100, 200, 400),
) -> list[Figure10Series]:
    """Measure grouped maintenance time against full reconstruction.

    Every group is measured twice on the same update stream: once through the
    per-update loop and once through the batched path.  Both passes restore
    the graph to its original weights (the stream nets to zero), so the
    measurements are directly comparable.
    """
    config = config or ExperimentConfig()
    results: list[Figure10Series] = []
    for name in config.datasets:
        graph = build_dataset(name, scale=config.scale, seed=config.seed)
        stl = StableTreeLabelling.build(graph.copy(), config.hierarchy_options())
        stl.batch_policy = config.batch_policy()
        series = Figure10Series(network=name, reconstruction_seconds=stl.construction_seconds)
        for size in group_sizes:
            stream = mixed_update_stream(
                stl.graph, size, factor=config.update_factor, seed=config.seed
            )
            timer = Timer()
            with timer.measure():
                for update in stream:
                    stl.apply_update(update)
            series.group_sizes.append(size)
            series.maintenance_seconds.append(timer.elapsed)
            # The batched path processes the same stream as the paper does: the
            # increase half as one batch, then the restoring decrease half.
            # parallel=False pins this row to the serial engines: without it
            # the policy's crossover would route large groups to the sharded
            # engine and the "batched" row would measure the wrong thing.
            seconds, fallbacks = measure_batched_seconds(
                stl, (stream.increases(), stream.decreases()),
                parallel=False, engine="pareto",
            )
            series.batched_seconds.append(seconds)
            series.rebuild_fallbacks.append(fallbacks)
            # The sharded paths replay the same halves once more each (the
            # stream nets to zero after every pass, so the graph state
            # matches); the explicit backend names force the worker-pool
            # engines even for groups the policy would keep serial.
            sharded, _ = measure_batched_seconds(
                stl, (stream.increases(), stream.decreases()),
                parallel="thread", engine="pareto",
            )
            series.sharded_seconds.append(sharded)
            process, _ = measure_batched_seconds(
                stl, (stream.increases(), stream.decreases()),
                parallel="process", engine="pareto",
            )
            series.process_seconds.append(process)
            # The Label Search engine replays the same halves on all three
            # backends -- the engine half of the engine x backend matrix.
            ls_batched, _ = measure_batched_seconds(
                stl, (stream.increases(), stream.decreases()),
                parallel=False, engine="label_search",
            )
            series.ls_batched_seconds.append(ls_batched)
            ls_sharded, _ = measure_batched_seconds(
                stl, (stream.increases(), stream.decreases()),
                parallel="thread", engine="label_search",
            )
            series.ls_sharded_seconds.append(ls_sharded)
            ls_process, _ = measure_batched_seconds(
                stl, (stream.increases(), stream.decreases()),
                parallel="process", engine="label_search",
            )
            series.ls_process_seconds.append(ls_process)
        stl.close()  # release the process backend's worker pool
        results.append(series)
    return results


def format_figure10(results: list[Figure10Series]) -> str:
    """Render the Figure 10 comparison as per-dataset tables."""
    blocks = []
    for series in results:
        blocks.append(
            format_series(
                series.as_series(),
                series.group_sizes,
                title=(
                    f"Figure 10 ({series.network}): grouped maintenance vs reconstruction"
                ),
                x_label="# updates",
            )
        )
    return "\n\n".join(blocks)
