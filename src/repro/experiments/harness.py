"""Shared experiment infrastructure: configuration, building, measuring.

The drivers in this package all follow the same recipe:

1. build the dataset analogue(s),
2. build every competing index on its own copy of the graph,
3. replay a workload while timing it,
4. return rows/series shaped like the paper's exhibit.

This module hosts the pieces every driver shares so the per-exhibit modules
stay small and readable.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.baselines.dtdhl import DTDHL
from repro.baselines.hc2l import HC2L
from repro.baselines.inch2h import IncH2H
from repro.core.batch import BatchPolicy
from repro.core.stl import StableTreeLabelling
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.timer import Timer
from repro.workloads.datasets import DEFAULT_BENCH_DATASETS, DATASETS


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment driver.

    The defaults are sized so that the complete benchmark suite finishes in a
    few minutes of pure-Python time; they can be scaled up via environment
    variables (``REPRO_FULL_DATASETS``, ``REPRO_SCALE``) or explicitly.
    """

    datasets: Sequence[str] = field(default_factory=lambda: default_dataset_names())
    scale: float = 1.0
    seed: int = 2025
    num_update_batches: int = 3
    updates_per_batch: int = 30
    update_factor: float = 2.0
    num_query_pairs: int = 2_000
    query_sets: int = 10
    pairs_per_query_set: int = 60
    beta: float = 0.2
    leaf_size: int = 16
    batch_rebuild_min_updates: int = 64
    batch_rebuild_fraction: float | None = 0.25
    batch_parallel_min_updates: int | None = 192
    batch_parallel_min_balance: float = 0.5
    batch_process_min_updates: int | None = None
    batch_label_search_max_updates: int | None = None
    batch_max_workers: int | None = None

    def hierarchy_options(self) -> HierarchyOptions:
        """Hierarchy options matching this configuration."""
        return HierarchyOptions(beta=self.beta, leaf_size=self.leaf_size)

    def batch_policy(self) -> BatchPolicy:
        """Batch-processing policy (four-way + rebuild + engine crossover).

        ``batch_label_search_max_updates`` defaults to ``None`` -- experiment
        series are engine-pinned (each series names its engine explicitly),
        so the drivers never want the engine crossover rerouting a series
        behind its label.
        """
        return BatchPolicy(
            rebuild_min_updates=self.batch_rebuild_min_updates,
            rebuild_fraction=self.batch_rebuild_fraction,
            parallel_min_updates=self.batch_parallel_min_updates,
            parallel_min_balance=self.batch_parallel_min_balance,
            process_min_updates=self.batch_process_min_updates,
            label_search_max_updates=self.batch_label_search_max_updates,
            max_workers=self.batch_max_workers,
        )


def default_dataset_names() -> list[str]:
    """Datasets used by default benches; all ten with ``REPRO_FULL_DATASETS=1``."""
    if os.environ.get("REPRO_FULL_DATASETS", "").strip() in ("1", "true", "yes"):
        return list(DATASETS)
    return list(DEFAULT_BENCH_DATASETS)


# --------------------------------------------------------------------------- #
# Index construction helpers
# --------------------------------------------------------------------------- #

def build_stl_variants(
    graph: Graph, options: HierarchyOptions | None = None
) -> dict[str, StableTreeLabelling]:
    """Build the STL-P and STL-L variants sharing one hierarchy/label build.

    The hierarchy is weight-independent and can be shared; the labels and the
    graph are copied so the two variants maintain independent state.
    """
    base = StableTreeLabelling.build(graph.copy(), options, maintenance="pareto")
    label_search = StableTreeLabelling(
        graph.copy(),
        base.hierarchy,
        base.labels.copy(),
        maintenance="label_search",
        construction_seconds=base.construction_seconds,
    )
    return {"STL-P": base, "STL-L": label_search}


def build_dynamic_competitors(graph: Graph) -> dict[str, object]:
    """Build the dynamic baselines (IncH2H, DTDHL), each on its own graph copy."""
    return {
        "IncH2H": IncH2H.build(graph.copy()),
        "DTDHL": DTDHL.build(graph.copy()),
    }


def build_static_competitors(graph: Graph) -> dict[str, object]:
    """Build the static baseline (HC2L)."""
    return {"HC2L": HC2L.build(graph.copy())}


# --------------------------------------------------------------------------- #
# Measurement helpers
# --------------------------------------------------------------------------- #

def measure_updates_per_ms(index, updates: Iterable[EdgeUpdate]) -> float:
    """Average milliseconds per update when applying ``updates`` one by one."""
    updates = list(updates)
    if not updates:
        return 0.0
    timer = Timer()
    for update in updates:
        with timer.measure():
            index.apply_update(update)
    return timer.average_ms


def measure_query_us(index, pairs: Sequence[tuple[int, int]], warmup: int = 200) -> float:
    """Average microseconds per query over ``pairs``.

    A short warm-up pass runs first so method-ordering effects (cold dict and
    attribute caches in CPython) do not skew the comparison between methods.
    """
    if not pairs:
        return 0.0
    query = index.query
    for s, t in pairs[: min(warmup, len(pairs))]:
        query(s, t)
    timer = Timer()
    with timer.measure():
        for s, t in pairs:
            query(s, t)
    return timer.elapsed * 1e6 / len(pairs)


def measure_batch_query_qps(
    index: StableTreeLabelling,
    pairs: Sequence[tuple[int, int]],
    kernel: str | None = None,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` queries/second for ``batch_query`` with ``kernel``.

    One untimed warm-up call runs first so the one-off costs -- building the
    hierarchy's kernel arrays and the store's cached numpy views for the
    vector kernel, CPython method caches for the scalar one -- are paid
    outside the measurement; best-of filters scheduler noise the same way
    ``timeit`` does.
    """
    if not pairs:
        return 0.0
    config = index.config.replace(kernel=kernel)
    index.batch_query(pairs, config=config)
    best = math.inf
    for _ in range(max(repeats, 1)):
        timer = Timer()
        with timer.measure():
            index.batch_query(pairs, config=config)
        best = min(best, timer.elapsed)
    return len(pairs) / best


def apply_batch_timed(index, batch: UpdateBatch) -> float:
    """Seconds spent applying ``batch`` through the index's batch interface."""
    timer = Timer()
    with timer.measure():
        index.apply_batch(batch)
    return timer.elapsed


def measure_batched_seconds(
    index: StableTreeLabelling,
    batches: Iterable[UpdateBatch],
    parallel: bool | str | None = None,
    engine: str | None = None,
) -> tuple[float, int]:
    """Total seconds applying ``batches`` via ``apply_batch``, plus fallbacks.

    The second element counts how many of the batches crossed the
    :class:`repro.core.batch.BatchPolicy` threshold and were processed as an
    in-place rebuild instead of incremental maintenance (Figure 10's
    crossover diagnostic).  ``parallel`` and ``engine`` are forwarded to
    :meth:`repro.core.stl.StableTreeLabelling.apply_batch`: ``True`` /
    ``"thread"`` / ``"process"`` force a worker-pool backend (no rebuild
    fallback can then occur), ``"pareto"`` / ``"label_search"`` pin the
    engine family, and ``None`` lets the policy crossovers decide.  The
    experiment series always pin ``engine`` so each measured series is the
    strategy its label names.
    """
    config = index.config.replace(backend=parallel, engine=engine)
    timer = Timer()
    fallbacks = 0
    for batch in batches:
        with timer.measure():
            stats = index.apply_batch(batch, config=config)
        fallbacks += stats.extra.get("rebuild_fallback", 0)
    return timer.elapsed, fallbacks
