"""Table 3 -- average update time per edge-weight update.

For each dataset we sample batches of edges, double their weights (measuring
the *increase* algorithms) and restore them (measuring the *decrease*
algorithms), exactly mirroring the paper's test-input generation.  Reported
numbers are average milliseconds per update for

* STL-P (Pareto Search), STL-L (Label Search),
* IncH2H and DTDHL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import (
    ExperimentConfig,
    build_dynamic_competitors,
    build_stl_variants,
    measure_updates_per_ms,
)
from repro.experiments.reporting import format_table
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import random_update_batch


@dataclass
class Table3Row:
    """Update-time measurements (milliseconds per update) for one dataset."""

    network: str
    decrease_ms: dict[str, float] = field(default_factory=dict)
    increase_ms: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, str]:
        row: dict[str, str] = {"network": self.network}
        for method, value in self.increase_ms.items():
            row[f"{method}+ [ms]"] = f"{value:.3f}"
        for method, value in self.decrease_ms.items():
            row[f"{method}- [ms]"] = f"{value:.3f}"
        return row


def run_table3(config: ExperimentConfig | None = None) -> list[Table3Row]:
    """Measure update times for every configured dataset."""
    config = config or ExperimentConfig()
    rows: list[Table3Row] = []
    for name in config.datasets:
        graph = build_dataset(name, scale=config.scale, seed=config.seed)
        indexes: dict[str, object] = {}
        indexes.update(build_stl_variants(graph, config.hierarchy_options()))
        indexes.update(build_dynamic_competitors(graph))

        row = Table3Row(network=name)
        for method in indexes:
            row.increase_ms[method] = 0.0
            row.decrease_ms[method] = 0.0

        for batch_index in range(config.num_update_batches):
            increases, decreases = random_update_batch(
                graph,
                config.updates_per_batch,
                factor=config.update_factor,
                seed=config.seed + 31 * batch_index,
            )
            for method, index in indexes.items():
                row.increase_ms[method] += measure_updates_per_ms(index, increases)
                row.decrease_ms[method] += measure_updates_per_ms(index, decreases)

        batches = max(1, config.num_update_batches)
        for method in indexes:
            row.increase_ms[method] /= batches
            row.decrease_ms[method] /= batches
        rows.append(row)
    return rows


def format_table3(rows: list[Table3Row]) -> str:
    """Render update times the way Table 3 lays them out."""
    return format_table(
        [row.as_dict() for row in rows],
        title="Table 3: average update time per edge-weight update",
    )
