"""Table 5 -- average query time over random source/target pairs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.dtdhl import DTDHL
from repro.baselines.hc2l import HC2L
from repro.baselines.inch2h import IncH2H
from repro.core.stl import StableTreeLabelling
from repro.experiments.harness import ExperimentConfig, measure_query_us
from repro.experiments.reporting import format_table
from repro.workloads.datasets import build_dataset
from repro.workloads.queries import random_query_pairs


@dataclass
class Table5Row:
    """Average query time (microseconds) for one dataset across methods."""

    network: str
    query_us: dict[str, float]

    def as_dict(self) -> dict[str, str]:
        row: dict[str, str] = {"network": self.network}
        for method, value in self.query_us.items():
            row[f"{method} [us]"] = f"{value:.2f}"
        return row


def run_table5(
    config: ExperimentConfig | None = None,
    include_methods: tuple[str, ...] = ("STL", "HC2L", "IncH2H", "DTDHL"),
) -> list[Table5Row]:
    """Measure average random-pair query time for every configured dataset."""
    config = config or ExperimentConfig()
    rows: list[Table5Row] = []
    for name in config.datasets:
        graph = build_dataset(name, scale=config.scale, seed=config.seed)
        pairs = random_query_pairs(graph, config.num_query_pairs, seed=config.seed)
        indexes: dict[str, object] = {}
        if "STL" in include_methods:
            indexes["STL"] = StableTreeLabelling.build(graph.copy(), config.hierarchy_options())
        if "HC2L" in include_methods:
            indexes["HC2L"] = HC2L.build(graph.copy(), leaf_size=config.leaf_size)
        if "IncH2H" in include_methods:
            indexes["IncH2H"] = IncH2H.build(graph.copy())
        if "DTDHL" in include_methods:
            indexes["DTDHL"] = DTDHL.build(graph.copy())
        rows.append(
            Table5Row(
                network=name,
                query_us={
                    method: measure_query_us(index, pairs) for method, index in indexes.items()
                },
            )
        )
    return rows


def format_table5(rows: list[Table5Row]) -> str:
    """Render the Table 5 analogue."""
    return format_table(
        [row.as_dict() for row in rows],
        title="Table 5: average query time over random pairs",
    )
