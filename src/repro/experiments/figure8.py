"""Figure 8 -- update time under varying weight-change factors.

Batch ``t`` multiplies its edges' weights by ``t + 1`` (then restores them);
the figure plots average update time per update against the factor for
STL-P+, STL-P-, IncH2H+ and IncH2H-.  The expected shape: every curve is flat
in the factor except STL-P+, whose +delta upper bound (Algorithm 4, line 18)
is tight less often as the factor grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.inch2h import IncH2H
from repro.core.stl import StableTreeLabelling
from repro.experiments.harness import ExperimentConfig, measure_updates_per_ms
from repro.experiments.reporting import format_series
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import scaling_update_batches


@dataclass
class Figure8Series:
    """Per-dataset series of update times across weight-change factors."""

    network: str
    factors: list[float] = field(default_factory=list)
    series_ms: dict[str, list[float]] = field(default_factory=dict)


def run_figure8(
    config: ExperimentConfig | None = None,
    num_factors: int = 5,
) -> list[Figure8Series]:
    """Measure update time vs weight-change factor for every dataset."""
    config = config or ExperimentConfig()
    results: list[Figure8Series] = []
    for name in config.datasets:
        graph = build_dataset(name, scale=config.scale, seed=config.seed)
        stl = StableTreeLabelling.build(graph.copy(), config.hierarchy_options())
        inch2h = IncH2H.build(graph.copy())
        batches = scaling_update_batches(
            graph,
            num_batches=num_factors,
            batch_size=config.updates_per_batch,
            seed=config.seed,
        )
        series = Figure8Series(network=name)
        series.series_ms = {"STL-P+": [], "STL-P-": [], "IncH2H+": [], "IncH2H-": []}
        for factor, increases, decreases in batches:
            series.factors.append(factor)
            series.series_ms["STL-P+"].append(measure_updates_per_ms(stl, increases))
            series.series_ms["STL-P-"].append(measure_updates_per_ms(stl, decreases))
            series.series_ms["IncH2H+"].append(measure_updates_per_ms(inch2h, increases))
            series.series_ms["IncH2H-"].append(measure_updates_per_ms(inch2h, decreases))
        results.append(series)
    return results


def format_figure8(results: list[Figure8Series]) -> str:
    """Render the Figure 8 series as per-dataset tables."""
    blocks = []
    for series in results:
        blocks.append(
            format_series(
                series.series_ms,
                series.factors,
                title=f"Figure 8 ({series.network}): update time [ms] vs weight-change factor",
                x_label="factor",
            )
        )
    return "\n\n".join(blocks)
