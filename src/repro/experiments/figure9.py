"""Figure 9 -- query time under varying query distances (sets Q1..Q10).

Short-range queries hit deep, vertex-rich common-ancestor prefixes, long-range
queries hit only the small high-level cuts; the figure shows STL beating
IncH2H clearly on the long-range sets while being comparable (or slightly
slower) on short-range ones, with HC2L fastest on short/medium ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.hc2l import HC2L
from repro.baselines.inch2h import IncH2H
from repro.core.stl import StableTreeLabelling
from repro.experiments.harness import ExperimentConfig, measure_query_us
from repro.experiments.reporting import format_series
from repro.workloads.datasets import build_dataset
from repro.workloads.queries import distance_stratified_query_sets


@dataclass
class Figure9Series:
    """Per-dataset query times for the distance-stratified query sets."""

    network: str
    query_sets: list[int] = field(default_factory=list)
    series_us: dict[str, list[float]] = field(default_factory=dict)


def run_figure9(
    config: ExperimentConfig | None = None,
    include_methods: tuple[str, ...] = ("STL", "HC2L", "IncH2H"),
) -> list[Figure9Series]:
    """Measure query times per distance bucket for every configured dataset."""
    config = config or ExperimentConfig()
    results: list[Figure9Series] = []
    for name in config.datasets:
        graph = build_dataset(name, scale=config.scale, seed=config.seed)
        buckets = distance_stratified_query_sets(
            graph,
            num_sets=config.query_sets,
            pairs_per_set=config.pairs_per_query_set,
            seed=config.seed,
        )
        indexes: dict[str, object] = {}
        if "STL" in include_methods:
            indexes["STL"] = StableTreeLabelling.build(graph.copy(), config.hierarchy_options())
        if "HC2L" in include_methods:
            indexes["HC2L"] = HC2L.build(graph.copy(), leaf_size=config.leaf_size)
        if "IncH2H" in include_methods:
            indexes["IncH2H"] = IncH2H.build(graph.copy())

        series = Figure9Series(network=name)
        series.query_sets = list(range(1, len(buckets) + 1))
        series.series_us = {method: [] for method in indexes}
        for bucket in buckets:
            for method, index in indexes.items():
                series.series_us[method].append(measure_query_us(index, bucket))
        results.append(series)
    return results


def format_figure9(results: list[Figure9Series]) -> str:
    """Render the Figure 9 series as per-dataset tables."""
    blocks = []
    for series in results:
        blocks.append(
            format_series(
                series.series_us,
                series.query_sets,
                title=f"Figure 9 ({series.network}): query time [us] vs query set Q_i",
                x_label="Q_i",
            )
        )
    return "\n\n".join(blocks)
