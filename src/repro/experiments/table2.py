"""Table 2 -- dataset summary (paper sizes vs generated analogues)."""

from __future__ import annotations

from repro.experiments.harness import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.workloads.datasets import dataset_table_rows


def run_table2(config: ExperimentConfig | None = None) -> list[dict[str, str]]:
    """Build every configured dataset analogue and report its size."""
    config = config or ExperimentConfig()
    return dataset_table_rows(scale=config.scale, seed=config.seed, names=list(config.datasets))


def format_table2(rows: list[dict[str, str]]) -> str:
    """Render the Table 2 analogue."""
    return format_table(rows, title="Table 2: datasets (paper originals vs scaled analogues)")
