"""Experiment drivers reproducing every table and figure of the paper.

Each module corresponds to one exhibit of the evaluation section:

* :mod:`repro.experiments.table2` -- dataset summary,
* :mod:`repro.experiments.table3` -- update times (decrease / increase),
* :mod:`repro.experiments.table4` -- labelling size, construction time,
  label entries, tree height,
* :mod:`repro.experiments.table5` -- query times over random pairs,
* :mod:`repro.experiments.figure8` -- update time vs weight-change factor,
* :mod:`repro.experiments.figure9` -- query time vs query distance (Q1..Q10),
* :mod:`repro.experiments.figure10` -- batched maintenance vs reconstruction.

Every driver returns plain data structures and offers a ``format_*`` helper
that prints rows shaped like the paper's exhibit, so the benchmark harness
and the ``examples/reproduce_paper.py`` script share the same code paths.
"""

from repro.experiments.harness import ExperimentConfig, build_stl_variants
from repro.experiments.reporting import format_table

__all__ = ["ExperimentConfig", "build_stl_variants", "format_table"]
