"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render ``rows`` (list of dicts) as an aligned plain-text table.

    Column order follows ``columns`` when given, otherwise the key order of
    the first row.  All values are rendered with ``str``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))

    def render_row(values: Iterable[object]) -> str:
        return " | ".join(str(v).ljust(widths[c]) for c, v in zip(columns, values))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(columns))
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(render_row(row.get(c, "") for c in columns))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[object],
    title: str | None = None,
    x_label: str = "x",
    value_format: str = "{:.3f}",
) -> str:
    """Render named series (Figure-style data) as a table with one row per x."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = value_format.format(values[i]) if i < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)
