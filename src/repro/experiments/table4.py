"""Table 4 -- labelling size, construction time, label entries, tree height."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.dtdhl import DTDHL
from repro.baselines.hc2l import HC2L
from repro.baselines.inch2h import IncH2H
from repro.core.stats import IndexStats
from repro.core.stl import StableTreeLabelling
from repro.experiments.harness import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.utils.memory import format_bytes, format_count
from repro.workloads.datasets import build_dataset


@dataclass
class Table4Row:
    """Index statistics for one dataset across every method."""

    network: str
    stats: dict[str, IndexStats]

    def as_dict(self) -> dict[str, str]:
        row: dict[str, str] = {"network": self.network}
        for method, stat in self.stats.items():
            row[f"{method} size"] = format_bytes(stat.bytes_total)
            row[f"{method} build [s]"] = f"{stat.construction_seconds:.2f}"
            row[f"{method} entries"] = format_count(stat.num_label_entries)
            row[f"{method} height"] = str(stat.tree_height)
        return row


def run_table4(
    config: ExperimentConfig | None = None,
    include_methods: tuple[str, ...] = ("STL", "HC2L", "IncH2H", "DTDHL"),
) -> list[Table4Row]:
    """Build every method on every configured dataset and collect statistics."""
    config = config or ExperimentConfig()
    rows: list[Table4Row] = []
    for name in config.datasets:
        graph = build_dataset(name, scale=config.scale, seed=config.seed)
        stats: dict[str, IndexStats] = {}
        if "STL" in include_methods:
            stl = StableTreeLabelling.build(graph.copy(), config.hierarchy_options())
            stats["STL"] = stl.stats()
        if "HC2L" in include_methods:
            stats["HC2L"] = HC2L.build(graph.copy(), leaf_size=config.leaf_size).stats()
        if "IncH2H" in include_methods:
            stats["IncH2H"] = IncH2H.build(graph.copy()).stats()
        if "DTDHL" in include_methods:
            stats["DTDHL"] = DTDHL.build(graph.copy()).stats()
        rows.append(Table4Row(network=name, stats=stats))
    return rows


def format_table4(rows: list[Table4Row]) -> str:
    """Render the Table 4 analogue."""
    return format_table(
        [row.as_dict() for row in rows],
        title="Table 4: labelling size / construction time / label entries / tree height",
    )
