"""Balanced bisectors producing vertex separators.

A :class:`Bisector` splits a vertex subset of a graph into
``(separator, left, right)`` such that

* removing ``separator`` leaves no edge between ``left`` and ``right``, and
* both sides respect the balance bound of Definition 4.1.

Two concrete strategies are provided.  :class:`GeometricBisector` uses vertex
coordinates (available for every synthetic road network and for DIMACS data
with ``.co`` files) and cuts along the axis of larger spread -- on near-planar
road networks this yields separators of size roughly ``sqrt(n)``.
:class:`BFSBisector` needs no geometry and cuts along BFS level sets grown
from a pseudo-peripheral vertex.  :class:`HybridBisector` picks whichever is
applicable/better and is the default used by the hierarchy builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algorithms.bfs import bfs_distances, double_sweep_pseudo_peripheral
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.partition.metrics import balance_ratio
from repro.partition.refinement import refine_bipartition
from repro.partition.separator import extract_separator
from repro.utils.errors import PartitionError


@dataclass(frozen=True)
class Bisection:
    """Result of a bisection: a separator and the two remaining sides."""

    separator: list[int]
    left: list[int]
    right: list[int]

    @property
    def total(self) -> int:
        """Total number of vertices covered by the bisection."""
        return len(self.separator) + len(self.left) + len(self.right)

    @property
    def balance(self) -> float:
        """Fraction of non-separator vertices on the larger side."""
        return balance_ratio(self.left, self.right)


class Bisector:
    """Interface for balanced bisection strategies."""

    def bisect(self, graph: Graph, vertices: Sequence[int]) -> Bisection:
        """Split ``vertices`` into (separator, left, right)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _split_components(graph: Graph, vertices: Sequence[int]) -> Bisection | None:
        """If the subgraph is disconnected, split whole components (no separator).

        Components are assigned to the two sides greedily largest-first, which
        keeps the sides balanced whenever no component dominates.  Returns
        ``None`` when the subgraph is connected.
        """
        components = connected_components(graph, vertices)
        if len(components) <= 1:
            return None
        left: list[int] = []
        right: list[int] = []
        for component in components:
            if len(left) <= len(right):
                left.extend(component)
            else:
                right.extend(component)
        return Bisection([], sorted(left), sorted(right))

    @staticmethod
    def _finish(
        graph: Graph,
        side_a: Sequence[int],
        side_b: Sequence[int],
        refine: bool,
        max_imbalance: float,
    ) -> Bisection:
        if refine:
            side_a, side_b = refine_bipartition(graph, side_a, side_b, max_imbalance)
        separator, left, right = extract_separator(graph, side_a, side_b)
        return Bisection(separator, left, right)


class GeometricBisector(Bisector):
    """Median cut along the coordinate axis of larger spread."""

    def __init__(self, refine: bool = True, max_imbalance: float = 0.65):
        self.refine = refine
        self.max_imbalance = max_imbalance

    def bisect(self, graph: Graph, vertices: Sequence[int]) -> Bisection:
        if graph.coordinates is None:
            raise PartitionError("GeometricBisector requires vertex coordinates")
        if len(vertices) < 2:
            return Bisection([], list(vertices), [])
        split = self._split_components(graph, vertices)
        if split is not None:
            return split

        coords = graph.coordinates
        xs = [coords[v][0] for v in vertices]
        ys = [coords[v][1] for v in vertices]
        axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
        ordered = sorted(vertices, key=lambda v: (coords[v][axis], coords[v][1 - axis], v))
        half = len(ordered) // 2
        side_a, side_b = ordered[:half], ordered[half:]
        return self._finish(graph, side_a, side_b, self.refine, self.max_imbalance)


class BFSBisector(Bisector):
    """Cut along BFS level sets grown from a pseudo-peripheral vertex."""

    def __init__(self, refine: bool = True, max_imbalance: float = 0.65):
        self.refine = refine
        self.max_imbalance = max_imbalance

    def bisect(self, graph: Graph, vertices: Sequence[int]) -> Bisection:
        if len(vertices) < 2:
            return Bisection([], list(vertices), [])
        split = self._split_components(graph, vertices)
        if split is not None:
            return split

        _, start = double_sweep_pseudo_peripheral(graph, list(vertices))
        levels = bfs_distances(graph, start, vertices)
        # All vertices are reachable because the subgraph is connected here.
        ordered = sorted(vertices, key=lambda v: (levels[v], v))
        half = len(ordered) // 2
        side_a, side_b = ordered[:half], ordered[half:]
        return self._finish(graph, side_a, side_b, self.refine, self.max_imbalance)


class HybridBisector(Bisector):
    """Use geometry when coordinates exist, otherwise fall back to BFS levels.

    When both are applicable the candidate with the smaller separator wins
    (ties broken toward better balance).  This is the default bisector of
    :class:`repro.hierarchy.builder.HierarchyOptions`.
    """

    def __init__(
        self, refine: bool = True, max_imbalance: float = 0.65, compare_both: bool = False
    ):
        self.geometric = GeometricBisector(refine, max_imbalance)
        self.bfs = BFSBisector(refine, max_imbalance)
        self.compare_both = compare_both

    def bisect(self, graph: Graph, vertices: Sequence[int]) -> Bisection:
        if graph.coordinates is None:
            return self.bfs.bisect(graph, vertices)
        if not self.compare_both:
            return self.geometric.bisect(graph, vertices)
        geometric = self.geometric.bisect(graph, vertices)
        bfs = self.bfs.bisect(graph, vertices)
        geometric_key = (len(geometric.separator), geometric.balance)
        bfs_key = (len(bfs.separator), bfs.balance)
        return geometric if geometric_key <= bfs_key else bfs


def enforce_balance(bisection: Bisection, beta: float) -> bool:
    """Whether a bisection satisfies the Definition 4.1 balance bound.

    The bound is stated on subtree sizes; at construction time we check it on
    the vertex counts handed to the two children, i.e.
    ``max(|left|, |right|) <= (1 - beta) * (|left| + |right| + |separator|)``.
    Degenerate inputs (fewer than two non-separator vertices) always pass.
    """
    if not 0 < beta <= 0.5:
        raise PartitionError(f"beta must lie in (0, 0.5], got {beta}")
    total = bisection.total
    if total <= 1 or len(bisection.left) + len(bisection.right) <= 1:
        return True
    limit = (1.0 - beta) * total
    return max(len(bisection.left), len(bisection.right)) <= limit + 1e-9
