"""Vertex-separator extraction from edge cuts.

Given a bipartition ``(A, B)`` of a vertex set, a *vertex separator* is a set
``S`` of vertices whose removal disconnects ``A \\ S`` from ``B \\ S``.  The
stable tree hierarchy stores separators in its tree nodes, so keeping them
small directly reduces label sizes (the paper argues that omitting shortcuts
keeps the cut small at lower levels).

The extraction implemented here is the standard greedy vertex cover of the
crossing edges, with a preference for covering from the larger side so that
removing the separator does not unbalance the partition further.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.graph.graph import Graph


def crossing_edges(
    graph: Graph, side_a: Iterable[int], side_b: Iterable[int]
) -> list[tuple[int, int]]:
    """Edges ``(a, b)`` with ``a`` in ``side_a`` and ``b`` in ``side_b``."""
    set_a = set(side_a)
    set_b = set(side_b)
    edges = []
    for a in set_a:
        for nbr, weight in graph.neighbors(a):
            if math.isinf(weight):
                continue
            if nbr in set_b:
                edges.append((a, nbr))
    return edges


def extract_separator(
    graph: Graph,
    side_a: Sequence[int],
    side_b: Sequence[int],
) -> tuple[list[int], list[int], list[int]]:
    """Turn an edge cut into a vertex separator.

    Returns ``(separator, new_a, new_b)`` where ``separator`` is a greedy
    vertex cover of the crossing edges and ``new_a`` / ``new_b`` are the sides
    with separator vertices removed.  After removal there is no edge between
    ``new_a`` and ``new_b``.
    """
    edges = crossing_edges(graph, side_a, side_b)
    if not edges:
        return [], list(side_a), list(side_b)

    # Count how many crossing edges each endpoint covers.
    cover_count: dict[int, int] = {}
    for a, b in edges:
        cover_count[a] = cover_count.get(a, 0) + 1
        cover_count[b] = cover_count.get(b, 0) + 1

    larger_side = set(side_a) if len(side_a) >= len(side_b) else set(side_b)

    separator: set[int] = set()
    # Greedy cover: repeatedly pick the endpoint covering the most uncovered
    # edges, breaking ties toward the larger side (shrinking it keeps the
    # balance) and then toward smaller vertex id for determinism.
    remaining = list(edges)
    while remaining:
        best = None
        best_key = None
        counts: dict[int, int] = {}
        for a, b in remaining:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        for v, c in counts.items():
            key = (c, 1 if v in larger_side else 0, -v)
            if best_key is None or key > best_key:
                best_key = key
                best = v
        assert best is not None
        separator.add(best)
        remaining = [(a, b) for a, b in remaining if a != best and b != best]

    new_a = [v for v in side_a if v not in separator]
    new_b = [v for v in side_b if v not in separator]
    return sorted(separator), new_a, new_b


def is_vertex_separator(
    graph: Graph,
    separator: Iterable[int],
    side_a: Iterable[int],
    side_b: Iterable[int],
) -> bool:
    """Validate that no edge connects ``side_a`` and ``side_b`` directly."""
    sep = set(separator)
    set_a = set(side_a) - sep
    set_b = set(side_b) - sep
    for a in set_a:
        for nbr, weight in graph.neighbors(a):
            if math.isinf(weight):
                continue
            if nbr in set_b:
                return False
    return True
