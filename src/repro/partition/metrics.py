"""Partition quality metrics."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.graph.graph import Graph


def balance_ratio(side_a: Sequence[int], side_b: Sequence[int]) -> float:
    """Fraction of vertices on the larger side (0.5 = perfectly balanced).

    Returns 1.0 when one side is empty and 0.5 for the empty bipartition, so
    the value can always be compared against the ``1 - beta`` threshold of
    Definition 4.1.
    """
    total = len(side_a) + len(side_b)
    if total == 0:
        return 0.5
    return max(len(side_a), len(side_b)) / total


def edge_cut_size(graph: Graph, side_a: Iterable[int], side_b: Iterable[int]) -> int:
    """Number of edges with one endpoint in each side."""
    set_a = set(side_a)
    set_b = set(side_b)
    count = 0
    for v in set_a:
        for nbr, weight in graph.neighbors(v):
            if math.isinf(weight):
                continue
            if nbr in set_b:
                count += 1
    return count


def boundary_vertices(graph: Graph, side: Iterable[int], other: Iterable[int]) -> list[int]:
    """Vertices of ``side`` that have at least one neighbour in ``other``."""
    other_set = set(other)
    result = []
    for v in side:
        for nbr, weight in graph.neighbors(v):
            if math.isinf(weight):
                continue
            if nbr in other_set:
                result.append(v)
                break
    return result
