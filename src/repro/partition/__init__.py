"""Balanced graph bisection and vertex-separator extraction.

The stable tree hierarchy (Definition 4.1 of the paper) is built by recursive
balanced bi-partitioning with vertex separators and *without* shortcut edges.
This package provides the partitioning machinery:

* :mod:`repro.partition.bisection` -- geometric and BFS-level bisectors,
* :mod:`repro.partition.refinement` -- Fiduccia--Mattheyses style boundary
  refinement of edge cuts,
* :mod:`repro.partition.separator` -- converting edge cuts into small vertex
  separators and validating them,
* :mod:`repro.partition.metrics` -- balance / cut-quality metrics.
"""

from repro.partition.bisection import (
    Bisection,
    Bisector,
    BFSBisector,
    GeometricBisector,
    HybridBisector,
)
from repro.partition.separator import extract_separator, is_vertex_separator
from repro.partition.metrics import balance_ratio, edge_cut_size

__all__ = [
    "Bisection",
    "Bisector",
    "BFSBisector",
    "GeometricBisector",
    "HybridBisector",
    "extract_separator",
    "is_vertex_separator",
    "balance_ratio",
    "edge_cut_size",
]
