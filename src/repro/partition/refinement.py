"""Fiduccia--Mattheyses style refinement of a bipartition.

The geometric and BFS bisectors produce decent but not locally optimal edge
cuts.  A few passes of greedy boundary moves (move the vertex with the best
gain to the other side, subject to the balance constraint) noticeably shrink
the cut on road networks, which in turn shrinks the vertex separators and the
final label sizes.
"""

from __future__ import annotations

import math
from typing import Sequence


from repro.graph.graph import Graph


def refine_bipartition(
    graph: Graph,
    side_a: Sequence[int],
    side_b: Sequence[int],
    max_imbalance: float = 0.7,
    max_passes: int = 4,
) -> tuple[list[int], list[int]]:
    """Greedily move boundary vertices between sides to reduce the edge cut.

    Parameters
    ----------
    max_imbalance:
        Upper bound on the fraction of vertices the larger side may hold after
        any move (mirrors the ``1 - beta`` bound of Definition 4.1).
    max_passes:
        Number of full passes over the boundary; each pass only applies moves
        with strictly positive gain, so the procedure terminates quickly.
    """
    membership: dict[int, int] = {}
    for v in side_a:
        membership[v] = 0
    for v in side_b:
        membership[v] = 1
    sizes = [len(side_a), len(side_b)]
    total = sizes[0] + sizes[1]
    if total == 0:
        return [], []
    max_side = max(1, int(max_imbalance * total))

    def gain(v: int) -> int:
        """Cut-size reduction obtained by moving ``v`` to the other side."""
        own = membership[v]
        external = internal = 0
        for nbr, weight in graph.neighbors(v):
            if math.isinf(weight):
                continue
            other = membership.get(nbr)
            if other is None:
                continue
            if other == own:
                internal += 1
            else:
                external += 1
        return external - internal

    for _ in range(max_passes):
        moved = False
        # Iterate over a snapshot: moves during the pass change membership.
        for v in sorted(membership):
            own = membership[v]
            target = 1 - own
            if sizes[target] + 1 > max_side or sizes[own] <= 1:
                continue
            if gain(v) > 0:
                membership[v] = target
                sizes[own] -= 1
                sizes[target] += 1
                moved = True
        if not moved:
            break

    new_a = sorted(v for v, side in membership.items() if side == 0)
    new_b = sorted(v for v, side in membership.items() if side == 1)
    return new_a, new_b
