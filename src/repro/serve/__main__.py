"""Stand-alone query server: ``python -m repro.serve``.

Boots a :class:`~repro.serve.service.QueryService` over a graph (a DIMACS
file or a synthetic generator), fronts it with the JSON-lines TCP protocol
of :mod:`repro.serve.server`, and runs until interrupted.  The service
answers from the first moment -- via the bounded-Dijkstra fallback while
the labelling builds in the background -- and ``--snapshot`` enables warm
restarts (the label state is persisted on shutdown and restored on the
next boot).

Examples::

    python -m repro.serve --grid 32 --port 4025
    python -m repro.serve --dimacs data/NY.gr --engine label_search \\
        --snapshot /var/tmp/ny-labels.json
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.core.config import STLConfig
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.io import read_dimacs
from repro.serve.server import QueryServer
from repro.serve.service import QueryService


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description="Always-on STL distance-query server."
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dimacs", help="DIMACS .gr file to serve")
    source.add_argument(
        "--grid", type=int, metavar="N", help="serve a synthetic N x N grid road network"
    )
    parser.add_argument("--seed", type=int, default=2025, help="seed for --grid")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=4025)
    parser.add_argument(
        "--engine", choices=("pareto", "label_search"), default=None,
        help="batch maintenance engine family",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="shard backend for batch maintenance",
    )
    parser.add_argument(
        "--kernel", choices=("scalar", "vector"), default=None, help="batch query kernel"
    )
    parser.add_argument(
        "--snapshot", default=None,
        help="persist labels here on shutdown and restore on the next boot",
    )
    return parser.parse_args(argv)


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.dimacs is not None:
        return read_dimacs(args.dimacs)
    return generators.grid_road_network(args.grid, args.grid, seed=args.seed)


async def _run(args: argparse.Namespace) -> None:
    graph = _load_graph(args)
    config = STLConfig(backend=args.backend, engine=args.engine, kernel=args.kernel)
    service = QueryService(graph, config=config, snapshot_path=args.snapshot)
    server = QueryServer(service, host=args.host, port=args.port)
    async with service, server:
        host, port = server.address
        print(
            f"serving {graph.num_vertices} vertices on {host}:{port} "
            f"({config.describe()}); fast path {'live' if service.ready else 'building'}",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    try:
        asyncio.run(_run(args))
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
