"""A thin line-protocol front over :class:`~repro.serve.service.QueryService`.

The wire format is JSON lines over TCP: one request object per line, one
response object per line, in order, per connection.  It is deliberately
minimal -- the protocol exists so the service can be driven from any
language (and from the repo's own benchmark/CI load generators) without
pulling in a framework dependency.

Requests (``op`` selects the operation)::

    {"op": "ping"}
    {"op": "query", "s": 17, "t": 912}
    {"op": "batch_query", "pairs": [[17, 912], [3, 4]]}
    {"op": "update", "updates": [[17, 18, 42.5], [3, 4, 7.0]]}
    {"op": "stats"}

Responses always carry ``ok``.  Successful queries answer with the
distance(s), the answering ``tier`` (``"fast"``/``"fallback"``, queries
only) and the ``version`` of the generation that answered -- the handle a
client needs to check answers against per-version oracles.  Updates answer
with the version their batch committed as.  Unreachable distances
(``inf``) cross the wire as ``null``.  Failures answer ``{"ok": false,
"error": <message>, "code": <exception class name>}`` and keep the
connection open; only an unparseable line (no way to stay in sync) closes
it after the error response.

An update is a ``(u, v, new_weight)`` triple: the old weight is resolved
server-side at commit time, so concurrent clients cannot race each other
(or the maintenance loop) on weight reads.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.serve.service import QueryService, encode_distance
from repro.utils.errors import ServiceError

#: Maximum request-line length accepted (guards the reader buffer).
MAX_LINE_BYTES = 1 << 20


class QueryServer:
    """Serve a :class:`QueryService` over TCP JSON lines.

    ``port=0`` binds an ephemeral port (the default, right for tests and
    benchmarks); read the bound address from :attr:`address` after
    :meth:`start`.  The server does not own the service's life cycle --
    callers start/stop the service around the server (the CLI in
    :mod:`repro.serve.__main__` shows the pattern).
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("server is not running")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        if self._server is not None:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's main loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, _error(ServiceError("request line too long")))
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    request = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    # Framing is gone; answer once and drop the connection.
                    await self._send(writer, _error(ServiceError(f"bad JSON: {exc}")))
                    break
                response = await self._dispatch(request)
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode("ascii") + b"\n")
        await writer.drain()

    async def _dispatch(self, request: Any) -> dict:
        try:
            if not isinstance(request, dict):
                raise ServiceError("request must be a JSON object")
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "op": "ping", "version": self.service.version}
            if op == "query":
                s, t = int(request["s"]), int(request["t"])
                distance, tier, version = await self.service.distance(s, t)
                return {
                    "ok": True,
                    "distance": encode_distance(distance),
                    "tier": tier,
                    "version": version,
                }
            if op == "batch_query":
                pairs = [(int(s), int(t)) for s, t in request["pairs"]]
                distances, version = await self.service.batch_distance(pairs)
                return {
                    "ok": True,
                    "distances": [encode_distance(d) for d in distances],
                    "version": version,
                }
            if op == "update":
                triples = [
                    (int(u), int(v), float(w)) for u, v, w in request["updates"]
                ]
                version = await self.service.submit(triples)
                return {"ok": True, "version": version}
            if op == "stats":
                return {"ok": True, "stats": self.service.stats()}
            raise ServiceError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - every failure answers in-band
            return _error(exc)


def _error(exc: Exception) -> dict:
    return {"ok": False, "error": str(exc), "code": type(exc).__name__}
