"""The always-on query service: RCU snapshots over a single-writer index.

:class:`QueryService` turns the batch-oriented
:class:`~repro.core.stl.StableTreeLabelling` into a long-lived server-side
object with the concurrency story a deployment needs:

* **Readers never lock.**  Queries run against the currently *published*
  :class:`~repro.core.snapshot.LabelSnapshot` -- an immutable generation
  acquired/released around each call.  The fast path (label lookup) runs
  inline on the event loop; the complete path (bounded Dijkstra over the
  snapshot's frozen graph) runs in a small thread pool so a cache-miss
  query cannot stall the loop.
* **One writer, off the loop.**  All mutation flows through a single
  maintenance coroutine that drains an update queue, coalesces everything
  currently pending into one batch, and applies it with
  :meth:`StableTreeLabelling.apply_batch` inside a dedicated single-thread
  executor -- queries keep being answered while a batch is maintained.
* **Commit is a pointer swap (RCU).**  The new generation is captured
  zero-copy off the writer, the service's ``_active`` pointer is swapped on
  the event-loop thread (atomic with respect to every reader coroutine),
  and the old generation is retired: its buffers are reclaimed when the
  last in-flight reader releases (epoch-based reclamation -- see
  :mod:`repro.core.snapshot`).  Before its *next* mutation the writer
  shadow-copies its store (:meth:`StableTreeLabelling.adopt_labels`), so a
  published buffer is never written again: copy-on-write, paid lazily and
  only when updates actually arrive.
* **Answers from the first moment.**  The service starts with a
  fallback-only snapshot and builds the labelling in the background;
  queries are answered by bounded Dijkstra until the first labelling lands,
  then tier fast/fallback per query.  Updates arriving during the build are
  applied to the live graph, recorded, and replayed onto the fresh index
  before it is published -- the published generation is never behind the
  committed stream.

Every answer is computed against exactly one published generation; a
response carries that generation's version, and a client comparing answers
to per-version oracles can never observe a torn mix of pre- and post-batch
state.
"""

from __future__ import annotations

import asyncio
import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable

from repro.core.config import DEFAULT_CONFIG, STLConfig
from repro.core.serialization import load_snapshot, save_snapshot
from repro.core.snapshot import LabelSnapshot
from repro.core.stl import StableTreeLabelling, open_network
from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.errors import ServiceError, SnapshotError

#: Sentinel draining the maintenance loop on :meth:`QueryService.stop`.
_STOP = object()

#: A raw update accepted by :meth:`QueryService.submit`: an
#: :class:`EdgeUpdate`, or a ``(u, v, new_weight)`` triple whose old weight
#: is resolved against the live graph *at commit time* (on the maintenance
#: thread, where graph access is serialised -- the wire protocol ships
#: triples precisely so clients never race the writer on weight reads).
RawUpdate = Any


class QueryService:
    """Serve distance queries over a dynamic road network, continuously.

    Life cycle::

        service = QueryService(graph, config=STLConfig(engine="label_search"))
        await service.start()          # answers immediately (fallback tier)
        d, tier, version = await service.distance(s, t)
        await service.submit([(u, v, new_weight)])   # returns committed version
        await service.stop()           # persists to snapshot_path, if set

    ``snapshot_path`` enables warm restarts: :meth:`stop` persists the
    active generation there, and a later :meth:`start` finding the file
    restores it -- the restarted service answers on the fast path from its
    first query, with no background build.

    The service object is bound to the event loop it was started on; all
    public coroutines must be awaited from that loop.  ``query_workers``
    sizes the fallback thread pool (default: ``min(8, cpu)``).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        config: STLConfig | None = None,
        options: HierarchyOptions | None = None,
        snapshot_path: str | os.PathLike | None = None,
        query_workers: int | None = None,
    ):
        self._graph = graph
        self.config = config or DEFAULT_CONFIG
        self._options = options
        self._snapshot_path = os.fspath(snapshot_path) if snapshot_path is not None else None
        self._query_workers = query_workers or min(8, os.cpu_count() or 1)

        self._active: LabelSnapshot | None = None
        self._version = 0
        self._writer: StableTreeLabelling | None = None
        self._writer_shared = False
        self._history: list[list[RawUpdate]] = []

        self._queue: asyncio.Queue[Any] | None = None
        self._maintenance_task: asyncio.Task[None] | None = None
        self._build_task: asyncio.Task[None] | None = None
        self._maint_exec: ThreadPoolExecutor | None = None
        self._query_exec: ThreadPoolExecutor | None = None
        self._started = False
        self._stopped = False

        self._fast_queries = 0
        self._fallback_queries = 0
        self._batches_committed = 0
        self._updates_committed = 0
        #: Wall-clock of the background build (the fallback-tier window) and
        #: its phase breakdown -- a parallel construction config shortens the
        #: window, measurably so through these counters.
        self._build_seconds = 0.0
        self._build_hierarchy_seconds = 0.0
        self._build_label_seconds = 0.0
        self._build_workers = 0

    # ------------------------------------------------------------------ #
    # Life cycle
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        """The live (writer-side) graph: the adopted index's once built."""
        return self._writer.graph if self._writer is not None else self._graph

    @property
    def started(self) -> bool:
        return self._started and not self._stopped

    @property
    def ready(self) -> bool:
        """Whether the published generation carries labels (fast path live)."""
        snap = self._active
        return snap is not None and snap.labels is not None

    @property
    def version(self) -> int:
        """Version of the currently published generation."""
        return self._version

    @property
    def active_snapshot(self) -> LabelSnapshot:
        """The published generation (acquire it before querying directly)."""
        if self._active is None:
            raise ServiceError("service has not been started")
        return self._active

    async def start(self) -> None:
        """Publish the first generation and spin up the maintenance loop.

        With no persisted snapshot the first generation is fallback-only
        and a background task builds the labelling; with one, the service
        restores it and is fast-path ready immediately.
        """
        if self._started:
            raise ServiceError("service already started")
        self._started = True
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._maint_exec = ThreadPoolExecutor(1, thread_name_prefix="stl-maint")
        self._query_exec = ThreadPoolExecutor(
            self._query_workers, thread_name_prefix="stl-query"
        )

        restored: LabelSnapshot | None = None
        if self._snapshot_path is not None and os.path.exists(self._snapshot_path):
            restored = await loop.run_in_executor(
                self._maint_exec, load_snapshot, self._snapshot_path
            )
        if restored is not None and restored.labels is not None:
            # Warm restart: the persisted generation is both the published
            # snapshot and -- zero-copy, under the copy-on-write discipline
            # -- the writer's starting state.
            self._writer = StableTreeLabelling(
                restored.graph.copy(),
                restored.hierarchy,
                restored.labels,
                self.config.maintenance,  # type: ignore[arg-type]
                config=self.config,
            )
            self._writer_shared = True
            self._version = restored.version
            self._active = restored
        else:
            if restored is not None:
                # A labelless persisted snapshot still carries the weights
                # at persist time; adopt them as the live graph.
                self._graph = restored.graph
            self._active = LabelSnapshot.fallback_only(self._graph, self._version)
            base = self._graph.copy()
            self._build_task = loop.create_task(self._build(base))
        self._maintenance_task = loop.create_task(self._maintenance_loop())

    async def _build(self, base: Graph) -> None:
        """Background construction; hands the index to the maintenance loop.

        The index is built over ``base`` -- a copy of the graph taken at
        start, before any batch could commit -- in its own short-lived
        thread.  Adoption goes *through the update queue*: every batch
        committed while the build ran sits ahead of the adopt request, so
        by the time the maintenance loop adopts, ``_history`` holds exactly
        the batches the fresh index must replay to catch up.
        """
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        with ThreadPoolExecutor(1, thread_name_prefix="stl-build") as pool:
            stl = await loop.run_in_executor(
                pool,
                lambda: open_network(base, config=self.config, options=self._options),
            )
        self._build_seconds = time.perf_counter() - started
        if stl.build_report is not None:
            self._build_hierarchy_seconds = stl.build_report.hierarchy_seconds
            self._build_label_seconds = stl.build_report.label_seconds
            self._build_workers = stl.build_report.workers
        future: asyncio.Future[int] = loop.create_future()
        assert self._queue is not None
        self._queue.put_nowait(("adopt", stl, future))
        await future

    async def stop(self, persist: bool | None = None) -> None:
        """Drain the maintenance loop, optionally persist, release everything.

        ``persist`` defaults to "yes iff ``snapshot_path`` was given".
        Pending :meth:`submit` futures that the loop did not reach fail
        with :class:`ServiceError`.  Idempotent.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        if self._build_task is not None and not self._build_task.done():
            self._build_task.cancel()
            try:
                await self._build_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        assert self._queue is not None and self._maintenance_task is not None
        self._queue.put_nowait(_STOP)
        await self._maintenance_task
        # Fail whatever was enqueued after the stop sentinel.
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is not _STOP and item[2] is not None and not item[2].done():
                item[2].set_exception(ServiceError("service stopped"))
        should_persist = persist if persist is not None else self._snapshot_path is not None
        if should_persist:
            if self._snapshot_path is None:
                raise ServiceError("cannot persist: no snapshot_path configured")
            snap = self._active
            assert snap is not None
            loop = asyncio.get_running_loop()
            with snap:
                await loop.run_in_executor(
                    self._maint_exec, save_snapshot, snap, self._snapshot_path
                )
        if self._active is not None:
            self._active.retire()
        if self._writer is not None:
            self._writer.close()
        assert self._maint_exec is not None and self._query_exec is not None
        self._maint_exec.shutdown(wait=True)
        self._query_exec.shutdown(wait=True)

    async def __aenter__(self) -> "QueryService":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    async def wait_ready(self) -> int:
        """Block until the fast path is live; returns the published version."""
        if self._build_task is not None:
            await asyncio.shield(self._build_task)
        return self._version

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #

    def _acquire_active(self) -> LabelSnapshot:
        if not self.started:
            raise ServiceError("service is not running")
        while True:
            snap = self._active
            assert snap is not None
            try:
                return snap.acquire()
            except SnapshotError:
                # Lost a race with a swap (cannot happen from this loop's
                # thread, but callers may hold the object across awaits);
                # the pointer now names the successor -- re-read it.
                continue

    async def distance(self, s: int, t: int) -> tuple[float, str, int]:
        """Distance, answering tier and generation version for one query.

        Fast-path queries (label lookup, O(tree height)) run inline;
        fallback queries run in the query thread pool.
        """
        snap = self._acquire_active()
        try:
            if snap.covers(s, t):
                distance, tier = snap.distance(s, t)
                self._fast_queries += 1
            else:
                loop = asyncio.get_running_loop()
                distance, tier = await loop.run_in_executor(
                    self._query_exec, snap.distance, s, t
                )
                self._fallback_queries += 1
            return distance, tier, snap.version
        finally:
            snap.release()

    async def batch_distance(self, pairs: list[tuple[int, int]]) -> tuple[list[float], int]:
        """Distances for many pairs, all against one generation."""
        snap = self._acquire_active()
        try:
            loop = asyncio.get_running_loop()
            distances = await loop.run_in_executor(
                self._query_exec, snap.batch_distances, pairs, self.config.kernel
            )
            if snap.labels is not None:
                self._fast_queries += len(pairs)
            else:
                self._fallback_queries += len(pairs)
            return distances, snap.version
        finally:
            snap.release()

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #

    async def submit(self, updates: Iterable[RawUpdate]) -> int:
        """Enqueue updates; resolves once committed, with the new version.

        Accepts :class:`EdgeUpdate` objects or ``(u, v, new_weight)``
        triples.  Triples are resolved against the live graph on the
        maintenance thread at commit time, so concurrent submitters never
        race on weight reads.  Updates from multiple pending submissions
        may be *coalesced* into one commit; each submitter still learns
        the version its updates landed in.
        """
        if not self.started:
            raise ServiceError("service is not running")
        items = list(updates)
        loop = asyncio.get_running_loop()
        future: asyncio.Future[int] = loop.create_future()
        assert self._queue is not None
        self._queue.put_nowait(("updates", items, future))
        return await future

    async def _maintenance_loop(self) -> None:
        assert self._queue is not None
        carry: Any = None
        while True:
            item = carry if carry is not None else await self._queue.get()
            carry = None
            if item is _STOP:
                return
            if item[0] == "adopt":
                await self._adopt(item[1], item[2])
                continue
            # Coalesce every consecutively queued update submission into one
            # commit; an adopt request or the stop sentinel ends the drain
            # (order through the queue is the commit order).
            raw: list[RawUpdate] = list(item[1])
            futures: list[asyncio.Future[int]] = [item[2]]
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _STOP or nxt[0] == "adopt":
                    carry = nxt
                    break
                raw.extend(nxt[1])
                futures.append(nxt[2])
            try:
                version = await self._commit(raw)
            except Exception as exc:  # noqa: BLE001 - reported to submitters
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
            else:
                for future in futures:
                    if not future.done():
                        future.set_result(version)
            if carry is _STOP:
                return

    async def _adopt(self, stl: StableTreeLabelling, future: asyncio.Future[int]) -> None:
        """Catch the fresh index up on missed batches, then publish it."""
        loop = asyncio.get_running_loop()
        history = list(self._history)
        try:
            await loop.run_in_executor(
                self._maint_exec, self._catch_up_sync, stl, history
            )
        except Exception as exc:  # noqa: BLE001 - reported to the build task
            if not future.done():
                future.set_exception(exc)
            return
        self._writer = stl
        self._history.clear()
        self._publish(stl.snapshot(self._version + 1, copy=False))
        self._writer_shared = True
        if not future.done():
            future.set_result(self._version)

    def _catch_up_sync(self, stl: StableTreeLabelling, history: list[list[RawUpdate]]) -> None:
        for raw in history:
            stl.apply_batch(self._resolve(raw, stl.graph))

    async def _commit(self, raw: list[RawUpdate]) -> int:
        loop = asyncio.get_running_loop()
        if self._writer is None:
            snap = await loop.run_in_executor(self._maint_exec, self._apply_graph_only, raw)
            self._history.append(raw)
            self._publish(snap)
        else:
            snap = await loop.run_in_executor(self._maint_exec, self._apply_labelled, raw)
            self._publish(snap)
            self._writer_shared = True
        self._batches_committed += 1
        self._updates_committed += len(raw)
        return self._version

    def _publish(self, snap: LabelSnapshot) -> None:
        """The RCU commit point: swap the pointer, retire the predecessor.

        Runs on the event-loop thread, so it is atomic with respect to
        every reader coroutine; the snapshot itself was captured on the
        maintenance thread (graph copy is O(E) -- off the hot path).
        """
        self._version += 1
        old, self._active = self._active, snap
        if old is not None:
            old.retire()

    # -- maintenance-thread helpers (graph access serialised here) ------- #

    def _resolve(self, raw: list[RawUpdate], graph: Graph) -> UpdateBatch:
        updates = []
        for item in raw:
            if isinstance(item, EdgeUpdate):
                updates.append(item)
            else:
                u, v, w = item
                updates.append(EdgeUpdate.setting(graph, int(u), int(v), float(w)))
        return UpdateBatch(updates)

    def _apply_graph_only(self, raw: list[RawUpdate]) -> LabelSnapshot:
        for update in self._resolve(raw, self._graph):
            self._graph.set_weight(update.u, update.v, update.new_weight)
        return LabelSnapshot.fallback_only(self._graph, self._version + 1)

    def _apply_labelled(self, raw: list[RawUpdate]) -> LabelSnapshot:
        stl = self._writer
        assert stl is not None
        if self._writer_shared:
            # Copy-on-write: the store is shared with the published
            # generation; shadow it before mutating so in-flight readers
            # keep an untouched buffer.
            stl.adopt_labels(stl.labels.snapshot_store())
            self._writer_shared = False
        stl.apply_batch(self._resolve(raw, stl.graph))
        return stl.snapshot(self._version + 1, copy=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, Any]:
        """Counters and state for the wire protocol's ``stats`` op."""
        snap = self._active
        return {
            "version": self._version,
            "ready": self.ready,
            "running": self.started,
            "config": self.config.describe(),
            "num_vertices": self.graph.num_vertices,
            "fast_queries": self._fast_queries,
            "fallback_queries": self._fallback_queries,
            "batches_committed": self._batches_committed,
            "updates_committed": self._updates_committed,
            "active_readers": 0 if snap is None else snap.readers,
            "build_seconds": self._build_seconds,
            "build_hierarchy_seconds": self._build_hierarchy_seconds,
            "build_label_seconds": self._build_label_seconds,
            "build_workers": self._build_workers,
        }


def encode_distance(value: float) -> float | None:
    """JSON-safe distance: ``inf`` (unreachable) crosses the wire as null."""
    return None if math.isinf(value) else value
