"""The serving layer: an always-on query service over RCU label snapshots.

``repro.serve`` keeps a Stable Tree Labelling index *live*: queries are
answered lock-free against an immutable published
:class:`~repro.core.snapshot.LabelSnapshot` while a single maintenance task
coalesces incoming update batches, maintains a shadow copy of the label
store, and commits each generation with an atomic pointer swap.  See
docs/architecture.md section 7 for the full design (RCU swap, epoch-based
reclamation, fallback tiering) and ``python -m repro.serve --help`` for the
stand-alone TCP server.
"""

from repro.serve.server import QueryServer
from repro.serve.service import QueryService

__all__ = ["QueryServer", "QueryService"]
