"""Stable Tree Labelling (STL) for dynamic road networks.

This package is a full reproduction of

    Koehler, Farhan & Wang.
    "Stable Tree Labelling for Accelerating Distance Queries on Dynamic Road
    Networks", EDBT 2025.

It provides:

* ``repro.graph`` -- weighted dynamic graphs, synthetic road-network
  generators and DIMACS I/O,
* ``repro.algorithms`` -- Dijkstra-family searches used as ground truth,
* ``repro.partition`` / ``repro.hierarchy`` -- balanced vertex-separator
  partitioning and the stable tree hierarchy,
* ``repro.core`` -- the paper's contribution: STL construction, queries and
  the Label Search / Pareto Search maintenance algorithms,
* ``repro.baselines`` -- CH, H2H, IncH2H, DTDHL and HC2L competitors,
* ``repro.workloads`` / ``repro.experiments`` -- workload generators and the
  drivers that regenerate every table and figure of the paper's evaluation,
* ``repro.serve`` -- an always-on asyncio query service answering lock-free
  from immutable label snapshots while maintenance commits by pointer swap.

Quickstart::

    import repro
    from repro import STLConfig, generators

    graph = generators.grid_road_network(32, 32, seed=7)
    stl = repro.open_network(graph, config=STLConfig(engine="label_search"))
    print(stl.query(0, graph.num_vertices - 1))
    stl.decrease_edge(0, 1, new_weight=1.0)

All tunables (shard backend, batch engine, query kernel, batch policy) live
on the frozen :class:`STLConfig`; the per-call ``parallel=`` / ``engine=`` /
``kernel=`` kwargs still work but are deprecated (docs/api.md has the
migration table).  Every error raised by the package derives from
:class:`repro.utils.errors.STLError`.
"""

from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.graph import generators
from repro.core.batch import BatchPolicy
from repro.core.config import STLConfig
from repro.core.shard import ShardPlanner
from repro.core.snapshot import LabelSnapshot
from repro.core.stl import StableTreeLabelling, open_network
from repro.hierarchy.builder import HierarchyOptions
from repro.serve import QueryServer, QueryService
from repro.utils.errors import STLError

__all__ = [
    "Graph",
    "EdgeUpdate",
    "UpdateBatch",
    "generators",
    "open_network",
    "StableTreeLabelling",
    "STLConfig",
    "STLError",
    "LabelSnapshot",
    "QueryService",
    "QueryServer",
    "BatchPolicy",
    "ShardPlanner",
    "HierarchyOptions",
    "__version__",
]

__version__ = "1.1.0"
