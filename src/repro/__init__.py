"""Stable Tree Labelling (STL) for dynamic road networks.

This package is a full reproduction of

    Koehler, Farhan & Wang.
    "Stable Tree Labelling for Accelerating Distance Queries on Dynamic Road
    Networks", EDBT 2025.

It provides:

* ``repro.graph`` -- weighted dynamic graphs, synthetic road-network
  generators and DIMACS I/O,
* ``repro.algorithms`` -- Dijkstra-family searches used as ground truth,
* ``repro.partition`` / ``repro.hierarchy`` -- balanced vertex-separator
  partitioning and the stable tree hierarchy,
* ``repro.core`` -- the paper's contribution: STL construction, queries and
  the Label Search / Pareto Search maintenance algorithms,
* ``repro.baselines`` -- CH, H2H, IncH2H, DTDHL and HC2L competitors,
* ``repro.workloads`` / ``repro.experiments`` -- workload generators and the
  drivers that regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import StableTreeLabelling, generators

    graph = generators.grid_road_network(32, 32, seed=7)
    stl = StableTreeLabelling.build(graph)
    print(stl.query(0, graph.num_vertices - 1))
    stl.decrease_edge(0, 1, new_weight=1.0)
"""

from repro.graph.graph import Graph
from repro.graph.updates import EdgeUpdate, UpdateBatch
from repro.graph import generators
from repro.core.batch import BatchPolicy
from repro.core.shard import ShardPlanner
from repro.core.stl import StableTreeLabelling
from repro.hierarchy.builder import HierarchyOptions

__all__ = [
    "Graph",
    "EdgeUpdate",
    "UpdateBatch",
    "generators",
    "StableTreeLabelling",
    "BatchPolicy",
    "ShardPlanner",
    "HierarchyOptions",
    "__version__",
]

__version__ = "1.0.0"
