"""Verify that relative markdown links in README.md and docs/ resolve.

Used by the CI docs job; run locally with ``python docs/check_links.py``.
Only repo-relative links are checked (external ``http(s)`` URLs are skipped:
CI must not fail on third-party outages).  Anchors are stripped before the
existence check.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check(repo_root: Path) -> list[str]:
    """Return one problem string per broken link."""
    problems: list[str] = []
    sources = [repo_root / "README.md", *sorted((repo_root / "docs").glob("*.md"))]
    for source in sources:
        if not source.exists():
            problems.append(f"{source}: missing documentation file")
            continue
        for target in LINK.findall(source.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue  # pure in-page anchor
            resolved = (source.parent / path).resolve()
            if not resolved.exists():
                problems.append(f"{source.relative_to(repo_root)}: broken link -> {target}")
    return problems


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    problems = check(repo_root)
    for problem in problems:
        print(problem)
    print(f"checked README.md + docs/: {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
