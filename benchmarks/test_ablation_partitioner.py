"""Ablation: geometric vs BFS-level bisection for the stable tree hierarchy."""

from benchmarks.conftest import report
from repro.core.stl import StableTreeLabelling
from repro.experiments.reporting import format_table
from repro.hierarchy.builder import HierarchyOptions
from repro.partition.bisection import BFSBisector, GeometricBisector, HybridBisector
from repro.workloads.datasets import build_dataset


def test_ablation_partitioner_report(benchmark, bench_config):
    graph = build_dataset(bench_config.datasets[0], bench_config.scale, bench_config.seed)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, bisector in (
        ("geometric", GeometricBisector()),
        ("bfs-levels", BFSBisector()),
        ("hybrid", HybridBisector()),
    ):
        options = HierarchyOptions(leaf_size=bench_config.leaf_size, bisector=bisector)
        index = StableTreeLabelling.build(graph.copy(), options)
        rows.append(
            {
                "bisector": name,
                "label entries": index.labels.num_entries(),
                "tree height": index.hierarchy.height,
                "construction [s]": f"{index.construction_seconds:.2f}",
            }
        )
    report(format_table(rows, title="Ablation: bisection strategy"))
    entries = {row["bisector"]: row["label entries"] for row in rows}
    # All strategies produce valid hierarchies; label sizes stay within a
    # small factor of each other on road-like graphs.
    assert max(entries.values()) <= 5 * min(entries.values())
