"""Benchmark: Table 5 -- query time over random pairs."""

import pytest

from benchmarks.conftest import report
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.hc2l import HC2L
from repro.baselines.inch2h import IncH2H
from repro.core.stl import StableTreeLabelling
from repro.experiments.table5 import format_table5, run_table5
from repro.workloads.datasets import build_dataset
from repro.workloads.queries import random_query_pairs


@pytest.fixture(scope="module")
def query_setup(bench_config):
    graph = build_dataset(bench_config.datasets[0], bench_config.scale, bench_config.seed)
    pairs = random_query_pairs(graph, 1_000, seed=bench_config.seed)
    indexes = {
        "STL": StableTreeLabelling.build(graph.copy(), bench_config.hierarchy_options()),
        "HC2L": HC2L.build(graph.copy()),
        "IncH2H": IncH2H.build(graph.copy()),
        "Dijkstra": DijkstraOracle.build(graph.copy()),
    }
    return indexes, pairs


def _run_queries(index, pairs):
    query = index.query
    for s, t in pairs:
        query(s, t)


@pytest.mark.benchmark(group="table5-query")
@pytest.mark.parametrize("method", ["STL", "HC2L", "IncH2H"])
def test_table5_query_batch(benchmark, query_setup, method):
    """1,000 random queries per method (labelled methods)."""
    indexes, pairs = query_setup
    benchmark.pedantic(_run_queries, args=(indexes[method], pairs), rounds=3, iterations=1)


@pytest.mark.benchmark(group="table5-query")
def test_table5_dijkstra_baseline(benchmark, query_setup):
    """The index-free baseline, on a small slice (it is orders of magnitude slower)."""
    indexes, pairs = query_setup
    benchmark.pedantic(_run_queries, args=(indexes["Dijkstra"], pairs[:20]), rounds=1, iterations=1)


def test_table5_report(benchmark, bench_config):
    """Regenerate and print the Table 5 analogue."""
    rows = benchmark.pedantic(run_table5, args=(bench_config,), rounds=1, iterations=1)
    report(format_table5(rows))
    for row in rows:
        assert all(value > 0 for value in row.query_us.values())
