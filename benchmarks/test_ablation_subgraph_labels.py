"""Ablation: subgraph-restricted labels vs global-distance labels.

The paper's "crucial ingredient" is that STL stores distances *within
subgraphs*, so an update only touches labels whose subgraph contains the
updated edge.  This ablation compares, per update, how many label entries are
affected under STL (subgraph distances) versus under a global-distance
labelling over the same hierarchy (HC2L-style).
"""

import math

from benchmarks.conftest import report
from repro.algorithms.dijkstra import dijkstra
from repro.baselines.hc2l import HC2L
from repro.core.stl import StableTreeLabelling
from repro.experiments.reporting import format_table
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import random_update_batch


def _count_affected_global(hc2l, graph, update):
    """Entries of a global-distance labelling invalidated by ``update``.

    An entry (v, ancestor r) of a global labelling is affected iff the old
    shortest path between v and r runs through the updated edge, i.e.
    d(r,u) + w + d(u',v) == d(r,v) for one orientation of the edge.
    """
    hierarchy = hc2l.hierarchy
    dist_u = dijkstra(graph, update.u)
    dist_v = dijkstra(graph, update.v)
    w = update.old_weight
    affected = 0
    for vertex in graph.vertices():
        chain = hierarchy.ancestors(vertex)
        for position, ancestor in enumerate(chain):
            entry = hc2l.labels[vertex][position]
            if math.isinf(entry):
                continue
            through_uv = dist_u[ancestor] + w + dist_v[vertex]
            through_vu = dist_v[ancestor] + w + dist_u[vertex]
            if min(through_uv, through_vu) == entry:
                affected += 1
    return affected


def test_ablation_subgraph_vs_global_labels(benchmark, bench_config):
    graph = build_dataset(bench_config.datasets[0], bench_config.scale, bench_config.seed)
    stl = StableTreeLabelling.build(graph.copy(), bench_config.hierarchy_options())
    hc2l = HC2L.build(graph.copy(), leaf_size=bench_config.leaf_size)
    increases, _ = random_update_batch(graph, 10, seed=bench_config.seed)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    total_stl = total_global = 0
    for update in increases:
        global_affected = _count_affected_global(hc2l, graph, update)
        stats = stl.apply_update(update)
        stl_affected = stats.labels_changed
        total_stl += stl_affected
        total_global += global_affected
        rows.append(
            {
                "edge": f"({update.u},{update.v})",
                "STL entries touched": stl_affected,
                "global-label entries affected": global_affected,
            }
        )
    report(format_table(rows, title="Ablation: subgraph-restricted vs global-distance labels"))
    # The subgraph restriction must not touch more entries than a global
    # labelling would have to, and in aggregate it touches fewer.
    assert total_stl <= total_global or total_global == 0
