"""Paper-scale streaming benchmark: query kernels + update engines vs |V|.

Sweeps :func:`repro.graph.generators.highway_grid_network` sizes (default
1k / 10k / 50k / 200k vertices), and on each graph measures

* **queries/second** of ``batch_query`` with the scalar and the vectorised
  kernel (same random pairs, warm caches, best-of-3 -- see
  :func:`repro.experiments.harness.measure_batch_query_qps`), and
* **per-batch update latency** of a rush-hour congestion stream
  (:func:`repro.workloads.updates.rush_hour_stream`) across the full
  engine x backend matrix -- (pareto, label_search) x (serial, thread,
  process).  The stream nets to zero, so every configuration replays the
  identical batches from the identical start state.

Writes the measurements as JSON (schema ``repro-perf-scale/2``)::

    {
      "schema": "repro-perf-scale/2",
      "seed": 2025, "python": "3.11.7", "numpy": "2.4.6" | null,
      "pairs": 20000,
      "construction": "serial" | "parallel" | null,   # --construction flag
      "cpu_count": ...,
      "scales": [
        {
          "requested_vertices": 10000,      # or "dimacs": "<path>" for
          "num_vertices": ..., "num_edges": ...,      # a --dimacs row
          "construction_seconds": ...,
          "hierarchy_seconds": ..., "label_seconds": ...,
          "construction_workers": ...,       # 0 = serial build
          "queries": {"scalar_qps": ..., "vector_qps": ..., "speedup": ...},
          "updates": {
            "steps": ..., "hotspots": ..., "radius": ...,
            "updates_total": ...,
            "per_batch_seconds": {"pareto_serial": ..., ...}
          }
        }, ...
      ]
    }

The committed ``BENCH_pr8.json`` was produced with the schema/1 defaults
(1k/10k/50k)::

    PYTHONPATH=src python benchmarks/perf_scale.py --out BENCH_pr8.json

``--construction serial|parallel`` pins the build pipeline (PR 10; default
``None`` lets the size/CPU heuristic decide), and ``--dimacs PATH`` appends
one extra row measured on a real road network loaded through
:func:`repro.graph.io.read_dimacs` instead of the synthetic grid.

Unlike ``perf_smoke.py`` this sweep is not a CI gate (a 200k-vertex build
is many minutes of pure-Python time); it documents how the kernels scale.
The vector kernel requires numpy (the ``repro[fast]`` extra); without it
the query section records the scalar series only.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
from pathlib import Path

from repro.core.batch import BatchPolicy
from repro.core.config import STLConfig
from repro.core.construction import CONSTRUCTION_NAMES
from repro.core.kernels import HAS_NUMPY
from repro.core.stl import StableTreeLabelling
from repro.experiments.harness import measure_batch_query_qps
from repro.graph.generators import highway_grid_network
from repro.graph.io import read_dimacs
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.timer import Timer
from repro.workloads.updates import rush_hour_stream

SCHEMA = "repro-perf-scale/2"

#: The engine x backend matrix, in the order the JSON records it.
STRATEGIES = (
    ("pareto_serial", "pareto", "serial"),
    ("pareto_thread", "pareto", "thread"),
    ("pareto_process", "pareto", "process"),
    ("label_search_serial", "label_search", "serial"),
    ("label_search_thread", "label_search", "thread"),
    ("label_search_process", "label_search", "process"),
)


def measure_scale(
    graph,
    row_meta: dict,
    pairs_count: int,
    steps: int,
    seed: int,
    leaf_size: int,
    construction: str | None,
) -> dict:
    """All measurements for one graph (synthetic grid or a DIMACS network)."""
    stl = StableTreeLabelling.build(
        graph, HierarchyOptions(leaf_size=leaf_size), construction=construction
    )
    stl.batch_policy = BatchPolicy(rebuild_fraction=None)

    rng = random.Random(seed)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(pairs_count)
    ]
    queries: dict[str, float | int] = {
        "scalar_qps": measure_batch_query_qps(stl, pairs, kernel="scalar"),
    }
    if HAS_NUMPY:
        queries["vector_qps"] = measure_batch_query_qps(stl, pairs, kernel="vector")
        queries["speedup"] = queries["vector_qps"] / queries["scalar_qps"]

    # Hotspot count grows with the graph so the stream stays a constant
    # *fraction* of the network congested, as a real rush hour would.
    hotspots = max(2, round((graph.num_vertices / 5000) ** 0.5 * 3))
    radius = 5
    batches = rush_hour_stream(
        stl.graph, num_steps=steps, num_hotspots=hotspots, radius=radius, seed=seed
    )
    updates_total = sum(len(batch.updates) for batch in batches)
    nonempty = sum(1 for batch in batches if batch.updates) or 1

    per_batch: dict[str, float] = {}
    for key, engine, backend in STRATEGIES:
        # The stream nets to zero, so after a full replay the labels are
        # back to the start state and the next strategy sees identical work.
        config = STLConfig(backend=backend, engine=engine)
        timer = Timer()
        for batch in batches:
            with timer.measure():
                stl.apply_batch(batch, config=config)
        per_batch[key] = timer.elapsed / nonempty

    report = stl.build_report
    result = {
        **row_meta,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "construction_seconds": stl.construction_seconds,
        "hierarchy_seconds": report.hierarchy_seconds if report is not None else 0.0,
        "label_seconds": report.label_seconds if report is not None else 0.0,
        "construction_workers": report.workers if report is not None else 0,
        "queries": queries,
        "updates": {
            "steps": steps,
            "hotspots": hotspots,
            "radius": radius,
            "updates_total": updates_total,
            "per_batch_seconds": per_batch,
        },
    }
    stl.close()
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[1_000, 10_000, 50_000, 200_000],
                        help="vertex counts to sweep (default: 1k 10k 50k 200k)")
    parser.add_argument("--pairs", type=int, default=20_000,
                        help="random query pairs per scale (default 20000)")
    parser.add_argument("--steps", type=int, default=8,
                        help="rush-hour time steps (default 8)")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--leaf-size", type=int, default=32,
                        help="hierarchy leaf size (default 32)")
    parser.add_argument("--construction", choices=CONSTRUCTION_NAMES, default=None,
                        help="pin the build pipeline (default: size/CPU heuristic)")
    parser.add_argument("--dimacs", type=Path, default=None,
                        help="append one row measured on this DIMACS .gr file")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the measurement JSON here (e.g. BENCH_pr8.json)")
    args = parser.parse_args(argv)

    result = {
        "schema": SCHEMA,
        "seed": args.seed,
        "python": platform.python_version(),
        "numpy": None,
        "pairs": args.pairs,
        "construction": args.construction,
        "cpu_count": os.cpu_count(),
        "scales": [],
    }
    if HAS_NUMPY:
        import numpy

        result["numpy"] = numpy.__version__

    jobs: list[tuple[object, dict]] = [
        (size, {"requested_vertices": size}) for size in args.sizes
    ]
    if args.dimacs is not None:
        jobs.append((read_dimacs(str(args.dimacs)), {"dimacs": str(args.dimacs)}))

    for source, row_meta in jobs:
        graph = (
            highway_grid_network(source, seed=args.seed)
            if isinstance(source, int)
            else source
        )
        row = measure_scale(
            graph, row_meta, args.pairs, args.steps, args.seed,
            args.leaf_size, args.construction,
        )
        result["scales"].append(row)
        q = row["queries"]
        line = (f"|V|={row['num_vertices']:>7}  build={row['construction_seconds']:.1f}s  "
                f"(tree {row['hierarchy_seconds']:.1f}s + labels "
                f"{row['label_seconds']:.1f}s, {row['construction_workers']} workers)  "
                f"scalar={q['scalar_qps']:>10,.0f} q/s")
        if "vector_qps" in q:
            line += f"  vector={q['vector_qps']:>10,.0f} q/s  (x{q['speedup']:.1f})"
        print(line)
        for key, seconds in row["updates"]["per_batch_seconds"].items():
            print(f"    {key:>20}: {seconds * 1e3:8.1f} ms/batch")

    if args.out is not None:
        args.out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
