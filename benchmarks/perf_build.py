"""Construction benchmark: serial vs process-parallel index builds.

Builds the same :func:`repro.graph.generators.highway_grid_network` twice
through :func:`repro.core.construction.build_index` -- once with
``construction="serial"`` and once with ``construction="parallel"`` --
asserts the two indexes are **entry-wise identical** (node numbering, tau,
``STLLabels.differences() == []``), and records the wall-clock breakdown of
both pipelines (hierarchy seconds vs label seconds vs worker count).

Writes the measurement as JSON (schema ``repro-perf-build/1``)::

    {
      "schema": "repro-perf-build/1",
      "requested_vertices": 10000, "seed": 2025, "leaf_size": 32,
      "num_vertices": ..., "num_edges": ...,
      "python": "3.11.7", "numpy": "2.4.6" | null,
      "cpu_count": ...,              # os.cpu_count() on the machine that ran
      "workers": 4,                  # builder pool size requested
      "serial":   {"total_seconds", "hierarchy_seconds", "label_seconds",
                   "workers", "label_entries"},
      "parallel": {same keys},
      "speedup": serial_total / parallel_total,
      "labels_equal": true           # always true -- the script asserts it
    }

With ``--check BASELINE`` the script exits non-zero if the **serial** build
regressed more than ``--threshold`` x against the committed baseline
(``benchmarks/baseline_build.json``).  The gate keys on the serial series
only: it has no pool scheduling in it, so a >2x change is an algorithmic
regression, not a loaded runner.  The parallel series (and the speedup) are
recorded as a trajectory -- their wall-clocks depend on the runner's core
count, which the JSON records honestly via ``cpu_count``.

Regenerate the baseline after an intentional perf change with::

    PYTHONPATH=src python benchmarks/perf_build.py --write-baseline \
        benchmarks/baseline_build.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

from repro.core.construction import build_index
from repro.core.kernels import HAS_NUMPY
from repro.graph.generators import highway_grid_network
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.timer import Timer

SCHEMA = "repro-perf-build/1"


def measure_build(graph, options, construction: str, max_workers: int | None) -> tuple:
    """One timed build; returns ``(hierarchy, labels, series_dict)``."""
    timer = Timer()
    with timer.measure():
        hierarchy, labels, report = build_index(
            graph, options, construction=construction, max_workers=max_workers
        )
    series = {
        "total_seconds": timer.elapsed,
        "hierarchy_seconds": report.hierarchy_seconds,
        "label_seconds": report.label_seconds,
        "workers": report.workers,
        "label_entries": labels.num_entries(),
    }
    return hierarchy, labels, series


def run_build_bench(num_vertices: int, seed: int, leaf_size: int, workers: int) -> dict:
    """Serial and parallel builds of one graph, with the equality assert."""
    graph = highway_grid_network(num_vertices, seed=seed)
    options = HierarchyOptions(leaf_size=leaf_size)

    serial_h, serial_l, serial = measure_build(graph, options, "serial", None)
    parallel_h, parallel_l, parallel = measure_build(graph, options, "parallel", workers)

    # The whole point of the parallel pipeline is that it is a pure
    # wall-clock optimisation: identical tau, identical entries.
    if list(serial_h.tau) != list(parallel_h.tau):
        raise AssertionError("parallel build produced a different tau than serial")
    diffs = serial_l.differences(parallel_l)
    if diffs:
        raise AssertionError(
            f"parallel labels differ from serial in {len(diffs)} entries: {diffs[:5]}"
        )

    return {
        "schema": SCHEMA,
        "requested_vertices": num_vertices,
        "seed": seed,
        "leaf_size": leaf_size,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "serial": serial,
        "parallel": parallel,
        "speedup": (
            serial["total_seconds"] / parallel["total_seconds"]
            if parallel["total_seconds"] > 0
            else float("inf")
        ),
        "labels_equal": True,
    }


def _numpy_version() -> str | None:
    if not HAS_NUMPY:
        return None
    import numpy

    return numpy.__version__


def check_against_baseline(result: dict, baseline_path: Path, threshold: float) -> int:
    """Return a process exit code: 0 within budget, 1 on regression."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("schema") != SCHEMA:
        print(f"baseline {baseline_path} has schema {baseline.get('schema')!r}, "
              f"expected {SCHEMA!r}")
        return 1
    reference = baseline["serial"]["total_seconds"]
    measured = result["serial"]["total_seconds"]
    ratio = measured / reference if reference > 0 else float("inf")
    verdict = "OK" if ratio <= threshold else "REGRESSION"
    print(f"serial build: {measured:.3f}s vs baseline {reference:.3f}s "
          f"(x{ratio:.2f}, budget x{threshold:.1f}) -> {verdict}")
    return 0 if ratio <= threshold else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=10_000,
                        help="highway_grid_network size (default 10000)")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--leaf-size", type=int, default=32,
                        help="hierarchy leaf size (default 32)")
    parser.add_argument("--workers", type=int, default=4,
                        help="builder pool size for the parallel build (default 4)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the measurement JSON here (e.g. BENCH_build.json)")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to gate the serial build against")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="allowed serial-build slowdown factor (default 2.0)")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        help="write the measurement as the new committed baseline")
    args = parser.parse_args(argv)

    result = run_build_bench(args.vertices, args.seed, args.leaf_size, args.workers)
    for key in ("serial", "parallel"):
        row = result[key]
        print(f"{key:>8}: total {row['total_seconds']:.3f}s  "
              f"(hierarchy {row['hierarchy_seconds']:.3f}s, "
              f"labels {row['label_seconds']:.3f}s, workers {row['workers']})")
    print(f"speedup: x{result['speedup']:.2f} with {result['workers']} workers "
          f"on {result['cpu_count']} CPU(s); labels entry-wise equal")

    for target in (args.out, args.write_baseline):
        if target is not None:
            target.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
            print(f"wrote {target}")

    if args.check is not None:
        return check_against_baseline(result, args.check, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
