"""CI perf-smoke: a scaled-down Figure 10 engine x backend comparison.

Runs one update stream through the batch strategies of
:meth:`repro.core.stl.StableTreeLabelling.apply_batch` -- both engine
families (Pareto, Label Search) on all three backends (serial, thread,
process) plus the per-update loop -- writes the wall-clocks plus memory,
shipping and engine-calibration measurements as ``BENCH_ci.json`` (schema
below) and -- when ``--check`` is given -- fails if a gated series
regressed more than ``--threshold`` x against the committed baseline
(``benchmarks/baseline.json``), or if the label store's estimated memory
grew more than ``--memory-threshold`` x.

Schema (``repro-perf-smoke/4``)::

    {
      "schema": "repro-perf-smoke/4",
      "dataset": "NY", "scale": 0.5, "updates": 600, "seed": 2025,
      "python": "3.11.7",
      "queries": {             # batch_query kernel throughput
        "pairs": 5000,
        "default_kernel": "vector" | "scalar",   # import-time selection
        "scalar_qps": ...,
        "vector_qps": ... | null    # null on a no-numpy interpreter
      },
      "series": {            # wall-clock seconds per strategy
        "construction": ...,
        "per_update": ...,
        "batched": ...,            # Pareto engine, serial backend
        "thread_sharded": ...,     # Pareto engine, thread backend
        "process_sharded": ...,    # Pareto engine, process backend
        "ls_batched": ...,         # Label Search engine, serial backend
        "ls_thread_sharded": ...,  # Label Search engine, thread backend
        "ls_process_sharded": ...  # Label Search engine, process backend
      },
      "memory": {
        "label_store_bytes": ...,   # flat entries + offsets (exact)
        "estimate_bytes": ...,      # STLLabels.memory_estimate().total_bytes
        "peak_rss_kb": ...          # getrusage ru_maxrss after all passes
      },
      "shipping": {          # slice-vs-delta calibration (core/calibration)
        "measurements": [{"updates", "slice_bytes", "slice_seconds",
                          "delta_bytes", "delta_seconds",
                          "bytes_ratio", "seconds_ratio"}, ...]
      },
      "engines": {           # Pareto-vs-LS calibration (core/calibration)
        "measurements": [{"updates", "pareto_seconds",
                          "label_search_seconds", "speedup"}, ...],
        "recommended_label_search_max": ...
      }
    }

The time guard keys on the **batched** and **ls_batched** series only:
they are the strategies with the least scheduling noise (no pools), so a
>2x change means a real algorithmic regression rather than a loaded
runner.  The sharded series are recorded as a trajectory (CI uploads the
JSON as an artifact per run) but not gated -- their wall-clocks depend on
the runner's core count.  The query guard keys on ``vector_qps`` (when
both the run and the baseline have one): the vectorised batch query is
single-threaded and best-of-3, so a >2x throughput drop is a kernel
regression, not noise.  The memory guard keys on ``estimate_bytes``: it
is deterministic for a given workload, so any growth is a real change in
label-store layout.

Regenerate the baseline after an intentional perf change with::

    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import resource
import sys
from pathlib import Path

from repro.core.batch import BatchPolicy
from repro.core.calibration import calibrate_engines, calibrate_shipping
from repro.core.kernels import DEFAULT_KERNEL, HAS_NUMPY
from repro.core.stl import StableTreeLabelling
from repro.experiments.harness import measure_batch_query_qps, measure_batched_seconds
from repro.hierarchy.builder import HierarchyOptions
from repro.utils.timer import Timer
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import mixed_update_stream

SCHEMA = "repro-perf-smoke/4"

#: Query pairs measured per kernel (same pairs for both).
QUERY_PAIRS = 5_000

#: Series gated by ``--check``; everything else is trajectory-only.
GATED_SERIES = ("batched", "ls_batched")


def run_smoke(dataset: str, scale: float, updates: int, seed: int) -> dict:
    """Measure the engine x backend strategies once on one Figure 10 stream."""
    graph = build_dataset(dataset, scale=scale, seed=seed)
    stl = StableTreeLabelling.build(graph, HierarchyOptions(leaf_size=8))
    stl.batch_policy = BatchPolicy(rebuild_fraction=None)
    series: dict[str, float] = {"construction": stl.construction_seconds}

    rng = random.Random(seed)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(QUERY_PAIRS)
    ]
    queries: dict[str, object] = {
        "pairs": QUERY_PAIRS,
        "default_kernel": DEFAULT_KERNEL,
        "scalar_qps": measure_batch_query_qps(stl, pairs, kernel="scalar"),
        "vector_qps": (
            measure_batch_query_qps(stl, pairs, kernel="vector") if HAS_NUMPY else None
        ),
    }

    stream = mixed_update_stream(stl.graph, updates, factor=2.0, seed=seed)
    halves = (stream.increases(), stream.decreases())

    timer = Timer()
    with timer.measure():
        for update in stream:
            stl.apply_update(update)
    series["per_update"] = timer.elapsed

    # Every pass replays the same halves: the stream nets to zero, so the
    # graph (and therefore the labels) return to the same state in between.
    # Each series pins its engine explicitly so the policy's engine
    # crossover can never reroute a series behind its label.
    for key, parallel, engine in (
        ("batched", "serial", "pareto"),
        ("thread_sharded", "thread", "pareto"),
        ("process_sharded", "process", "pareto"),
        ("ls_batched", "serial", "label_search"),
        ("ls_thread_sharded", "thread", "label_search"),
        ("ls_process_sharded", "process", "label_search"),
    ):
        series[key], _ = measure_batched_seconds(
            stl, halves, parallel=parallel, engine=engine
        )

    shipping = calibrate_shipping(stl.graph, stl.labels).as_dict()
    engines = calibrate_engines(stl.graph, stl.hierarchy, stl.labels).as_dict()
    memory = {
        "label_store_bytes": stl.labels.store_bytes(),
        "estimate_bytes": stl.labels.memory_estimate().total_bytes,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    stl.close()

    return {
        "schema": SCHEMA,
        "dataset": dataset,
        "scale": scale,
        "updates": updates,
        "seed": seed,
        "python": platform.python_version(),
        "queries": queries,
        "series": series,
        "memory": memory,
        "shipping": shipping,
        "engines": engines,
    }


def check_against_baseline(
    result: dict,
    baseline_path: Path,
    threshold: float,
    memory_threshold: float,
) -> int:
    """Return a process exit code: 0 within budget, 1 on regression."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("schema") != SCHEMA:
        print(f"baseline {baseline_path} has schema {baseline.get('schema')!r}, "
              f"expected {SCHEMA!r}")
        return 1
    code = 0
    for key in GATED_SERIES:
        reference = baseline["series"][key]
        measured = result["series"][key]
        ratio = measured / reference if reference > 0 else float("inf")
        verdict = "OK" if ratio <= threshold else "REGRESSION"
        print(f"{key}: {measured:.3f}s vs baseline {reference:.3f}s "
              f"(x{ratio:.2f}, budget x{threshold:.1f}) -> {verdict}")
        if ratio > threshold:
            code = 1

    baseline_vector = baseline.get("queries", {}).get("vector_qps")
    measured_vector = result["queries"]["vector_qps"]
    if baseline_vector is None or measured_vector is None:
        print("queries: no vector_qps on one side (no-numpy run?), skipping the guard")
    else:
        qps_ratio = baseline_vector / measured_vector if measured_vector > 0 else float("inf")
        qps_verdict = "OK" if qps_ratio <= threshold else "REGRESSION"
        print(f"vector batch_query: {measured_vector:,.0f} q/s vs baseline "
              f"{baseline_vector:,.0f} q/s (x{qps_ratio:.2f} slowdown, "
              f"budget x{threshold:.1f}) -> {qps_verdict}")
        if qps_ratio > threshold:
            code = 1

    baseline_memory = baseline.get("memory", {}).get("estimate_bytes")
    if baseline_memory is None:
        print("memory: baseline has no estimate_bytes field, skipping the guard")
        return code
    measured_memory = result["memory"]["estimate_bytes"]
    mem_ratio = (
        measured_memory / baseline_memory if baseline_memory > 0 else float("inf")
    )
    mem_verdict = "OK" if mem_ratio <= memory_threshold else "REGRESSION"
    print(f"label memory: {measured_memory} B vs baseline {baseline_memory} B "
          f"(x{mem_ratio:.2f}, budget x{memory_threshold:.1f}) -> {mem_verdict}")
    return code if mem_ratio <= memory_threshold else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="NY")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--updates", type=int, default=600)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the measurement JSON here (e.g. BENCH_ci.json)")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to compare the batched series against")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="allowed slowdown factor vs the baseline (default 2.0)")
    parser.add_argument("--memory-threshold", type=float, default=1.5,
                        help="allowed label-memory growth factor vs the baseline "
                             "(default 1.5)")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        help="write the measurement as the new committed baseline")
    args = parser.parse_args(argv)

    result = run_smoke(args.dataset, args.scale, args.updates, args.seed)
    for name, seconds in result["series"].items():
        print(f"{name:>16}: {seconds:.3f}s")
    queries = result["queries"]
    line = (f"batch_query ({queries['pairs']} pairs, default={queries['default_kernel']}): "
            f"scalar {queries['scalar_qps']:,.0f} q/s")
    if queries["vector_qps"] is not None:
        line += (f", vector {queries['vector_qps']:,.0f} q/s "
                 f"(x{queries['vector_qps'] / queries['scalar_qps']:.1f})")
    print(line)
    memory = result["memory"]
    print(f"label store: {memory['label_store_bytes']} B "
          f"(estimate {memory['estimate_bytes']} B), "
          f"peak RSS {memory['peak_rss_kb']} kB")
    for m in result["shipping"]["measurements"]:
        print(f"shipping @{m['updates']:>4} updates: "
              f"slice {m['slice_bytes']} B / {m['slice_seconds'] * 1e3:.2f} ms, "
              f"delta {m['delta_bytes']} B / {m['delta_seconds'] * 1e3:.2f} ms "
              f"(x{m['bytes_ratio']:.1f} bytes, x{m['seconds_ratio']:.1f} time)")
    for m in result["engines"]["measurements"]:
        print(f"engines @{m['updates']:>4} updates: "
              f"pareto {m['pareto_seconds'] * 1e3:.2f} ms, "
              f"label_search {m['label_search_seconds'] * 1e3:.2f} ms "
              f"(x{m['speedup']:.2f})")
    print(f"engines: recommended label_search_max = "
          f"{result['engines']['recommended_label_search_max']}")

    for target in (args.out, args.write_baseline):
        if target is not None:
            target.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
            print(f"wrote {target}")

    if args.check is not None:
        return check_against_baseline(
            result, args.check, args.threshold, args.memory_threshold
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
