"""Benchmark: Table 2 -- dataset construction and summary."""

import pytest

from benchmarks.conftest import report
from repro.experiments.table2 import format_table2, run_table2
from repro.workloads.datasets import build_dataset


@pytest.mark.benchmark(group="table2")
def test_table2_dataset_generation(benchmark, bench_config):
    """Time the generation of the first configured dataset analogue."""
    name = bench_config.datasets[0]
    graph = benchmark(build_dataset, name, bench_config.scale, bench_config.seed)
    assert graph.num_vertices > 0


def test_table2_report(benchmark, bench_config):
    """Regenerate and print the Table 2 analogue."""
    rows = benchmark.pedantic(run_table2, args=(bench_config,), rounds=1, iterations=1)
    report(format_table2(rows))
    assert len(rows) == len(bench_config.datasets)
