"""Benchmark: Figure 9 -- query time under varying query distances (Q1..Q10)."""

from benchmarks.conftest import report
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.harness import ExperimentConfig


def test_figure9_report(benchmark, bench_config):
    """Regenerate and print the Figure 9 series."""
    config = ExperimentConfig(
        datasets=bench_config.datasets[:1],
        scale=bench_config.scale,
        query_sets=10,
        pairs_per_query_set=60,
        leaf_size=bench_config.leaf_size,
    )
    results = benchmark.pedantic(run_figure9, args=(config,), rounds=1, iterations=1)
    report(format_figure9(results))
    for series in results:
        assert len(series.query_sets) == 10
        stl = series.series_us["STL"]
        # Long-range STL queries scan only the small high-level cuts, so they
        # are not slower than the short-range buckets by a large factor.
        assert stl[-1] <= 3.0 * max(stl[0], 1e-9)
