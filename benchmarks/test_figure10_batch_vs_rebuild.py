"""Benchmark: Figure 10 -- grouped maintenance vs full reconstruction."""

from benchmarks.conftest import report
from repro.core.batch import BatchPolicy
from repro.core.stl import StableTreeLabelling
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.experiments.harness import ExperimentConfig, measure_batched_seconds
from repro.utils.timer import Timer
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import mixed_update_stream


def test_figure10_report(benchmark, bench_config):
    """Regenerate and print the Figure 10 comparison."""
    config = ExperimentConfig(
        datasets=bench_config.datasets[:1],
        scale=bench_config.scale,
        leaf_size=bench_config.leaf_size,
    )
    results = benchmark.pedantic(
        run_figure10,
        args=(config,),
        kwargs={"group_sizes": (10, 25, 50)},
        rounds=1,
        iterations=1,
    )
    report(format_figure10(results))
    for series in results:
        # The paper's headline: maintaining beats rebuilding for moderate
        # group sizes.  Check it for the smallest group, which is the regime
        # incremental maintenance targets.
        assert series.maintenance_seconds[0] <= series.reconstruction_seconds


def test_figure10_batched_beats_per_update_1k(bench_config):
    """The batch engine vs the per-update loop on the 1k-update workload.

    The same stream (a 1,000-edge sample doubled, then restored; the
    sample deduplicates to at most the dataset's edge count, so the report
    records the actual stream size) is processed three ways: the per-update
    loop, the shared-phase batch engine (rebuild fallback disabled), and
    ``apply_batch`` under the default policy (which crosses over to an
    in-place rebuild for a batch this large).  Both batch flavours must beat
    the loop.
    """
    config = ExperimentConfig(
        datasets=bench_config.datasets[:1],
        scale=bench_config.scale,
        leaf_size=bench_config.leaf_size,
    )
    name = config.datasets[0]
    graph = build_dataset(name, scale=config.scale, seed=config.seed)
    stl = StableTreeLabelling.build(graph.copy(), config.hierarchy_options())
    stream = mixed_update_stream(stl.graph, 1000, factor=config.update_factor, seed=config.seed)
    halves = (stream.increases(), stream.decreases())

    loop_timer = Timer()
    with loop_timer.measure():
        for update in stream:
            stl.apply_update(update)
    per_update = loop_timer.elapsed

    # process_min_updates=None keeps this series on the engine/thread pair
    # this benchmark has always measured; the process pool needs real cores
    # to win and is compared separately in test_figure10_sharded.py.
    stl.batch_policy = BatchPolicy(rebuild_fraction=None, process_min_updates=None)
    engine_only, engine_fallbacks = measure_batched_seconds(stl, halves)

    stl.batch_policy = BatchPolicy()
    auto_policy, auto_fallbacks = measure_batched_seconds(stl, halves)

    report(
        f"Figure 10 ({name}): 1k-update workload, per-update loop vs batched\n"
        f"stream: {len(stream)} updates over {len(stream) // 2} distinct edges "
        f"(of {stl.graph.num_edges} in the graph)\n"
        f"per-update loop [s]       | {per_update:.3f}\n"
        f"batched, engine only [s]  | {engine_only:.3f} (fallbacks: {engine_fallbacks})\n"
        f"batched, auto policy [s]  | {auto_policy:.3f} (fallbacks: {auto_fallbacks})"
    )
    assert engine_fallbacks == 0
    # The engine wins by ~25-40% and the auto policy by an order of magnitude
    # in practice; the 1.2 factor absorbs timer jitter on loaded CI runners
    # without masking a real regression.
    assert engine_only <= per_update * 1.2
    assert auto_policy <= per_update * 1.2
