"""Benchmark: Figure 10 -- grouped maintenance vs full reconstruction."""

from benchmarks.conftest import report
from repro.experiments.figure10 import format_figure10, run_figure10
from repro.experiments.harness import ExperimentConfig


def test_figure10_report(benchmark, bench_config):
    """Regenerate and print the Figure 10 comparison."""
    config = ExperimentConfig(
        datasets=bench_config.datasets[:1],
        scale=bench_config.scale,
        leaf_size=bench_config.leaf_size,
    )
    results = benchmark.pedantic(run_figure10, args=(config,), kwargs={"group_sizes": (10, 25, 50)}, rounds=1, iterations=1)
    report(format_figure10(results))
    for series in results:
        # The paper's headline: maintaining beats rebuilding for moderate
        # group sizes.  Check it for the smallest group, which is the regime
        # incremental maintenance targets.
        assert series.maintenance_seconds[0] <= series.reconstruction_seconds
