"""Benchmark: Table 4 -- labelling size, construction time, entries, height."""

import pytest

from benchmarks.conftest import report
from repro.baselines.hc2l import HC2L
from repro.baselines.inch2h import IncH2H
from repro.core.stl import StableTreeLabelling
from repro.experiments.table4 import format_table4, run_table4
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def construction_graph(bench_config):
    return build_dataset(bench_config.datasets[0], bench_config.scale, bench_config.seed)


@pytest.mark.benchmark(group="table4-construction")
def test_table4_stl_construction(benchmark, construction_graph, bench_config):
    index = benchmark.pedantic(
        StableTreeLabelling.build,
        args=(construction_graph,),
        kwargs={"options": bench_config.hierarchy_options()},
        rounds=2,
        iterations=1,
    )
    assert index.labels.num_entries() > 0


@pytest.mark.benchmark(group="table4-construction")
def test_table4_hc2l_construction(benchmark, construction_graph):
    index = benchmark.pedantic(HC2L.build, args=(construction_graph,), rounds=2, iterations=1)
    assert index.num_label_entries() > 0


@pytest.mark.benchmark(group="table4-construction")
def test_table4_inch2h_construction(benchmark, construction_graph):
    index = benchmark.pedantic(IncH2H.build, args=(construction_graph,), rounds=2, iterations=1)
    assert index.num_label_entries() > 0


def test_table4_report(benchmark, bench_config):
    """Regenerate and print the Table 4 analogue, checking the paper's ordering."""
    rows = benchmark.pedantic(run_table4, args=(bench_config,), rounds=1, iterations=1)
    report(format_table4(rows))
    for row in rows:
        stats = row.stats
        # STL's labelling is the smallest; at laptop scale the entry counts of
        # STL and IncH2H are close, so a small tolerance absorbs noise.
        assert stats["STL"].num_label_entries <= 1.2 * stats["IncH2H"].num_label_entries
        assert stats["STL"].bytes_total < stats["IncH2H"].bytes_total
        assert stats["STL"].bytes_total <= stats["HC2L"].bytes_total
        assert stats["STL"].tree_height <= 1.3 * stats["IncH2H"].tree_height
        # IncH2H's auxiliary data makes it larger than DTDHL.
        assert stats["IncH2H"].bytes_total > stats["DTDHL"].bytes_total
