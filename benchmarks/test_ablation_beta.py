"""Ablation: the balance parameter beta (Definition 4.1; the paper uses 0.2)."""

import pytest

from benchmarks.conftest import report
from repro.core.stl import StableTreeLabelling
from repro.experiments.reporting import format_table
from repro.hierarchy.builder import HierarchyOptions
from repro.workloads.datasets import build_dataset
from repro.workloads.queries import random_query_pairs


@pytest.mark.benchmark(group="ablation-beta")
@pytest.mark.parametrize("beta", [0.1, 0.2, 0.4])
def test_ablation_beta_construction(benchmark, bench_config, beta):
    graph = build_dataset(bench_config.datasets[0], bench_config.scale, bench_config.seed)
    index = benchmark.pedantic(
        StableTreeLabelling.build,
        args=(graph,),
        kwargs={"options": HierarchyOptions(beta=beta, leaf_size=bench_config.leaf_size)},
        rounds=1,
        iterations=1,
    )
    assert index.labels.num_entries() > 0


def test_ablation_beta_report(benchmark, bench_config):
    graph = build_dataset(bench_config.datasets[0], bench_config.scale, bench_config.seed)
    pairs = random_query_pairs(graph, 300, seed=1)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for beta in (0.1, 0.2, 0.3, 0.4, 0.5):
        index = StableTreeLabelling.build(
            graph.copy(), HierarchyOptions(beta=beta, leaf_size=bench_config.leaf_size)
        )
        sample = [index.query(s, t) for s, t in pairs[:50]]
        rows.append(
            {
                "beta": beta,
                "label entries": index.labels.num_entries(),
                "tree height": index.hierarchy.height,
                "construction [s]": f"{index.construction_seconds:.2f}",
                "sample mean distance": f"{sum(sample) / len(sample):.1f}",
            }
        )
    report(format_table(rows, title="Ablation: balance parameter beta"))
    assert len(rows) == 5
